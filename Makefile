PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test bench-smoke trace-smoke bench results

# Tier-1 gate: the full test suite plus the microbenchmark time budgets.
# A >2x wall-clock regression in the kernel or cipher fails bench-smoke.
check: test bench-smoke

test:
	$(PYTHON) -m pytest tests/ -q

bench-smoke:
	$(PYTHON) benchmarks/bench_kernel.py --smoke

# Run a short traced Andrew benchmark and validate the trace covers
# open -> RPC -> server -> disk for at least one fetch and one store.
trace-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) -m repro trace --check --out benchmarks/results/trace-smoke.json

# The tracked wall-clock harness (writes benchmarks/results/BENCH_<date>.json).
bench:
	$(PYTHON) benchmarks/run_all.py --json

# Regenerate every EXP-* evaluation table.
results:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable
