PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test bench-smoke campus-smoke metropolis-smoke shard-smoke chaos-smoke redundancy-smoke erasure-smoke soak-smoke trace-smoke bench results

# Tier-1 gate: the full test suite plus the wall-clock time budgets.
# A >2x wall-clock regression in the kernel, cipher or the end-to-end
# campus path fails the corresponding smoke target.
check: test bench-smoke campus-smoke metropolis-smoke shard-smoke chaos-smoke redundancy-smoke erasure-smoke soak-smoke

test:
	$(PYTHON) -m pytest tests/ -q

bench-smoke:
	$(PYTHON) benchmarks/bench_kernel.py --smoke

# Scaled-down 20-workstation campus under a hard wall-clock budget.
campus-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) benchmarks/bench_campus.py --smoke --json benchmarks/results/campus-smoke.json

# Scale sweep (200 + 1,000 workstations) under a hard wall-clock budget;
# the 5,000-workstation scale is a local/manual full run.
metropolis-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) benchmarks/bench_metropolis.py --smoke --json benchmarks/results/metropolis-smoke.json

# Sharded-vs-unsharded gate: the 200-workstation campus must produce a
# byte-identical virtual day under repro.sim.shard; the >=1.2x speedup
# assertion arms only on hosts with 4+ cores.
shard-smoke:
	$(PYTHON) benchmarks/bench_metropolis.py --shard-smoke

# Availability under fault plans, scaled shape under a hard wall-clock
# budget; fails if the clean plan reports any failure or outage.
chaos-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) benchmarks/bench_availability.py --smoke \
		--json benchmarks/results/chaos-smoke.json \
		--timeline benchmarks/results/outage-timeline.json

# Replication factors x fault plans, corner cells under a hard wall-clock
# budget; fails if a clean cell has outages or replication fails to beat
# the unreplicated baseline under a server crash.
redundancy-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) benchmarks/bench_redundancy.py --smoke \
		--json benchmarks/results/redundancy-smoke.json

# The scaled-down erasure-coded column: clean must stay clean (0 outages)
# and server-crash must degrade-read through with zero lost writes, with
# the stripe rebuilt to full health by the end of the day.
erasure-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) benchmarks/bench_redundancy.py --erasure-smoke \
		--json benchmarks/results/erasure-smoke.json

# Six virtual hours at 200 workstations under chaos, every soak invariant
# checked per window, plus the sabotaged negative control; fails on any
# violation, a missed sabotage, or a blown wall budget.
soak-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) benchmarks/bench_soak.py --smoke \
		--json benchmarks/results/soak-smoke.json \
		--metrics benchmarks/results/soak-metrics.jsonl \
		--events benchmarks/results/soak-events.jsonl

# Run a short traced Andrew benchmark and validate the trace covers
# open -> RPC -> server -> disk for at least one fetch and one store.
trace-smoke:
	mkdir -p benchmarks/results
	$(PYTHON) -m repro trace --check --out benchmarks/results/trace-smoke.json

# The tracked wall-clock harness (writes benchmarks/results/BENCH_<date>.json).
bench:
	$(PYTHON) benchmarks/run_all.py --json

# Regenerate every EXP-* evaluation table.
results:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable
