PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test bench-smoke bench results

# Tier-1 gate: the full test suite plus the microbenchmark time budgets.
# A >2x wall-clock regression in the kernel or cipher fails bench-smoke.
check: test bench-smoke

test:
	$(PYTHON) -m pytest tests/ -q

bench-smoke:
	$(PYTHON) benchmarks/bench_kernel.py --smoke

# The tracked wall-clock harness (writes benchmarks/results/BENCH_<date>.json).
bench:
	$(PYTHON) benchmarks/run_all.py --json

# Regenerate every EXP-* evaluation table.
results:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable
