"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's reported quantities (see
DESIGN.md's experiment index).  A bench:

* builds a campus and drives a workload in **virtual time**;
* prints (and saves under ``benchmarks/results/``) the same rows/series the
  paper reports, next to the paper's numbers;
* asserts the *shape* of the result — who wins, by roughly what factor —
  as the reproduction criterion (absolute numbers are calibrated, shapes
  are emergent);
* reports the simulation's **wall-clock** cost through pytest-benchmark
  (single round: these are simulations, not microbenchmarks).
"""

import os

from repro import ITCSystem, SystemConfig
from repro.analysis import Table
from repro.workload import AndrewBenchmark, make_source_tree, provision_campus, run_campus_day

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, *tables) -> None:
    """Print tables and persist them under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n\n".join(str(table) for table in tables) + "\n"
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)
    print("\n" + text)


def one_round(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def campus_day(
    mode="prototype",
    clusters=1,
    workstations_per_cluster=20,
    duration=5400.0,
    warmup=5400.0,
    validation=None,
    seed=0,
):
    """The standard synthetic-day setup behind EXP-1/2/3/6."""
    campus = ITCSystem(
        SystemConfig(
            mode=mode,
            validation=validation,
            clusters=clusters,
            workstations_per_cluster=workstations_per_cluster,
            functional_payload_crypto=False,  # charge crypto time, skip real XOR
            cache_max_files=200,
            seed=seed,
        )
    )
    users = provision_campus(campus)
    summary = run_campus_day(campus, users, duration=duration, warmup=warmup)
    return campus, summary


def andrew_campus(mode="prototype", remote=True, clusters=1):
    """A one-workstation campus primed with the 5-phase benchmark tree."""
    campus = ITCSystem(
        SystemConfig(
            mode=mode,
            clusters=clusters,
            workstations_per_cluster=1,
            functional_payload_crypto=False,
        )
    )
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    tree = make_source_tree()
    workstation = campus.workstation(0)
    session = campus.login(workstation, "u", "pw")
    if remote:
        campus.populate(volume, tree, owner="u")
        bench = AndrewBenchmark(session, "/vice/usr/u/src", "/vice/usr/u/target")
    else:
        for path, data in sorted(tree.items()):
            parts = path.strip("/").split("/")
            built = ""
            for part in parts[:-1]:
                built += "/" + part
                if not workstation.local_fs.exists(built):
                    workstation.local_fs.mkdir(built)
            workstation.local_fs.create(path, data)
        bench = AndrewBenchmark(session, "/src", "/target")
    return campus, bench


def run_andrew(mode="prototype", remote=True):
    """One benchmark run; returns (campus, AndrewResult)."""
    campus, bench = andrew_campus(mode=mode, remote=remote)
    result = campus.run_op(bench.run())
    return campus, result
