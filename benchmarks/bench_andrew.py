"""EXP-4 — the 5-phase benchmark, local vs remote (§5.2).

Paper: "On a Sun workstation with a local disk, the benchmark takes about
1000 seconds to complete when all files are obtained locally.  Our
experiments show that the same benchmark takes about 80% longer when the
workstation is obtaining all its files from an unloaded Vice server."

We also run the revised implementation against the same remote workload to
show the redesign's headroom (no paper number exists for it — the revised
system was "close to completion" at publication).
"""

from repro.analysis import Table, format_seconds
from repro.system.calibration import (
    ANDREW_LOCAL_TARGET_SECONDS,
    ANDREW_REMOTE_PENALTY_TARGET,
)
from repro.workload import PHASES

from _common import one_round, run_andrew, save_table


def test_exp4_andrew_local_vs_remote(benchmark):
    def all_runs():
        _campus, local = run_andrew(mode="prototype", remote=False)
        _campus, remote = run_andrew(mode="prototype", remote=True)
        _campus, revised = run_andrew(mode="revised", remote=True)
        return local, remote, revised

    local, remote, revised = one_round(benchmark, all_runs)
    penalty = remote.total_seconds / local.total_seconds - 1.0

    table = Table(
        ["phase", "local (s)", "proto remote (s)", "revised remote (s)"],
        title="EXP-4: 5-phase benchmark",
    )
    for phase in PHASES:
        table.add(
            phase,
            f"{local.phase_seconds[phase]:.1f}",
            f"{remote.phase_seconds[phase]:.1f}",
            f"{revised.phase_seconds[phase]:.1f}",
        )
    table.add("Total", f"{local.total_seconds:.0f}", f"{remote.total_seconds:.0f}",
              f"{revised.total_seconds:.0f}")

    anchors = Table(["quantity", "paper", "measured"], title="anchors")
    anchors.add("local total", f"≈ {ANDREW_LOCAL_TARGET_SECONDS:.0f} s",
                format_seconds(local.total_seconds))
    anchors.add("remote penalty (prototype, cold)",
                f"≈ +{ANDREW_REMOTE_PENALTY_TARGET:.0%}", f"+{penalty:.1%}")
    anchors.add("remote penalty (revised, cold)", "— (not yet built in 1985)",
                f"+{revised.total_seconds / local.total_seconds - 1.0:.1%}")
    save_table("EXP-4_andrew", table, anchors)

    benchmark.extra_info.update(
        {
            "local_s": round(local.total_seconds, 1),
            "remote_s": round(remote.total_seconds, 1),
            "revised_remote_s": round(revised.total_seconds, 1),
            "penalty": round(penalty, 3),
        }
    )

    assert 700 <= local.total_seconds <= 1300  # ≈1000 s anchor
    assert 0.5 <= penalty <= 1.15  # "about 80% longer"
    # The redesign slashes the remote penalty — its whole point.
    assert revised.total_seconds < local.total_seconds * 1.2
    # The Make phase dominates in all variants, as in any compile benchmark.
    for result in (local, remote, revised):
        assert result.phase_seconds["Make"] > 0.5 * result.total_seconds
