"""Availability under injected faults: outage, MTTR and write survival.

§4.4 claims are about behaviour under failure: a crashed custodian
salvages and returns, workstations ride out Vice outages, the network is
"not assumed to be reliable".  This bench measures them.  The same
synthetic campus day runs under three (or more) fault plans —

* ``clean``          — no faults; the availability-accounting baseline
  (must report 100 % availability and zero outages);
* ``server-crash``   — one cluster server crashes mid-day and salvages
  back (availability dip, MTTR distribution, time-to-first-success);
* ``lossy-backbone`` — the backbone drops/corrupts/duplicates packets
  (retransmissions and MAC rejections, availability stays high);
* ``flaky-campus``   — everything at once (full mode only).

A fourth scenario repeats the server crash with
``write_policy="deferred"`` to report **recovered vs lost writes**:
stores issued while the server is down stay dirty in the Venus cache and
are flushed after recovery; whatever is still dirty when the day ends
would die with the workstation.  (The comparison scenarios keep the
paper's store-on-close policy, under which a fault-free day is genuinely
failure-free.)  Reported per plan:

* ``availability`` / ``mttr`` percentiles / ``ttfs`` (virtual time —
  byte-identical across runs for a given seed);
* ``stores``, ``deferred_flushes``, ``dirty_remaining`` (recovered vs
  at-risk writes);
* ``retransmissions``, ``corrupt_rejected``, injected packet/disk
  counters;
* ``wall_seconds`` — what the run costs to execute.

Usage::

    PYTHONPATH=src python benchmarks/bench_availability.py           # full
    PYTHONPATH=src python benchmarks/bench_availability.py --smoke   # CI budget
    PYTHONPATH=src python benchmarks/bench_availability.py --json F  # write JSON
    PYTHONPATH=src python benchmarks/bench_availability.py --timeline F  # outage timeline
"""

import argparse
import json
import os
import sys
import time

if __package__ is None or __package__ == "":  # running as a script
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro import ITCSystem, SystemConfig
from repro.faults import (
    Fault,
    FaultPlan,
    clean_plan,
)
from repro.workload import provision_campus, run_campus_day

__all__ = ["run_availability_benchmark", "SHAPE", "SMOKE_SHAPE"]

SHAPE = dict(clusters=2, workstations_per_cluster=6,
             duration=1800.0, warmup=300.0)

# Scaled down for CI: same plans, same code paths, a fraction of the work.
SMOKE_SHAPE = dict(clusters=2, workstations_per_cluster=3,
                   duration=600.0, warmup=60.0)

# Absolute wall-clock budget for --smoke, seconds (whole scenario table).
# The smoke table takes well under a second on the reference container;
# the budget leaves generous headroom for slow shared CI runners.
SMOKE_BUDGET_SECONDS = 10.0


def _scenarios(shape, full):
    """``(plan, write_policy)`` rows, with fault windows placed inside the
    measured part of the day regardless of the shape's duration."""
    warmup, duration = shape["warmup"], shape["duration"]
    crash_at = warmup + 0.3 * duration
    crash_outage = 0.15 * duration
    crash = (Fault("server_crash", "server0", start=crash_at,
                   duration=crash_outage),)
    rows = [
        (clean_plan(), "on-close"),
        (FaultPlan(name="server-crash", faults=crash), "on-close"),
        (FaultPlan(name="lossy-backbone", faults=(
            Fault("link", "backbone", start=warmup, duration=duration,
                  loss=0.03, corrupt=0.01, duplicate=0.01),
        )), "on-close"),
        # The recovered-vs-lost writes measurement: same crash, deferred
        # store-through, so writes during the outage wait in the cache.
        (FaultPlan(name="server-crash-deferred", faults=crash), "deferred"),
    ]
    if full:
        rows.append((FaultPlan(name="flaky-campus", faults=(
            Fault("link", "backbone", start=warmup, duration=duration,
                  loss=0.02, corrupt=0.01, duplicate=0.01),
            Fault("server_crash", "server0", start=crash_at,
                  duration=crash_outage),
            Fault("disk", "server1", start=warmup + 0.5 * duration,
                  duration=0.3 * duration, error_rate=0.02,
                  latency_factor=3.0),
        )), "on-close"))
    return rows


def _run_plan(plan, shape, write_policy="on-close"):
    """One campus day under one plan; returns the per-plan report."""
    start_wall = time.perf_counter()
    campus = ITCSystem(SystemConfig(
        mode="revised",
        clusters=shape["clusters"],
        workstations_per_cluster=shape["workstations_per_cluster"],
        functional_payload_crypto=False,
        write_policy=write_policy,
        # Single-attempt write-back: keeps this bench's virtual outputs
        # byte-identical to runs predating deferred-flush retries.
        flush_retry_limit=0,
        fault_plan=plan,
    ))
    users = provision_campus(campus, hot_files=8, cold_files=10,
                             shared_files=10, binary_files=6)
    summary = run_campus_day(campus, users, duration=shape["duration"],
                             warmup=shape["warmup"])
    wall = time.perf_counter() - start_wall

    stores = sum(ws.venus.stores for ws in campus.workstations)
    deferred = sum(ws.venus.deferred_flushes for ws in campus.workstations)
    dirty = sum(
        sum(1 for entry in ws.venus.cache if entry.dirty)
        for ws in campus.workstations
    )
    retransmissions = sum(ws.venus.node.retransmissions
                          for ws in campus.workstations)
    rejected = (
        sum(ws.venus.node.corrupt_rejected for ws in campus.workstations)
        + sum(server.node.corrupt_rejected for server in campus.servers)
    )
    availability = summary["availability"]
    return {
        "plan": plan.to_dict(),
        "write_policy": write_policy,
        "wall_seconds": round(wall, 3),
        "virtual_actions": summary["actions"],
        "availability": round(availability["availability"], 6),
        "attempts": availability["attempts"],
        "failures": availability["failures"],
        "outages": availability["outages"],
        "mttr": {k: round(v, 3) if isinstance(v, float) else v
                 for k, v in availability["mttr"].items()},
        "ttfs": {k: round(v, 3) if isinstance(v, float) else v
                 for k, v in availability["ttfs"].items()},
        "events": availability["events"],
        "injections": {k: v for k, v in campus.fault_scheduler.stats.items() if v},
        "writes": {
            "stores": stores,
            "deferred_flushes": deferred,
            "dirty_remaining": dirty,
        },
        "retransmissions": retransmissions,
        "corrupt_rejected": rejected,
    }, campus


def run_availability_benchmark(shape=None, full=None) -> dict:
    """The whole scenario table; returns the report dict."""
    if shape is None:
        shape = SHAPE
    if full is None:
        full = shape is SHAPE
    report = {"shape": dict(shape), "plans": {}}
    for plan, write_policy in _scenarios(shape, full):
        row, _campus = _run_plan(plan, shape, write_policy)
        report["plans"][plan.name] = row
    return report


def _print_report(report: dict) -> None:
    shape = report["shape"]
    print(f"availability bench: {shape['clusters']} clusters x "
          f"{shape['workstations_per_cluster']} workstations, "
          f"{shape['duration']:.0f}s measured")
    header = (f"  {'plan':16s} {'avail':>7s} {'fail':>5s} {'outages':>7s} "
              f"{'MTTR p50':>9s} {'MTTR p90':>9s} {'rexmit':>7s} "
              f"{'rejected':>8s} {'dirty':>6s} {'wall s':>7s}")
    print(header)
    for name, row in report["plans"].items():
        mttr = row["mttr"]
        print(f"  {name:16s} {row['availability']:7.2%} {row['failures']:>5d} "
              f"{row['outages']:>7d} {mttr['p50']:>8.1f}s {mttr['p90']:>8.1f}s "
              f"{row['retransmissions']:>7d} {row['corrupt_rejected']:>8d} "
              f"{row['writes']['dirty_remaining']:>6d} "
              f"{row['wall_seconds']:>7.2f}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="scaled-down shape under a hard time budget (CI)")
    parser.add_argument("--json", metavar="FILE", default="",
                        help="also write the report as JSON")
    parser.add_argument("--timeline", metavar="FILE", default="",
                        help="write the server-crash plan's outage timeline")
    args = parser.parse_args()

    shape = SMOKE_SHAPE if args.smoke else SHAPE
    report = {"shape": dict(shape), "plans": {}}
    wall_total = 0.0
    for plan, write_policy in _scenarios(shape, full=not args.smoke):
        row, campus = _run_plan(plan, shape, write_policy)
        report["plans"][plan.name] = row
        wall_total += row["wall_seconds"]
        if args.timeline and plan.name == "server-crash":
            os.makedirs(os.path.dirname(os.path.abspath(args.timeline)),
                        exist_ok=True)
            count = campus.availability.write_timeline(args.timeline)
            print(f"timeline: {count} events -> {args.timeline}")
    _print_report(report)

    clean = report["plans"]["clean"]
    if clean["failures"] or clean["outages"]:
        print(f"clean plan not clean: {clean['failures']} failures, "
              f"{clean['outages']} outages", file=sys.stderr)
        return 1

    if args.json:
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.smoke:
        verdict = "ok" if wall_total <= SMOKE_BUDGET_SECONDS else "TOO SLOW"
        print(f"smoke budget: {wall_total:.2f} s of "
              f"{SMOKE_BUDGET_SECONDS:.1f} s allowed  {verdict}")
        if verdict != "ok":
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
