"""Campus-scale wall-clock benchmark: 4 clusters, 200 workstations.

The paper's deployment target is thousands of workstations in clusters of
50-100; the EXP-* benches run at toy sizes.  This bench drives one full
cluster-scale campus — 4 clusters of 50 workstations on a backbone, each
user running the Andrew-mix synthetic workload — under a protection domain
with Grapevine-style recursively nested groups (departments containing
project groups, §3.4), so the per-request protection, routing and RPC
dispatch paths are exercised at realistic fan-out.

Reported quantities:

* ``setup_wall_seconds`` — building and provisioning the campus;
* ``run_wall_seconds``   — executing the simulated day (the headline
  number the fast paths exist to shrink);
* ``events_per_second``  — kernel events scheduled per wall second;
* ``virtual_*``          — simulated results (actions, hit ratio, busiest
  CPU).  These must be byte-identical across perf commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_campus.py           # full shape
    PYTHONPATH=src python benchmarks/bench_campus.py --smoke   # CI budget
    PYTHONPATH=src python benchmarks/bench_campus.py --json F  # write JSON
"""

import argparse
import contextlib
import json
import os
import sys
import time

if __package__ is None or __package__ == "":  # running as a script
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro import ITCSystem, SystemConfig
from repro.vice.protection import AccessList
from repro.workload import provision_campus, run_campus_day

__all__ = ["build_campus", "run_campus_benchmark", "CAMPUS_SHAPE", "SMOKE_SHAPE"]

# The full shape: one paper-scale campus (4 clusters x 50 workstations).
CAMPUS_SHAPE = dict(
    clusters=4, workstations_per_cluster=50,
    duration=1800.0, warmup=600.0,
    projects_per_dept=25, projects_per_user=3,
)

# Scaled down for CI: same code paths, a fraction of the work.
SMOKE_SHAPE = dict(
    clusters=2, workstations_per_cluster=10,
    duration=900.0, warmup=120.0,
    projects_per_dept=8, projects_per_user=2,
)

# Absolute wall-clock budget for --smoke, seconds.  The smoke run takes
# ~0.25 s on the reference container; the budget leaves >10x headroom for
# slow shared CI runners while still failing loudly if the fast paths
# regress to the pre-optimisation cost profile (which would not fit even
# on fast hardware once multiplied across the smoke run).
SMOKE_BUDGET_SECONDS = 3.5


def provision_protection_domain(campus, projects_per_dept, projects_per_user):
    """A Grapevine-style group hierarchy over the provisioned users.

    Each cluster is a department; departments contain project groups and
    belong to ``campus:all``; every user joins their department and a few
    projects.  Shared-volume ACLs grant through the groups, so every access
    check must walk the membership graph (or hit the CPS cache).
    """
    config = campus.config
    campus.add_group("campus:all")
    project_names = []
    for cluster in range(config.clusters):
        dept = f"dept{cluster}"
        campus.add_group(dept)
        campus.add_member("campus:all", dept)
        for p in range(projects_per_dept):
            project = f"proj{cluster}-{p:02d}"
            campus.add_group(project)
            campus.add_member(dept, project)
            project_names.append((cluster, project))

    per_dept = [[name for c, name in project_names if c == cluster]
                for cluster in range(config.clusters)]
    for index in range(config.total_workstations):
        username = f"user{index:03d}"
        cluster = index // config.workstations_per_cluster
        campus.add_member(f"dept{cluster}", username)
        own = per_dept[cluster]
        for k in range(projects_per_user):
            campus.add_member(own[(index * 7 + k * 3) % len(own)], username)

    # The shared project tree is readable through the group graph, not by
    # system:anyuser: rights now genuinely depend on each caller's CPS.
    acl = AccessList()
    acl.grant("campus:all", "rl")
    for cluster in range(config.clusters):
        acl.grant(f"dept{cluster}", "rliw")
    project_volume = campus.volume("proj")
    campus.set_directory_acl(project_volume, "/", acl)
    campus.set_directory_acl(project_volume, "/files", acl)


def build_campus(clusters, workstations_per_cluster, projects_per_dept,
                 projects_per_user, seed=0, scheduler=None, sharding=None,
                 **_ignored):
    """Build and provision the campus; returns ``(campus, users)``.

    ``scheduler`` overrides the event-queue implementation ("calendar" or
    "heap"); ``None`` keeps the :class:`SystemConfig` default.  ``sharding``
    (a :class:`repro.sim.shard.ShardConfig`) selects sharded parallel
    execution for the simulated day.
    """
    config_kwargs = dict(
        mode="revised",
        clusters=clusters,
        workstations_per_cluster=workstations_per_cluster,
        functional_payload_crypto=False,
        cache_max_files=120,
        seed=seed,
    )
    if scheduler is not None:
        config_kwargs["scheduler"] = scheduler
    if sharding is not None:
        config_kwargs["sharding"] = sharding
    campus = ITCSystem(SystemConfig(**config_kwargs))
    # batch_setup coalesces the per-mutation replica pushes; fall back to a
    # no-op so this script still measures the pre-optimisation baseline.
    batch = getattr(campus, "batch_setup", contextlib.nullcontext)
    with batch():
        users = provision_campus(campus, hot_files=12, cold_files=30,
                                 shared_files=40, binary_files=20)
        provision_protection_domain(campus, projects_per_dept, projects_per_user)
    return campus, users


def run_campus_benchmark(shape=None) -> dict:
    """One full benchmark run; returns the report dict."""
    shape = dict(CAMPUS_SHAPE if shape is None else shape)

    setup_start = time.perf_counter()
    campus, users = build_campus(**shape)
    setup_wall = time.perf_counter() - setup_start

    events_before = campus.sim._sequence
    run_start = time.perf_counter()
    summary = run_campus_day(
        campus, users, duration=shape["duration"], warmup=shape["warmup"]
    )
    run_wall = time.perf_counter() - run_start
    events = campus.sim._sequence - events_before

    return {
        "shape": {
            "clusters": shape["clusters"],
            "workstations": shape["clusters"] * shape["workstations_per_cluster"],
            "groups": 1 + shape["clusters"] * (1 + shape["projects_per_dept"]),
            "virtual_duration_seconds": shape["duration"],
            "virtual_warmup_seconds": shape["warmup"],
        },
        "setup_wall_seconds": round(setup_wall, 3),
        "run_wall_seconds": round(run_wall, 3),
        "events_scheduled": events,
        "events_per_second": round(events / run_wall) if run_wall else 0,
        "virtual_actions": summary["actions"],
        "virtual_failures": summary["failures"],
        "virtual_hit_ratio": round(summary["hit_ratio"], 6),
        "virtual_busiest_cpu": round(summary["busiest_cpu"], 6),
        "virtual_backbone_bytes": summary["cross_cluster_bytes"],
    }


def _print_report(report: dict) -> None:
    shape = report["shape"]
    print(f"campus: {shape['clusters']} clusters, {shape['workstations']} "
          f"workstations, {shape['groups']} groups")
    print(f"  setup          {report['setup_wall_seconds']:8.2f} wall s")
    print(f"  run            {report['run_wall_seconds']:8.2f} wall s "
          f"({shape['virtual_duration_seconds'] + shape['virtual_warmup_seconds']:.0f} virtual s)")
    print(f"  events         {report['events_scheduled']:>10d}  "
          f"({report['events_per_second']:,} events/s)")
    print(f"  actions        {report['virtual_actions']:>10d}  "
          f"(failures {report['virtual_failures']})")
    print(f"  hit ratio      {report['virtual_hit_ratio']:10.4f}")
    print(f"  busiest CPU    {report['virtual_busiest_cpu']:10.4f}")
    print(f"  backbone bytes {report['virtual_backbone_bytes']:>10d}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="scaled-down shape under a hard time budget (CI)")
    parser.add_argument("--json", metavar="FILE", default="",
                        help="also write the report as JSON")
    args = parser.parse_args()

    report = run_campus_benchmark(SMOKE_SHAPE if args.smoke else None)
    _print_report(report)

    if args.json:
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.smoke:
        verdict = "ok" if report["run_wall_seconds"] <= SMOKE_BUDGET_SECONDS else "TOO SLOW"
        print(f"smoke budget: {report['run_wall_seconds']:.2f} s of "
              f"{SMOKE_BUDGET_SECONDS:.1f} s allowed  {verdict}")
        if verdict != "ok":
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
