"""EXP-11 — the price of end-to-end encryption (§3.4, §5.1).

Paper: "We are awaiting the incorporation of the necessary encryption
hardware in our workstations and servers, since software encryption is too
slow to be viable" — and, §3.5, "security is compromised unless all
traffic ... is encrypted. We are not confident that paging traffic can be
encrypted without excessive performance degradation."

We fetch files of several sizes under no encryption, hardware-rate DES and
software-rate DES, and report the elapsed time per transfer.
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import Table
from repro.rpc.costs import EncryptionMode

from _common import one_round, save_table

SIZES = [4_096, 65_536, 524_288]


def run_mode(encryption):
    campus = ITCSystem(
        SystemConfig(mode="revised", clusters=1, workstations_per_cluster=1,
                     encryption=encryption, functional_payload_crypto=False,
                     cache_max_bytes=64_000_000)
    )
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    for size in SIZES:
        campus.populate(volume, {f"/f{size}": b"s" * size}, owner="u")
    session = campus.login(0, "u", "pw")
    sim = campus.sim
    timings = {}
    for size in SIZES:
        start = sim.now
        campus.run_op(session.read_file(f"/vice/usr/u/f{size}"))
        timings[size] = sim.now - start
    return timings


def test_exp11_encryption_overhead(benchmark):
    modes = (EncryptionMode.NONE, EncryptionMode.HARDWARE, EncryptionMode.SOFTWARE)
    results = one_round(benchmark, lambda: {mode: run_mode(mode) for mode in modes})

    table = Table(
        ["size (KB)", "none (s)", "hardware DES (s)", "software DES (s)",
         "hw overhead", "sw overhead"],
        title="EXP-11: cold fetch time by encryption mode",
    )
    for size in SIZES:
        none = results[EncryptionMode.NONE][size]
        hardware = results[EncryptionMode.HARDWARE][size]
        software = results[EncryptionMode.SOFTWARE][size]
        table.add(
            size // 1024,
            f"{none:.3f}",
            f"{hardware:.3f}",
            f"{software:.3f}",
            f"+{(hardware / none - 1) * 100:.0f}%",
            f"+{(software / none - 1) * 100:.0f}%",
        )
    save_table("EXP-11_encryption", table)

    benchmark.extra_info["timings"] = {
        mode: {str(k): round(v, 4) for k, v in t.items()} for mode, t in results.items()
    }

    big = SIZES[-1]
    none = results[EncryptionMode.NONE][big]
    hardware = results[EncryptionMode.HARDWARE][big]
    software = results[EncryptionMode.SOFTWARE][big]
    # Hardware encryption is affordable (the design bet)...
    assert hardware < none * 1.6
    # ...software encryption is "too slow to be viable".
    assert software > hardware * 3
    assert software > none * 4
