"""EXP-2 — whole-file cache hit ratio (§5.2).

Paper: "Measurements indicate an average cache hit ratio of over 80%
during actual use."
"""

from repro.analysis import Table, format_share
from repro.system.calibration import HIT_RATIO_TARGET

from _common import campus_day, one_round, save_table


def test_exp2_hit_ratio(benchmark):
    campus, summary = one_round(benchmark, lambda: campus_day(mode="prototype"))

    per_ws = [ws.venus.cache.hit_ratio for ws in campus.workstations]
    table = Table(["quantity", "paper", "measured"], title="EXP-2: Venus cache hit ratio")
    table.add("campus mean hit ratio", f"> {format_share(HIT_RATIO_TARGET)}",
              format_share(summary["hit_ratio"]))
    table.add("worst workstation", "—", format_share(min(per_ws)))
    table.add("best workstation", "—", format_share(max(per_ws)))
    save_table("EXP-2_hit_ratio", table)

    benchmark.extra_info["hit_ratio"] = round(summary["hit_ratio"], 4)
    assert summary["hit_ratio"] > HIT_RATIO_TARGET
    # No pathological workstation hides behind the mean.
    assert min(per_ws) > 0.5
