"""Microbenchmarks for the simulation kernel and the session crypto.

Unlike the EXP-* benches, these measure **wall-clock** cost of the hot
machinery itself: event churn through the heap, resource claim/release,
and sealing/unsealing file payloads.  They exist to keep the fast paths
fast — ``--smoke`` runs scaled-down versions under absolute time budgets
(set at roughly 2-3x the current cost on the reference container) so a
>2x regression fails loudly in CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py           # full run
    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke   # CI budget
    pytest benchmarks/bench_kernel.py                          # via pytest-benchmark
"""

import argparse
import os
import sys
import time

if __package__ is None or __package__ == "":  # running as a script
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.crypto.cipher import SessionCipher, seal, unseal
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

__all__ = ["run_microbenchmarks"]

_KEY = bytes(range(32))


# ----------------------------------------------------------------------
# kernel churn
# ----------------------------------------------------------------------

def event_churn(processes: int = 200, hops: int = 100) -> float:
    """Wall seconds to drive ``processes`` generators through ``hops`` timeouts."""
    sim = Simulator()

    def hopper(delay):
        for _ in range(hops):
            yield sim.timeout(delay)

    for index in range(processes):
        sim.process(hopper(0.001 * (index + 1)))
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def resource_churn(processes: int = 50, claims: int = 200) -> float:
    """Wall seconds for contended claim/hold/release cycles on one resource."""
    sim = Simulator()
    cpu = Resource(sim, capacity=1, name="bench-cpu")

    def worker():
        for _ in range(claims):
            yield from cpu.use(0.001)

    for _ in range(processes):
        sim.process(worker())
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# session crypto
# ----------------------------------------------------------------------

def crypto_seal_unseal(size: int = 65_536, repeats: int = 20) -> float:
    """Wall seconds to seal+unseal ``repeats`` distinct ``size``-byte buffers.

    Each repeat uses a distinct nonce so the keystream cache cannot hide
    the derivation cost: this is the cold per-transfer price.
    """
    data = os.urandom(size)
    start = time.perf_counter()
    for counter in range(repeats):
        nonce = counter.to_bytes(8, "big")
        sealed = seal(_KEY, nonce, data)
        unseal(_KEY, sealed)
    return time.perf_counter() - start


def session_roundtrip(size: int = 65_536, messages: int = 50) -> float:
    """Wall seconds for the in-process SealedPayload fast path, end to end."""
    data = os.urandom(size)
    sender = SessionCipher(_KEY, direction=0)
    receiver = SessionCipher(_KEY, direction=0)
    start = time.perf_counter()
    for _ in range(messages):
        sealed = sender.seal_payload(data)
        receiver.open_payload(sealed)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

_FULL = {
    "event_churn": lambda: event_churn(),
    "resource_churn": lambda: resource_churn(),
    "crypto_seal_unseal_64k": lambda: crypto_seal_unseal(),
    "session_roundtrip_64k": lambda: session_roundtrip(),
}

# Scaled-down variants with absolute wall-clock budgets (seconds).  The
# budgets sit at ~2.5x the best-of-3 cost measured on the reference
# container, so a genuine >2x slowdown trips them while ordinary machine
# noise does not.
_SMOKE = {
    "event_churn": (lambda: event_churn(processes=100, hops=100), 0.035),
    "resource_churn": (lambda: resource_churn(processes=50, claims=100), 0.045),
    "crypto_seal_unseal_64k": (lambda: crypto_seal_unseal(repeats=10), 0.035),
    "session_roundtrip_64k": (lambda: session_roundtrip(messages=25), 0.075),
}


def run_microbenchmarks(best_of: int = 3) -> dict:
    """Run every microbenchmark; returns ``{name: best_wall_seconds}``."""
    return {
        name: min(func() for _ in range(best_of)) for name, func in _FULL.items()
    }


def run_smoke() -> int:
    """Scaled-down run under time budgets; returns a process exit code."""
    failures = 0
    for name, (func, budget) in _SMOKE.items():
        best = min(func() for _ in range(3))
        verdict = "ok" if best <= budget else "TOO SLOW"
        if best > budget:
            failures += 1
        print(f"  {name:28s} {best * 1000:8.2f} ms  (budget {budget * 1000:.0f} ms)  {verdict}")
    if failures:
        print(f"{failures} microbenchmark(s) exceeded their time budget")
    return 1 if failures else 0


# -- pytest-benchmark integration --------------------------------------

def test_kernel_event_churn(benchmark):
    benchmark.pedantic(event_churn, rounds=3, iterations=1, warmup_rounds=1)


def test_kernel_resource_churn(benchmark):
    benchmark.pedantic(resource_churn, rounds=3, iterations=1, warmup_rounds=1)


def test_crypto_seal_unseal(benchmark):
    benchmark.pedantic(crypto_seal_unseal, rounds=3, iterations=1, warmup_rounds=1)


def test_session_roundtrip(benchmark):
    benchmark.pedantic(session_roundtrip, rounds=3, iterations=1, warmup_rounds=1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="scaled-down run with hard time budgets (CI)")
    args = parser.parse_args()
    if args.smoke:
        return run_smoke()
    for name, seconds in run_microbenchmarks().items():
        print(f"  {name:28s} {seconds * 1000:8.2f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
