"""Microbenchmarks for the simulation kernel and the session crypto.

Unlike the EXP-* benches, these measure **wall-clock** cost of the hot
machinery itself: event churn through the heap, resource claim/release,
and sealing/unsealing file payloads.  They exist to keep the fast paths
fast — ``--smoke`` runs scaled-down versions under absolute time budgets
(set at roughly 2-3x the current cost on the reference container) so a
>2x regression fails loudly in CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py           # full run
    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke   # CI budget
    pytest benchmarks/bench_kernel.py                          # via pytest-benchmark
"""

import argparse
import os
import sys
import time

if __package__ is None or __package__ == "":  # running as a script
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.crypto.cipher import SessionCipher, seal, unseal
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

__all__ = ["run_microbenchmarks"]

_KEY = bytes(range(32))


# ----------------------------------------------------------------------
# kernel churn
# ----------------------------------------------------------------------

def event_churn(processes: int = 200, hops: int = 100) -> float:
    """Wall seconds to drive ``processes`` generators through ``hops`` timeouts."""
    sim = Simulator()

    def hopper(delay):
        for _ in range(hops):
            yield sim.timeout(delay)

    for index in range(processes):
        sim.process(hopper(0.001 * (index + 1)))
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def resource_churn(processes: int = 50, claims: int = 200) -> float:
    """Wall seconds for contended claim/hold/release cycles on one resource."""
    sim = Simulator()
    cpu = Resource(sim, capacity=1, name="bench-cpu")

    def worker():
        for _ in range(claims):
            yield from cpu.use(0.001)

    for _ in range(processes):
        sim.process(worker())
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def queue_churn(scheduler: str = "calendar", pending: int = 2_000,
                cycles: int = 50_000) -> float:
    """Wall seconds of insert/extract-heavy queue traffic.

    Holds ``pending`` timers alive (a metropolis-sized pending set, far
    beyond what ``event_churn``'s lockstep hops keep queued) while every
    fired timer immediately reschedules at a spread of delays — the
    steady-state push/pop pattern the calendar queue's O(1) buckets are
    built for.  Catches scheduler regressions without a campus build.
    """
    sim = Simulator(scheduler=scheduler)
    fired = [0]

    def rearm(event):
        fired[0] += 1
        if fired[0] < cycles:
            # Deterministic spread over ~3 decades of delay, like a campus
            # mixing RPC service times with user think timers.
            delay = 0.001 * (1 + (fired[0] * 7919) % 997)
            sim.timeout(delay).add_callback(rearm)

    for index in range(pending):
        sim.timeout(0.001 * (index + 1)).add_callback(rearm)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def cancel_churn(scheduler: str = "calendar", rpcs: int = 30_000,
                 pending: int = 500) -> float:
    """Wall seconds of cancel-heavy traffic: retransmit timers that lose.

    Every simulated RPC arms a guard timer and then completes first, so
    the timer is cancelled — the lazy-cancel pattern that used to leave
    corpses in the heap until their timestamp came due.  Exercises
    ``note_cancel`` bookkeeping and threshold compaction under a standing
    population of ``pending`` long timers.
    """
    sim = Simulator(scheduler=scheduler)
    done = [0]

    def complete(event):
        done[0] += 1
        if done[0] < rpcs:
            guard = sim.timeout(30.0)          # retransmit guard, never fires
            guard.cancel()
            sim.timeout(0.002).add_callback(complete)

    for index in range(pending):
        sim.timeout(1000.0 + index)            # standing far-future load
    sim.timeout(0.002).add_callback(complete)
    start = time.perf_counter()
    sim.run(until=900.0)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# session crypto
# ----------------------------------------------------------------------

def crypto_seal_unseal(size: int = 65_536, repeats: int = 20) -> float:
    """Wall seconds to seal+unseal ``repeats`` distinct ``size``-byte buffers.

    Each repeat uses a distinct nonce so the keystream cache cannot hide
    the derivation cost: this is the cold per-transfer price.
    """
    data = os.urandom(size)
    start = time.perf_counter()
    for counter in range(repeats):
        nonce = counter.to_bytes(8, "big")
        sealed = seal(_KEY, nonce, data)
        unseal(_KEY, sealed)
    return time.perf_counter() - start


def session_roundtrip(size: int = 65_536, messages: int = 50) -> float:
    """Wall seconds for the in-process SealedPayload fast path, end to end."""
    data = os.urandom(size)
    sender = SessionCipher(_KEY, direction=0)
    receiver = SessionCipher(_KEY, direction=0)
    start = time.perf_counter()
    for _ in range(messages):
        sealed = sender.seal_payload(data)
        receiver.open_payload(sealed)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# erasure codec (repro.vice.erasure GF(256) hot loop)
# ----------------------------------------------------------------------

def erasure_encode(size: int = 262_144, k: int = 4, m: int = 2,
                   repeats: int = 10) -> float:
    """Wall seconds to stripe ``repeats`` ``size``-byte buffers into k+m.

    The whole-buffer translate/xor fast path: each parity fragment is a
    GF(256) linear combination computed with ``bytes.translate`` lookup
    tables, the same vectorization style as the session cipher.
    """
    from repro.vice.erasure import encode

    data = os.urandom(size)
    start = time.perf_counter()
    for _ in range(repeats):
        encode(data, k, m)
    return time.perf_counter() - start


def erasure_decode_degraded(size: int = 262_144, k: int = 4, m: int = 2,
                            repeats: int = 10) -> float:
    """Wall seconds for worst-case degraded reconstruction.

    Drops ``m`` *data* fragments so every repeat pays the full price: a
    k-by-k matrix inversion plus ``k`` translate/xor linear combinations
    per missing fragment — the path a degraded read takes when parity
    must stand in for dead servers.
    """
    from repro.vice.erasure import decode, encode

    data = os.urandom(size)
    frags = encode(data, k, m)
    survivors = {i: frags[i] for i in range(m, k + m)}  # lose data frags 0..m-1
    start = time.perf_counter()
    for _ in range(repeats):
        decode(dict(survivors), k, m, size)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# shard channel (repro.sim.shard cross-worker packet path)
# ----------------------------------------------------------------------

def _shard_packet_batch(batch_size: int):
    """A representative handoff batch: RPC-sized datagrams plus route state."""
    from repro.net.packet import Datagram

    return [
        (1234.5678 + i * 1e-4, 1, i, 1, "rpc", True,
         Datagram(f"ws{i:03d}", "server0", os.urandom(256), 1024 + i))
        for i in range(batch_size)
    ]


def shard_packet_pickle(batches: int = 400, batch_size: int = 8) -> float:
    """Wall seconds to serialize + deserialize shard handoff batches.

    This is the CPU half of a cross-shard handoff: everything a packet
    pays besides the OS pipe transit itself.
    """
    import pickle

    batch = _shard_packet_batch(batch_size)
    start = time.perf_counter()
    for _ in range(batches):
        pickle.loads(pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL))
    return time.perf_counter() - start


def shard_channel_churn(batches: int = 400, batch_size: int = 8) -> float:
    """Wall seconds to push shard handoff batches through an OS pipe.

    The full per-window channel cost — ``Connection.send`` (pickle + write)
    and ``Connection.recv`` (read + unpickle) — measured in-process so the
    number excludes scheduler noise and isolates the transport itself.
    """
    import multiprocessing

    ctx = multiprocessing.get_context()
    reader, writer = ctx.Pipe(duplex=False)
    batch = _shard_packet_batch(batch_size)
    try:
        start = time.perf_counter()
        for _ in range(batches):
            writer.send(batch)
            reader.recv()
        return time.perf_counter() - start
    finally:
        reader.close()
        writer.close()


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

_FULL = {
    "event_churn": lambda: event_churn(),
    "resource_churn": lambda: resource_churn(),
    "queue_churn_calendar": lambda: queue_churn("calendar"),
    "queue_churn_heap": lambda: queue_churn("heap"),
    "cancel_churn_calendar": lambda: cancel_churn("calendar"),
    "cancel_churn_heap": lambda: cancel_churn("heap"),
    "crypto_seal_unseal_64k": lambda: crypto_seal_unseal(),
    "session_roundtrip_64k": lambda: session_roundtrip(),
    "erasure_encode_256k": lambda: erasure_encode(),
    "erasure_decode_degraded_256k": lambda: erasure_decode_degraded(),
    "shard_packet_pickle": lambda: shard_packet_pickle(),
    "shard_channel_churn": lambda: shard_channel_churn(),
}

# Scaled-down variants with absolute wall-clock budgets (seconds).  The
# budgets sit at ~2.5x the best-of-3 cost measured on the reference
# container, so a genuine >2x slowdown trips them while ordinary machine
# noise does not.
_SMOKE = {
    "event_churn": (lambda: event_churn(processes=100, hops=100), 0.035),
    "resource_churn": (lambda: resource_churn(processes=50, claims=100), 0.045),
    "queue_churn_calendar": (lambda: queue_churn("calendar", pending=500, cycles=10_000), 0.060),
    "queue_churn_heap": (lambda: queue_churn("heap", pending=500, cycles=10_000), 0.060),
    "cancel_churn_calendar": (lambda: cancel_churn("calendar", rpcs=5_000, pending=200), 0.060),
    "cancel_churn_heap": (lambda: cancel_churn("heap", rpcs=5_000, pending=200), 0.060),
    "crypto_seal_unseal_64k": (lambda: crypto_seal_unseal(repeats=10), 0.035),
    "session_roundtrip_64k": (lambda: session_roundtrip(messages=25), 0.075),
    "erasure_encode_64k": (lambda: erasure_encode(size=65_536, repeats=5), 0.008),
    "erasure_decode_degraded_64k": (lambda: erasure_decode_degraded(size=65_536, repeats=5), 0.009),
    "shard_packet_pickle": (lambda: shard_packet_pickle(batches=200), 0.015),
    "shard_channel_churn": (lambda: shard_channel_churn(batches=200), 0.020),
}


def run_microbenchmarks(best_of: int = 3) -> dict:
    """Run every microbenchmark; returns ``{name: best_wall_seconds}``."""
    return {
        name: min(func() for _ in range(best_of)) for name, func in _FULL.items()
    }


def run_smoke() -> int:
    """Scaled-down run under time budgets; returns a process exit code."""
    failures = 0
    for name, (func, budget) in _SMOKE.items():
        best = min(func() for _ in range(3))
        verdict = "ok" if best <= budget else "TOO SLOW"
        if best > budget:
            failures += 1
        print(f"  {name:28s} {best * 1000:8.2f} ms  (budget {budget * 1000:.0f} ms)  {verdict}")
    if failures:
        print(f"{failures} microbenchmark(s) exceeded their time budget")
    return 1 if failures else 0


# -- pytest-benchmark integration --------------------------------------

def test_kernel_event_churn(benchmark):
    benchmark.pedantic(event_churn, rounds=3, iterations=1, warmup_rounds=1)


def test_kernel_resource_churn(benchmark):
    benchmark.pedantic(resource_churn, rounds=3, iterations=1, warmup_rounds=1)


def test_kernel_queue_churn_calendar(benchmark):
    benchmark.pedantic(lambda: queue_churn("calendar"),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_kernel_queue_churn_heap(benchmark):
    benchmark.pedantic(lambda: queue_churn("heap"),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_kernel_cancel_churn_calendar(benchmark):
    benchmark.pedantic(lambda: cancel_churn("calendar"),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_kernel_cancel_churn_heap(benchmark):
    benchmark.pedantic(lambda: cancel_churn("heap"),
                       rounds=3, iterations=1, warmup_rounds=1)


def test_crypto_seal_unseal(benchmark):
    benchmark.pedantic(crypto_seal_unseal, rounds=3, iterations=1, warmup_rounds=1)


def test_session_roundtrip(benchmark):
    benchmark.pedantic(session_roundtrip, rounds=3, iterations=1, warmup_rounds=1)


def test_erasure_encode(benchmark):
    benchmark.pedantic(erasure_encode, rounds=3, iterations=1, warmup_rounds=1)


def test_erasure_decode_degraded(benchmark):
    benchmark.pedantic(erasure_decode_degraded, rounds=3, iterations=1,
                       warmup_rounds=1)


def test_shard_packet_pickle(benchmark):
    benchmark.pedantic(shard_packet_pickle, rounds=3, iterations=1, warmup_rounds=1)


def test_shard_channel_churn(benchmark):
    benchmark.pedantic(shard_channel_churn, rounds=3, iterations=1, warmup_rounds=1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="scaled-down run with hard time budgets (CI)")
    args = parser.parse_args()
    if args.smoke:
        return run_smoke()
    for name, seconds in run_microbenchmarks().items():
        print(f"  {name:28s} {seconds * 1000:8.2f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
