"""Metropolis-scale wall-clock benchmark: 200 → 1,000 → 5,000 workstations.

The paper sizes Vice for "more than 5,000 workstations" on one campus
(§1-§2); ``bench_campus`` stops at 200.  This bench sweeps the same
Andrew-mix workload across three scales and reports kernel events per
wall-clock second at each — the headline number for the event-kernel
scale-out work (calendar queue + cascade batching).

Virtual durations shrink as the campus grows so every scale finishes in
comparable wall time: the point is queue behavior under a large *pending
set* (5,000 workstations keep ~10-25k events pending), not a long day.

Reported per scale:

* ``events_per_second``  — the headline throughput number;
* ``setup_wall_seconds`` / ``run_wall_seconds``;
* ``queue``              — the scheduler's own stats (bucket occupancy,
  resizes, dead-event counts) as exposed by ``sim.scheduler_stats``;
* ``virtual_*``          — simulated results, byte-identical across
  schedulers and perf commits.

Usage::

With ``--workers`` the sweep also runs each scale under sharded parallel
execution (``repro.sim.shard``): an unsharded reference first, then one
run per worker count, asserting the virtual outputs stay byte-identical
and reporting aggregate events/s plus speedup — the headline numbers for
the per-cluster event-loop scale-out work.

Usage::

    PYTHONPATH=src python benchmarks/bench_metropolis.py             # all scales
    PYTHONPATH=src python benchmarks/bench_metropolis.py --smoke     # CI budget
    PYTHONPATH=src python benchmarks/bench_metropolis.py --scheduler heap
    PYTHONPATH=src python benchmarks/bench_metropolis.py --workers 2,4
    PYTHONPATH=src python benchmarks/bench_metropolis.py --shard-smoke
    PYTHONPATH=src python benchmarks/bench_metropolis.py --json F
"""

import argparse
import json
import os
import sys
import time

if __package__ is None or __package__ == "":  # running as a script
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)
    _BENCH = os.path.dirname(os.path.abspath(__file__))
    if _BENCH not in sys.path:
        sys.path.insert(0, _BENCH)

from bench_campus import build_campus
from repro.workload import run_campus_day

__all__ = ["run_scale", "run_metropolis_benchmark", "run_workers_sweep",
           "run_shard_smoke", "assert_parity", "SCALES", "SMOKE_SCALES"]

# The sweep.  50-workstation clusters throughout (the paper's cluster
# unit); durations shrink with scale so wall time stays comparable.
SCALES = [
    dict(name="campus-200", clusters=4, workstations_per_cluster=50,
         duration=600.0, warmup=120.0),
    dict(name="metro-1000", clusters=20, workstations_per_cluster=50,
         duration=300.0, warmup=60.0),
    dict(name="metro-5000", clusters=100, workstations_per_cluster=50,
         duration=30.0, warmup=10.0),
]

# CI smoke: the 1,000-workstation scale must fit the budget, so it runs a
# shorter day (same code paths, same pending-set size).
SMOKE_SCALES = [
    dict(name="campus-200", clusters=4, workstations_per_cluster=50,
         duration=300.0, warmup=60.0),
    dict(name="metro-1000", clusters=20, workstations_per_cluster=50,
         duration=120.0, warmup=30.0),
]

# Absolute wall-clock budget for the whole --smoke sweep, seconds.  The
# smoke sweep takes ~8 s on the reference container; the budget leaves
# generous headroom for slow shared CI runners.
SMOKE_BUDGET_SECONDS = 120.0

# The --shard-smoke gate: campus-200 over a short day, unsharded vs two
# workers, byte-identical virtual outputs required.  Single-core runners
# (like the reference container) pay the conservative-sync overhead
# without any parallelism to recoup it, so the speedup assertion only
# arms on hosts with >= 4 cores; the wall budget covers the 1-core case.
SHARD_SMOKE_SCALE = dict(name="campus-200", clusters=4,
                         workstations_per_cluster=50,
                         duration=300.0, warmup=60.0)
SHARD_SMOKE_WORKERS = 2
SHARD_SMOKE_MIN_SPEEDUP = 1.2
SHARD_SMOKE_BUDGET_SECONDS = 240.0

_SHARED_SHAPE = dict(projects_per_dept=25, projects_per_user=3)


def run_scale(scale: dict, scheduler: str = None, workers: int = None) -> dict:
    """Build one campus at ``scale`` and run it; returns the report dict.

    ``workers`` selects sharded parallel execution; the report then counts
    events aggregated across the worker kernels (the parent kernel idles)
    and carries the per-shard engine stats under ``"shards"``.
    """
    shape = dict(_SHARED_SHAPE, **scale)
    sharding = None
    if workers is not None:
        from repro.sim.shard import ShardConfig

        sharding = ShardConfig(workers=workers)

    setup_start = time.perf_counter()
    campus, users = build_campus(scheduler=scheduler, sharding=sharding, **shape)
    setup_wall = time.perf_counter() - setup_start

    run_start = time.perf_counter()
    if sharding is not None:
        from repro.sim.shard import run_sharded_campus_day

        shard_stats = []
        summary = run_sharded_campus_day(
            campus, users, duration=shape["duration"], warmup=shape["warmup"],
            stats_sink=shard_stats,
        )
        run_wall = time.perf_counter() - run_start
        events = sum(stats["events"] for stats in shard_stats)
    else:
        events_before = campus.sim._sequence
        summary = run_campus_day(
            campus, users, duration=shape["duration"], warmup=shape["warmup"]
        )
        run_wall = time.perf_counter() - run_start
        events = campus.sim._sequence - events_before
        shard_stats = None

    report = {
        "name": scale["name"],
        "workstations": shape["clusters"] * shape["workstations_per_cluster"],
        "clusters": shape["clusters"],
        "virtual_seconds": shape["duration"] + shape["warmup"],
        "setup_wall_seconds": round(setup_wall, 3),
        "run_wall_seconds": round(run_wall, 3),
        "events_scheduled": events,
        "events_per_second": round(events / run_wall) if run_wall else 0,
        "queue": campus.sim.scheduler_stats,
        "virtual_actions": summary["actions"],
        "virtual_failures": summary["failures"],
        "virtual_hit_ratio": round(summary["hit_ratio"], 6),
        "virtual_busiest_cpu": round(summary["busiest_cpu"], 6),
        "virtual_backbone_bytes": summary["cross_cluster_bytes"],
    }
    if workers is not None:
        report["workers"] = workers
        report["shards"] = shard_stats
    return report


_PARITY_KEYS = ("virtual_actions", "virtual_failures", "virtual_hit_ratio",
                "virtual_busiest_cpu", "virtual_backbone_bytes")


def assert_parity(reference: dict, sharded: dict) -> None:
    """Byte-identical virtual outputs or die: sharding is a pure perf knob."""
    for key in _PARITY_KEYS:
        if reference[key] != sharded[key]:
            raise AssertionError(
                f"{sharded['name']} workers={sharded.get('workers')}: {key} "
                f"diverged (unsharded {reference[key]!r}, sharded {sharded[key]!r})"
            )


def run_workers_sweep(scales, workers_list, scheduler: str = None) -> dict:
    """Unsharded reference + one sharded run per worker count, per scale."""
    entries = []
    for scale in scales:
        reference = run_scale(scale, scheduler=scheduler)
        sharded = []
        for workers in workers_list:
            report = run_scale(scale, scheduler=scheduler, workers=workers)
            assert_parity(reference, report)
            base = reference["events_per_second"]
            report["speedup"] = (
                round(report["events_per_second"] / base, 2) if base else 0.0
            )
            sharded.append(report)
        entries.append({"name": scale["name"], "reference": reference,
                        "sharded": sharded})
    return {"workers": list(workers_list), "scales": entries}


def run_metropolis_benchmark(scales=None, scheduler: str = None) -> dict:
    """Run the sweep; returns ``{"scheduler": ..., "scales": [...]}``."""
    reports = [run_scale(scale, scheduler=scheduler)
               for scale in (SCALES if scales is None else scales)]
    return {
        "scheduler": reports[0]["queue"]["scheduler"] if reports else scheduler,
        "scales": reports,
    }


def _print_report(report: dict) -> None:
    print(f"metropolis sweep · scheduler={report['scheduler']}")
    header = (f"  {'scale':<12} {'ws':>6} {'setup s':>8} {'run s':>8} "
              f"{'events':>9} {'events/s':>9} {'actions':>8}")
    print(header)
    for scale in report["scales"]:
        print(f"  {scale['name']:<12} {scale['workstations']:>6} "
              f"{scale['setup_wall_seconds']:>8.2f} {scale['run_wall_seconds']:>8.2f} "
              f"{scale['events_scheduled']:>9d} {scale['events_per_second']:>9,} "
              f"{scale['virtual_actions']:>8d}")
    for scale in report["scales"]:
        queue = scale["queue"]
        if queue.get("scheduler") == "calendar":
            print(f"  {scale['name']:<12} queue: {queue['buckets']} buckets x "
                  f"{queue['bucket_width']:.3g}s, {queue['resizes']} resizes, "
                  f"{queue['compactions']} compactions, "
                  f"{queue['cascade_events']:,} cascade events")


def _print_workers_report(report: dict) -> None:
    print(f"sharded sweep · workers={report['workers']}")
    print(f"  {'scale':<12} {'ws':>6} {'workers':>8} {'run s':>8} "
          f"{'events':>9} {'events/s':>9} {'speedup':>8}")
    for entry in report["scales"]:
        ref = entry["reference"]
        print(f"  {ref['name']:<12} {ref['workstations']:>6} {'(none)':>8} "
              f"{ref['run_wall_seconds']:>8.2f} {ref['events_scheduled']:>9d} "
              f"{ref['events_per_second']:>9,} {'1.00':>8}")
        for row in entry["sharded"]:
            print(f"  {row['name']:<12} {row['workstations']:>6} "
                  f"{row['workers']:>8} {row['run_wall_seconds']:>8.2f} "
                  f"{row['events_scheduled']:>9d} {row['events_per_second']:>9,} "
                  f"{row['speedup']:>8.2f}")
        for stats in entry["sharded"][-1].get("shards") or []:
            print(f"    shard {stats['shard']}: clusters {stats['clusters']}, "
                  f"{stats['events_per_s']:,} events/s, "
                  f"{stats['windows']} windows, "
                  f"{stats['horizon_waits']} horizon waits, "
                  f"blocked {stats['blocked_pct']:.1f}%")


def run_shard_smoke() -> int:
    """The CI shard gate: parity always, speedup only on multicore hosts."""
    report = run_workers_sweep([SHARD_SMOKE_SCALE], [SHARD_SMOKE_WORKERS])
    _print_workers_report(report)
    entry = report["scales"][0]
    sharded = entry["sharded"][0]
    wall = entry["reference"]["run_wall_seconds"] + sharded["run_wall_seconds"]
    failures = 0
    print(f"virtual outputs: byte-identical across unsharded and "
          f"workers={SHARD_SMOKE_WORKERS}  ok")
    cores = os.cpu_count() or 1
    if cores >= 4:
        verdict = "ok" if sharded["speedup"] >= SHARD_SMOKE_MIN_SPEEDUP else "TOO SLOW"
        print(f"speedup gate ({cores} cores): {sharded['speedup']:.2f}x of "
              f"{SHARD_SMOKE_MIN_SPEEDUP:.1f}x required  {verdict}")
        if verdict != "ok":
            failures += 1
    else:
        print(f"speedup gate skipped: {cores} core(s) < 4 (sync overhead "
              f"has no parallelism to recoup)")
    verdict = "ok" if wall <= SHARD_SMOKE_BUDGET_SECONDS else "TOO SLOW"
    print(f"smoke budget: {wall:.2f} s of "
          f"{SHARD_SMOKE_BUDGET_SECONDS:.1f} s allowed  {verdict}")
    if verdict != "ok":
        failures += 1
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="200 + 1,000 workstations under a hard budget (CI)")
    parser.add_argument("--shard-smoke", action="store_true",
                        help="sharded-vs-unsharded parity + speedup gate (CI)")
    parser.add_argument("--scheduler", choices=("calendar", "heap"), default=None,
                        help="event-queue implementation (default: config default)")
    parser.add_argument("--workers", metavar="N[,N...]", default="",
                        help="also run each scale sharded over these worker counts")
    parser.add_argument("--json", metavar="FILE", default="",
                        help="also write the report as JSON")
    args = parser.parse_args()

    if args.shard_smoke:
        return run_shard_smoke()

    sweep_start = time.perf_counter()
    report = run_metropolis_benchmark(
        SMOKE_SCALES if args.smoke else None, scheduler=args.scheduler
    )
    sweep_wall = time.perf_counter() - sweep_start
    report["sweep_wall_seconds"] = round(sweep_wall, 3)
    _print_report(report)

    if args.workers:
        workers_list = [int(part) for part in args.workers.split(",") if part]
        sharded = run_workers_sweep(
            SMOKE_SCALES if args.smoke else SCALES, workers_list,
            scheduler=args.scheduler,
        )
        _print_workers_report(sharded)
        report["sharded"] = sharded

    if args.json:
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.smoke:
        verdict = "ok" if sweep_wall <= SMOKE_BUDGET_SECONDS else "TOO SLOW"
        print(f"smoke budget: {sweep_wall:.2f} s of "
              f"{SMOKE_BUDGET_SECONDS:.1f} s allowed  {verdict}")
        if verdict != "ok":
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
