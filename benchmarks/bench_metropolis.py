"""Metropolis-scale wall-clock benchmark: 200 → 1,000 → 5,000 workstations.

The paper sizes Vice for "more than 5,000 workstations" on one campus
(§1-§2); ``bench_campus`` stops at 200.  This bench sweeps the same
Andrew-mix workload across three scales and reports kernel events per
wall-clock second at each — the headline number for the event-kernel
scale-out work (calendar queue + cascade batching).

Virtual durations shrink as the campus grows so every scale finishes in
comparable wall time: the point is queue behavior under a large *pending
set* (5,000 workstations keep ~10-25k events pending), not a long day.

Reported per scale:

* ``events_per_second``  — the headline throughput number;
* ``setup_wall_seconds`` / ``run_wall_seconds``;
* ``queue``              — the scheduler's own stats (bucket occupancy,
  resizes, dead-event counts) as exposed by ``sim.scheduler_stats``;
* ``virtual_*``          — simulated results, byte-identical across
  schedulers and perf commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_metropolis.py             # all scales
    PYTHONPATH=src python benchmarks/bench_metropolis.py --smoke     # CI budget
    PYTHONPATH=src python benchmarks/bench_metropolis.py --scheduler heap
    PYTHONPATH=src python benchmarks/bench_metropolis.py --json F
"""

import argparse
import json
import os
import sys
import time

if __package__ is None or __package__ == "":  # running as a script
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)
    _BENCH = os.path.dirname(os.path.abspath(__file__))
    if _BENCH not in sys.path:
        sys.path.insert(0, _BENCH)

from bench_campus import build_campus
from repro.workload import run_campus_day

__all__ = ["run_scale", "run_metropolis_benchmark", "SCALES", "SMOKE_SCALES"]

# The sweep.  50-workstation clusters throughout (the paper's cluster
# unit); durations shrink with scale so wall time stays comparable.
SCALES = [
    dict(name="campus-200", clusters=4, workstations_per_cluster=50,
         duration=600.0, warmup=120.0),
    dict(name="metro-1000", clusters=20, workstations_per_cluster=50,
         duration=300.0, warmup=60.0),
    dict(name="metro-5000", clusters=100, workstations_per_cluster=50,
         duration=30.0, warmup=10.0),
]

# CI smoke: the 1,000-workstation scale must fit the budget, so it runs a
# shorter day (same code paths, same pending-set size).
SMOKE_SCALES = [
    dict(name="campus-200", clusters=4, workstations_per_cluster=50,
         duration=300.0, warmup=60.0),
    dict(name="metro-1000", clusters=20, workstations_per_cluster=50,
         duration=120.0, warmup=30.0),
]

# Absolute wall-clock budget for the whole --smoke sweep, seconds.  The
# smoke sweep takes ~8 s on the reference container; the budget leaves
# generous headroom for slow shared CI runners.
SMOKE_BUDGET_SECONDS = 120.0

_SHARED_SHAPE = dict(projects_per_dept=25, projects_per_user=3)


def run_scale(scale: dict, scheduler: str = None) -> dict:
    """Build one campus at ``scale`` and run it; returns the report dict."""
    shape = dict(_SHARED_SHAPE, **scale)

    setup_start = time.perf_counter()
    campus, users = build_campus(scheduler=scheduler, **shape)
    setup_wall = time.perf_counter() - setup_start

    events_before = campus.sim._sequence
    run_start = time.perf_counter()
    summary = run_campus_day(
        campus, users, duration=shape["duration"], warmup=shape["warmup"]
    )
    run_wall = time.perf_counter() - run_start
    events = campus.sim._sequence - events_before

    return {
        "name": scale["name"],
        "workstations": shape["clusters"] * shape["workstations_per_cluster"],
        "clusters": shape["clusters"],
        "virtual_seconds": shape["duration"] + shape["warmup"],
        "setup_wall_seconds": round(setup_wall, 3),
        "run_wall_seconds": round(run_wall, 3),
        "events_scheduled": events,
        "events_per_second": round(events / run_wall) if run_wall else 0,
        "queue": campus.sim.scheduler_stats,
        "virtual_actions": summary["actions"],
        "virtual_failures": summary["failures"],
        "virtual_hit_ratio": round(summary["hit_ratio"], 6),
        "virtual_busiest_cpu": round(summary["busiest_cpu"], 6),
        "virtual_backbone_bytes": summary["cross_cluster_bytes"],
    }


def run_metropolis_benchmark(scales=None, scheduler: str = None) -> dict:
    """Run the sweep; returns ``{"scheduler": ..., "scales": [...]}``."""
    reports = [run_scale(scale, scheduler=scheduler)
               for scale in (SCALES if scales is None else scales)]
    return {
        "scheduler": reports[0]["queue"]["scheduler"] if reports else scheduler,
        "scales": reports,
    }


def _print_report(report: dict) -> None:
    print(f"metropolis sweep · scheduler={report['scheduler']}")
    header = (f"  {'scale':<12} {'ws':>6} {'setup s':>8} {'run s':>8} "
              f"{'events':>9} {'events/s':>9} {'actions':>8}")
    print(header)
    for scale in report["scales"]:
        print(f"  {scale['name']:<12} {scale['workstations']:>6} "
              f"{scale['setup_wall_seconds']:>8.2f} {scale['run_wall_seconds']:>8.2f} "
              f"{scale['events_scheduled']:>9d} {scale['events_per_second']:>9,} "
              f"{scale['virtual_actions']:>8d}")
    for scale in report["scales"]:
        queue = scale["queue"]
        if queue.get("scheduler") == "calendar":
            print(f"  {scale['name']:<12} queue: {queue['buckets']} buckets x "
                  f"{queue['bucket_width']:.3g}s, {queue['resizes']} resizes, "
                  f"{queue['compactions']} compactions, "
                  f"{queue['cascade_events']:,} cascade events")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="200 + 1,000 workstations under a hard budget (CI)")
    parser.add_argument("--scheduler", choices=("calendar", "heap"), default=None,
                        help="event-queue implementation (default: config default)")
    parser.add_argument("--json", metavar="FILE", default="",
                        help="also write the report as JSON")
    args = parser.parse_args()

    sweep_start = time.perf_counter()
    report = run_metropolis_benchmark(
        SMOKE_SCALES if args.smoke else None, scheduler=args.scheduler
    )
    sweep_wall = time.perf_counter() - sweep_start
    report["sweep_wall_seconds"] = round(sweep_wall, 3)
    _print_report(report)

    if args.json:
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.smoke:
        verdict = "ok" if sweep_wall <= SMOKE_BUDGET_SECONDS else "TOO SLOW"
        print(f"smoke budget: {sweep_wall:.2f} s of "
              f"{SMOKE_BUDGET_SECONDS:.1f} s allowed  {verdict}")
        if verdict != "ok":
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
