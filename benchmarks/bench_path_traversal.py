"""EXP-8 — server-side vs client-side pathname traversal (§3.5.2, §5.3).

Paper: "In the prototype, Venus presents entire pathnames to Vice...  The
offloading of pathname traversal from servers to clients will reduce the
utilization of the server CPU and hence improve the scalability of our
design."

We stat files at increasing path depth, cold, under both implementations,
and report the server CPU consumed per call.  The prototype's cost climbs
with depth; the revised server's does not (Venus pays instead, once, and
caches the directories).
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import Table

from _common import one_round, save_table

DEPTHS = [2, 4, 8, 12]


def build(mode):
    campus = ITCSystem(
        SystemConfig(mode=mode, clusters=1, workstations_per_cluster=1,
                     functional_payload_crypto=False)
    )
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    for depth in DEPTHS:
        directory = "/" + "/".join(f"d{i}" for i in range(depth))
        tree = {f"{directory}/leaf": b"payload"}
        campus.populate(volume, tree, owner="u")
    return campus


def measure(mode):
    campus = build(mode)
    session = campus.login(0, "u", "pw")
    server = campus.server(0)
    rows = []
    for depth in DEPTHS:
        path = "/vice/usr/u/" + "/".join(f"d{i}" for i in range(depth)) + "/leaf"
        busy_before = server.host.cpu.utilization._busy_integral
        server.host.cpu.utilization._accumulate(campus.sim.now)
        busy_before = server.host.cpu.utilization._busy_integral
        campus.run_op(session.stat(path))
        server.host.cpu.utilization._accumulate(campus.sim.now)
        cold_cpu = server.host.cpu.utilization._busy_integral - busy_before
        # Second stat: warm paths (revised Venus has the directories cached).
        busy_before = server.host.cpu.utilization._busy_integral
        campus.run_op(session.stat(path))
        server.host.cpu.utilization._accumulate(campus.sim.now)
        warm_cpu = server.host.cpu.utilization._busy_integral - busy_before
        rows.append({"depth": depth, "cold": cold_cpu, "warm": warm_cpu})
    return rows


def test_exp8_path_traversal(benchmark):
    results = one_round(
        benchmark, lambda: {mode: measure(mode) for mode in ("prototype", "revised")}
    )

    table = Table(
        ["path depth", "prototype cold (ms)", "prototype warm (ms)",
         "revised cold (ms)", "revised warm (ms)"],
        title="EXP-8: server CPU per stat vs pathname depth",
    )
    for proto, revised in zip(results["prototype"], results["revised"]):
        table.add(
            proto["depth"],
            f"{proto['cold'] * 1000:.1f}",
            f"{proto['warm'] * 1000:.1f}",
            f"{revised['cold'] * 1000:.1f}",
            f"{revised['warm'] * 1000:.1f}",
        )
    save_table("EXP-8_path_traversal", table)

    benchmark.extra_info.update(
        {mode: [{k: round(v, 5) for k, v in row.items()} for row in rows]
         for mode, rows in results.items()}
    )

    proto = results["prototype"]
    revised = results["revised"]
    # Prototype server CPU grows with depth (it walks the whole pathname
    # on every call, warm or cold).
    assert proto[-1]["warm"] > 1.8 * proto[0]["warm"]
    # Revised *warm* server cost is flat in depth and far below prototype:
    revised_warm = [row["warm"] for row in revised]
    assert max(revised_warm) < 1.6 * min(revised_warm) + 1e-6
    for proto_row, revised_row in zip(proto, revised):
        assert revised_row["warm"] < 0.35 * proto_row["warm"]
