"""The redundancy matrix: replication factor x fault plan.

Read-write replication (see ``repro.vice.replication``) exists to buy
availability with storage: every volume lives on N servers, a controller
declares dead servers after missed heartbeats, the most up-to-date
survivor is promoted, and Venus retries against the new custodian.  This
bench quantifies the trade.  The same synthetic campus day runs for each
replication factor under each fault plan —

* ``clean``          — no faults; every factor must report 100 %
  availability (replication must not break a healthy campus);
* ``server-crash``   — one cluster server crashes for longer than the
  heartbeat detection time; factors >= 2 fail over, factor 1 rides the
  outage (availability and MTTR must improve with the factor);
* ``lossy-backbone`` — the backbone drops/corrupts/duplicates packets;
  heartbeats and propagation retransmit through it;
* ``partition``      — ``cluster0`` is severed from the backbone: the
  partitioned primary's lease expires (writes fence), replicas outside
  the partition take over for the rest of the campus.

Reported per (factor, plan) cell:

* ``availability`` / MTTR percentiles / ``failovers`` (controller
  promotions and the deaths that triggered them);
* ``lost_writes`` — deferred write-backs dropped after retries plus
  divergent replica writes discarded during resync;
* ``storage_overhead`` — bytes across all volume copies over bytes in
  one copy (the price of the factor);
* ``wall_seconds`` — what the cell costs to execute.

Usage::

    PYTHONPATH=src python benchmarks/bench_redundancy.py           # full
    PYTHONPATH=src python benchmarks/bench_redundancy.py --smoke   # CI budget
    PYTHONPATH=src python benchmarks/bench_redundancy.py --json F  # write JSON
"""

import argparse
import json
import os
import sys
import time

if __package__ is None or __package__ == "":  # running as a script
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro import ITCSystem, SystemConfig
from repro.faults import Fault, FaultPlan, clean_plan
from repro.vice.erasure import ErasureConfig, stripe_health
from repro.vice.replication import ReplicationConfig
from repro.workload import provision_campus, run_campus_day

__all__ = ["run_redundancy_benchmark", "run_erasure_smoke",
           "SHAPE", "SMOKE_SHAPE", "ERASURE_SCHEME", "ERASURE_SMOKE_SCHEME"]

# Three clusters so factor-2 volumes keep a spare to re-replicate onto
# after a failover, and factor 3 actually spans three custodians.
SHAPE = dict(clusters=3, workstations_per_cluster=4,
             duration=1800.0, warmup=300.0)
FACTORS = (1, 2, 3)
PLANS = ("clean", "server-crash", "lossy-backbone", "partition")

# The coded column: k+m fragments on k+m servers plus one spare to
# rebuild onto, contrasted against the replication factors above.
ERASURE_SCHEME = (4, 2)
ERASURE_SHAPE = dict(clusters=7, workstations_per_cluster=4,
                     duration=1800.0, warmup=300.0)

# Scaled down for CI: the corner factors under the two decisive plans.
SMOKE_SHAPE = dict(clusters=3, workstations_per_cluster=2,
                   duration=600.0, warmup=60.0)
SMOKE_FACTORS = (1, 3)
SMOKE_PLANS = ("clean", "server-crash")
# The coded smoke column: 2+1 fits the three smoke servers exactly (no
# spare — lost fragments heal at rejoin instead of rebuild-onto-spare).
ERASURE_SMOKE_SCHEME = (2, 1)

# Absolute wall-clock budget for --smoke, seconds (whole matrix).  The
# smoke matrix takes a couple of seconds on the reference container; the
# budget leaves generous headroom for slow shared CI runners.
SMOKE_BUDGET_SECONDS = 30.0


def _plan_for(name, shape):
    """One named fault plan, windows placed inside the measured day.

    The crash and partition windows outlast the heartbeat detection time
    (missed beats x interval), so replicated factors actually fail over
    rather than riding the outage on retransmissions.
    """
    warmup, duration = shape["warmup"], shape["duration"]
    fault_at = warmup + 0.3 * duration
    outage = max(0.15 * duration, 4.0 * ReplicationConfig().detection_time)
    if name == "clean":
        return clean_plan()
    if name == "server-crash":
        return FaultPlan(name=name, faults=(
            Fault("server_crash", "server0", start=fault_at, duration=outage),
        ))
    if name == "lossy-backbone":
        return FaultPlan(name=name, faults=(
            Fault("link", "backbone", start=warmup, duration=duration,
                  loss=0.03, corrupt=0.01, duplicate=0.01),
        ))
    if name == "partition":
        return FaultPlan(name=name, faults=(
            Fault("partition", "cluster0", start=fault_at, duration=outage),
        ))
    raise ValueError(f"unknown plan {name!r}")


def _storage(campus):
    """(bytes in one copy of everything, bytes across all copies).

    Replicated copies store whole file bodies (``used_bytes``); coded
    stripe members store fragments (``fragment_bytes``) while the
    logical file size lives in ``logical_bytes``.  Counting both makes
    the same ``overhead`` field report ≈N for factor-N replication and
    ≈(k+m)/k for a k+m stripe.
    """
    total = 0
    primary = 0
    for server in campus.servers:
        for volume in server.volumes.values():
            total += volume.used_bytes + volume.fragment_bytes
            if volume.replica_role != "secondary":
                primary += volume.used_bytes + volume.logical_bytes
    return primary, total


def _run_cell(factor, plan, shape, erasure=None):
    """One campus day at one redundancy setting under one plan."""
    start_wall = time.perf_counter()
    if erasure is not None:
        replication = None
        econf = ErasureConfig(data=erasure[0], parity=erasure[1])
    else:
        econf = None
        replication = ReplicationConfig(factor=factor) if factor > 1 else None
    campus = ITCSystem(SystemConfig(
        mode="revised",
        clusters=shape["clusters"],
        workstations_per_cluster=shape["workstations_per_cluster"],
        functional_payload_crypto=False,
        replication=replication,
        erasure=econf,
        fault_plan=plan,
    ))
    users = provision_campus(campus, hot_files=8, cold_files=8,
                             shared_files=8, binary_files=6)
    summary = run_campus_day(campus, users, duration=shape["duration"],
                             warmup=shape["warmup"])
    wall = time.perf_counter() - start_wall

    lost_flushes = sum(ws.venus.lost_writes for ws in campus.workstations)
    divergent = sum(
        server.replication.divergent_discarded
        for server in campus.servers if server.replication is not None
    )
    venus_failovers = sum(ws.venus.failovers for ws in campus.workstations)
    primary_bytes, total_bytes = _storage(campus)
    controller = campus.replication_controller
    availability = summary["availability"]
    row = {
        "factor": factor,
        "plan": plan.to_dict(),
        "wall_seconds": round(wall, 3),
        "virtual_actions": summary["actions"],
        "availability": round(availability["availability"], 6),
        "attempts": availability["attempts"],
        "failures": availability["failures"],
        "outages": availability["outages"],
        "mttr": {k: round(v, 3) if isinstance(v, float) else v
                 for k, v in availability["mttr"].items()},
        "ttfs": {k: round(v, 3) if isinstance(v, float) else v
                 for k, v in availability["ttfs"].items()},
        "lost_writes": {
            "flushes_dropped": lost_flushes,
            "divergent_discarded": divergent,
            "total": lost_flushes + divergent,
        },
        "storage": {
            "primary_bytes": primary_bytes,
            "total_bytes": total_bytes,
            "overhead": round(total_bytes / primary_bytes, 3)
            if primary_bytes else 0.0,
        },
        "venus_failovers": venus_failovers,
    }
    if controller is not None:
        row["controller"] = {
            "heartbeats": controller.heartbeats,
            "deaths_declared": controller.deaths_declared,
            "promotions": controller.promotions,
            "rereplications": controller.rereplications,
            "rejoins": controller.rejoins,
        }
    if erasure is not None:
        row["erasure"] = list(erasure)
        row["degraded_reads"] = sum(
            ws.venus.degraded_reads for ws in campus.workstations
        )
        row["rebuild"] = {
            "bytes": sum(s.replication.rebuild_bytes for s in campus.servers
                         if s.replication is not None),
            "stripe_repairs": sum(
                s.replication.stripe_repairs for s in campus.servers
                if s.replication is not None
            ),
        }
        row["stripe_health"] = round(stripe_health(campus), 6)
        row["controller"]["rebuilds"] = controller.rebuilds
        row["controller"]["rebuild_failures"] = controller.rebuild_failures
    return row


def run_redundancy_benchmark(shape=None, factors=FACTORS, plans=PLANS,
                             erasure=None, erasure_shape=None) -> dict:
    """The whole matrix; returns the report dict keyed factor -> plan.

    With ``erasure=(k, m)`` the report gains a coded column under
    ``report["erasure"]`` — same plans, own campus shape (a k+m stripe
    needs k+m servers, plus a spare to rebuild onto).
    """
    if shape is None:
        shape = SHAPE
    report = {"shape": dict(shape), "factors": {}}
    for factor in factors:
        rows = {}
        for name in plans:
            rows[name] = _run_cell(factor, _plan_for(name, shape), shape)
        report["factors"][str(factor)] = rows
    if erasure is not None:
        eshape = dict(shape, **(erasure_shape or {}))
        label = f"{erasure[0]}+{erasure[1]}"
        rows = {
            name: _run_cell(label, _plan_for(name, eshape), eshape,
                            erasure=erasure)
            for name in plans
        }
        report["erasure"] = {"scheme": list(erasure), "shape": eshape,
                             "rows": rows}
    return report


def run_erasure_smoke() -> dict:
    """The scaled-down coded column alone (CI's ``make erasure-smoke``)."""
    return run_redundancy_benchmark(SMOKE_SHAPE, factors=(),
                                    plans=SMOKE_PLANS,
                                    erasure=ERASURE_SMOKE_SCHEME)


def _print_report(report: dict) -> None:
    shape = report["shape"]
    print(f"redundancy matrix: {shape['clusters']} clusters x "
          f"{shape['workstations_per_cluster']} workstations, "
          f"{shape['duration']:.0f}s measured")
    print(f"  {'factor':>6s} {'plan':16s} {'avail':>7s} {'fail':>5s} "
          f"{'MTTR p50':>9s} {'MTTR p90':>9s} {'failovers':>9s} "
          f"{'lost':>5s} {'storage':>8s} {'wall s':>7s}")
    def _rows(label, rows):
        for name, row in rows.items():
            mttr = row["mttr"]
            failovers = row.get("controller", {}).get("promotions", 0)
            print(f"  {label:>6s} {name:16s} {row['availability']:7.2%} "
                  f"{row['failures']:>5d} {mttr['p50']:>8.1f}s "
                  f"{mttr['p90']:>8.1f}s {failovers:>9d} "
                  f"{row['lost_writes']['total']:>5d} "
                  f"{row['storage']['overhead']:>7.2f}x "
                  f"{row['wall_seconds']:>7.2f}")

    for factor, rows in report["factors"].items():
        _rows(factor, rows)
    coded = report.get("erasure")
    if coded:
        _rows("+".join(str(n) for n in coded["scheme"]), coded["rows"])
        for name, row in coded["rows"].items():
            print(f"         {name:16s} degraded reads {row['degraded_reads']}, "
                  f"rebuild {row['rebuild']['bytes']} B in "
                  f"{row['rebuild']['stripe_repairs']} repairs, "
                  f"stripe health {row['stripe_health']:.2f}")


def _gate(report: dict) -> int:
    """The acceptance checks; returns a nonzero exit code on violation."""
    status = 0
    factors = report["factors"]
    for factor, rows in factors.items():
        clean = rows.get("clean")
        if clean and (clean["failures"] or clean["outages"]):
            print(f"factor {factor} clean plan not clean: "
                  f"{clean['failures']} failures, {clean['outages']} outages",
                  file=sys.stderr)
            status = 1
    for factor, rows in factors.items():
        clean = rows.get("clean")
        if clean and int(factor) > 1:
            overhead = clean["storage"]["overhead"]
            if abs(overhead - int(factor)) > 0.15 * int(factor):
                print(f"factor {factor} storage overhead {overhead:.2f}x "
                      f"not ≈{factor}x", file=sys.stderr)
                status = 1
    if factors:
        base = factors.get("1", {}).get("server-crash")
        best = factors.get(max(factors, key=int), {}).get("server-crash")
        if base and best and best is not base:
            if best["availability"] < base["availability"]:
                print(f"replication did not help: factor "
                      f"{max(factors, key=int)} availability "
                      f"{best['availability']:.4f} < factor 1 "
                      f"{base['availability']:.4f} under server-crash",
                      file=sys.stderr)
                status = 1
    coded = report.get("erasure")
    if coded:
        k, m = coded["scheme"]
        expected = (k + m) / k
        clean = coded["rows"].get("clean")
        if clean:
            if clean["failures"] or clean["outages"]:
                print(f"coded clean plan not clean: {clean['failures']} "
                      f"failures, {clean['outages']} outages", file=sys.stderr)
                status = 1
            overhead = clean["storage"]["overhead"]
            if abs(overhead - expected) > 0.1 * expected:
                print(f"coded storage overhead {overhead:.2f}x not "
                      f"≈{expected:.2f}x", file=sys.stderr)
                status = 1
        crash = coded["rows"].get("server-crash")
        if crash:
            # The coded column's promise: degrade-read through a dead
            # server with zero lost writes, and heal the stripe.
            if crash["lost_writes"]["total"]:
                print(f"coded server-crash lost "
                      f"{crash['lost_writes']['total']} writes",
                      file=sys.stderr)
                status = 1
            if crash["degraded_reads"] == 0:
                print("coded server-crash saw no degraded reads",
                      file=sys.stderr)
                status = 1
            if crash["stripe_health"] < 1.0:
                print(f"stripe health {crash['stripe_health']:.2f} "
                      f"not restored after server-crash", file=sys.stderr)
                status = 1
            factor2 = factors.get("2", {}).get("server-crash")
            if factor2 and crash["availability"] < factor2["availability"]:
                print(f"coded availability {crash['availability']:.4f} < "
                      f"factor-2 {factor2['availability']:.4f} under "
                      f"server-crash", file=sys.stderr)
                status = 1
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="corner factors x decisive plans under a hard "
                             "time budget (CI)")
    parser.add_argument("--erasure-smoke", action="store_true",
                        help="scaled-down coded column alone: clean must "
                             "stay clean, server-crash must degrade-read "
                             "through with zero lost writes (CI)")
    parser.add_argument("--json", metavar="FILE", default="",
                        help="also write the report as JSON")
    args = parser.parse_args()

    if args.erasure_smoke:
        report = run_erasure_smoke()
    else:
        shape = SMOKE_SHAPE if args.smoke else SHAPE
        factors = SMOKE_FACTORS if args.smoke else FACTORS
        plans = SMOKE_PLANS if args.smoke else PLANS
        erasure = None if args.smoke else ERASURE_SCHEME
        report = run_redundancy_benchmark(shape, factors, plans,
                                          erasure=erasure,
                                          erasure_shape=ERASURE_SHAPE)
    _print_report(report)
    status = _gate(report)

    if args.json:
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.smoke or args.erasure_smoke:
        all_rows = [row for rows in report["factors"].values()
                    for row in rows.values()]
        all_rows += list(report.get("erasure", {}).get("rows", {}).values())
        wall_total = sum(row["wall_seconds"] for row in all_rows)
        verdict = "ok" if wall_total <= SMOKE_BUDGET_SECONDS else "TOO SLOW"
        print(f"smoke budget: {wall_total:.2f} s of "
              f"{SMOKE_BUDGET_SECONDS:.1f} s allowed  {verdict}")
        if verdict != "ok":
            return 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
