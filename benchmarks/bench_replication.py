"""EXP-10 — read-only replication of system binaries (§3.2, §4).

Paper: "Files which are frequently read, but rarely modified, may be
replicated in this way to enhance availability and to improve performance
by balancing server loads... enabling system programs to be fetched from
the nearest cluster server rather than its custodian" (the *localize if
possible* principle).

Two clusters; every cluster-1 workstation cold-fetches a set of system
binaries whose custodian lives in cluster 0 — once without replicas, once
with a replica released to server1.  Measured: fetch latency, backbone
traffic, and custodian load.
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import Table
from repro.workload import SYSTEM_BINARY
from repro.sim.rand import WorkloadRandom

from _common import one_round, save_table

BINARIES = 12
READERS = 4


def run_variant(replicate):
    campus = ITCSystem(
        SystemConfig(mode="revised", clusters=2, workstations_per_cluster=READERS,
                     functional_payload_crypto=False)
    )
    rng = WorkloadRandom(3)
    unix = campus.create_volume("/unix", custodian=0, volume_id="unix")
    campus.populate(
        unix,
        {f"/bin/prog{i}": SYSTEM_BINARY.content(rng.fork(i), b"\x7fELF") for i in range(BINARIES)},
    )
    if replicate:
        campus.run_op(campus.server(0).release_readonly("unix", ["server0", "server1"]))
    backbone_before = campus.cross_cluster_bytes()
    custodian_calls_before = campus.server(0).node.calls_received.total

    sim = campus.sim
    latencies = []

    def reader(ws_index):
        username = f"u{ws_index}"
        session = campus.login(f"ws1-{ws_index}", username, "pw")
        for index in range(BINARIES):
            start = sim.now
            yield from session.read_file(f"/vice/unix/bin/prog{index}")
            latencies.append(sim.now - start)

    for index in range(READERS):
        campus.add_user(f"u{index}", "pw")
    processes = [sim.process(reader(index)) for index in range(READERS)]
    sim.run_until_complete(sim.all_of(processes), limit=1e7)

    return {
        "mean_fetch": sum(latencies) / len(latencies),
        "backbone_bytes": campus.cross_cluster_bytes() - backbone_before,
        "custodian_calls": campus.server(0).node.calls_received.total
        - custodian_calls_before,
    }


def test_exp10_read_only_replication(benchmark):
    results = one_round(
        benchmark, lambda: {flag: run_variant(flag) for flag in (False, True)}
    )
    without, with_ro = results[False], results[True]

    table = Table(
        ["quantity", "no replicas", "RO replica in each cluster"],
        title="EXP-10: cluster-1 workstations reading cluster-0 binaries",
    )
    table.add("mean cold fetch (s)", f"{without['mean_fetch']:.3f}",
              f"{with_ro['mean_fetch']:.3f}")
    table.add("backbone bytes", without["backbone_bytes"], with_ro["backbone_bytes"])
    table.add("custodian server calls", without["custodian_calls"],
              with_ro["custodian_calls"])
    save_table("EXP-10_replication", table)

    benchmark.extra_info.update({"without": without, "with": with_ro})

    # Localizing reads: faster fetches, backbone almost silent, custodian
    # relieved of nearly all of the binary traffic.
    assert with_ro["mean_fetch"] < without["mean_fetch"]
    assert with_ro["backbone_bytes"] < 0.25 * without["backbone_bytes"]
    assert with_ro["custodian_calls"] < 0.5 * without["custodian_calls"]
