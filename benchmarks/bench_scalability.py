"""EXP-5 — client/server ratio: where performance collapses (§5.2).

Paper: "In actual use, we operate our system with about 20 workstations per
server.  At this client/server ratio, our users perceive the overall
performance of the workstations to be equal to or better than that of the
large timesharing systems on campus.  However, there have been a few
occasions when intense file system activity by a few users has drastically
lowered performance for all other active users."

We sweep the number of workstations *simultaneously running the 5-phase
benchmark* (the paper's "intense file system activity") against one
prototype server and report per-client completion time and server CPU.
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import Table
from repro.rpc.costs import RpcCosts
from repro.workload import AndrewBenchmark, make_source_tree

from _common import one_round, save_table

# Patient clients: under deliberate saturation the default retransmission
# timer would flood the simulation with duplicate/busy chatter that the
# dedup layer absorbs anyway; long timers keep the event count sane without
# changing any measured outcome.
_PATIENT = RpcCosts.prototype().with_(retransmit_timeout=120.0)


def run_concurrent(active_clients):
    campus = ITCSystem(
        SystemConfig(
            mode="prototype",
            clusters=1,
            workstations_per_cluster=active_clients,
            functional_payload_crypto=False,
            rpc_costs=_PATIENT,
        )
    )
    tree = make_source_tree()
    benches = []
    for index in range(active_clients):
        username = f"u{index}"
        campus.add_user(username, "pw")
        volume = campus.create_user_volume(username)
        campus.populate(volume, tree, owner=username)
        session = campus.login(index, username, "pw")
        benches.append(
            AndrewBenchmark(
                session, f"/vice/usr/{username}/src", f"/vice/usr/{username}/target"
            )
        )
    sim = campus.sim
    durations = []

    def runner(bench):
        start = sim.now
        yield from bench.run()
        durations.append(sim.now - start)

    processes = [sim.process(runner(bench)) for bench in benches]
    sim.run_until_complete(sim.all_of(processes), limit=1e7)
    server = campus.server(0)
    return {
        "clients": active_clients,
        "mean_seconds": sum(durations) / len(durations),
        "max_seconds": max(durations),
        "server_cpu": server.host.cpu_utilization(),
    }


def test_exp5_client_server_ratio(benchmark):
    sweep = [1, 2, 4, 8]
    rows = one_round(benchmark, lambda: [run_concurrent(n) for n in sweep])

    table = Table(
        ["active clients", "mean bench time (s)", "slowdown vs 1", "server CPU"],
        title="EXP-5: concurrent intense users against one prototype server",
    )
    base = rows[0]["mean_seconds"]
    for row in rows:
        table.add(
            row["clients"],
            f"{row['mean_seconds']:.0f}",
            f"{row['mean_seconds'] / base:.2f}x",
            f"{row['server_cpu'] * 100:.0f}%",
        )
    save_table("EXP-5_scalability", table)

    benchmark.extra_info["sweep"] = [
        {k: round(v, 2) for k, v in row.items()} for row in rows
    ]

    times = [row["mean_seconds"] for row in rows]
    cpus = [row["server_cpu"] for row in rows]
    # Degradation is monotone in concurrent intensity...
    assert times == sorted(times)
    assert cpus == sorted(cpus)
    # ...and a handful of intense users saturate the server and "drastically
    # lower performance": a clear knee by 8 clients.
    assert times[-1] > 1.5 * times[0]
    assert cpus[-1] > 0.85
