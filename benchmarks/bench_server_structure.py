"""EXP-9 — per-client Unix processes vs a single LWP server (§3.5.2).

Paper: "Experience with the prototype indicates that significant
performance degradation is caused by context switching between the
per-client Unix processes...  Our reimplementation will represent a server
as a single Unix process incorporating a lightweight process mechanism."
And on transports: the revised datagram RPC exists "to overcome Unix
resource limitations and thus allow large client/server ratios".

Both effects measured: mean call latency under concurrency for each server
structure (same workload, same file layout, only the structure differs),
and the hard connection cap of the process-per-client server.
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import Table
from repro.errors import ServerUnavailable
from repro.rpc.costs import RpcCosts
from repro.vice.costs import ViceCosts

from _common import one_round, save_table

CLIENTS = 12
CALLS_PER_CLIENT = 18


def build(server_mode):
    """Identical cost models; only the server structure changes."""
    # Use prototype-era costs for both so the only delta is the structure.
    # (Patient retransmission timers: see bench_scalability.)
    rpc = RpcCosts.prototype().with_(retransmit_timeout=120.0)
    vice = ViceCosts.prototype()
    campus = ITCSystem(
        SystemConfig(
            mode="prototype",
            clusters=1,
            workstations_per_cluster=CLIENTS,
            functional_payload_crypto=False,
            rpc_costs=rpc,
            vice_costs=vice,
            max_server_processes=None,
        )
    )
    server = campus.server(0)
    # Swap the server structure under test.
    server.node.server_mode = server_mode
    if server_mode == "lwp":
        server.node.costs = rpc.with_(switches_per_call=0)
    for index in range(CLIENTS):
        username = f"u{index}"
        campus.add_user(username, "pw")
        volume = campus.create_user_volume(username)
        campus.populate(volume, {"/doc": b"d" * 2000}, owner=username)
    return campus


def run_load(server_mode):
    campus = build(server_mode)
    sim = campus.sim
    latencies = []

    def client(index):
        username = f"u{index}"
        session = campus.login(index, username, "pw")
        path = f"/vice/usr/{username}/doc"
        for _ in range(CALLS_PER_CLIENT):
            start = sim.now
            yield from session.stat(path)
            latencies.append(sim.now - start)

    processes = [sim.process(client(index)) for index in range(CLIENTS)]
    sim.run_until_complete(sim.all_of(processes), limit=1e7)
    return {
        "mean_latency": sum(latencies) / len(latencies),
        "wall": sim.now,
        "server_cpu": campus.server(0).host.cpu_utilization(),
    }


def connection_cap():
    """The prototype's Unix limit: connections beyond the cap are refused."""
    campus = ITCSystem(
        SystemConfig(
            mode="prototype", clusters=1, workstations_per_cluster=6,
            functional_payload_crypto=False, max_server_processes=4,
        )
    )
    for index in range(6):
        campus.add_user(f"u{index}", "pw")
    refused = 0
    for index in range(6):
        session = campus.login(index, f"u{index}", "pw")
        try:
            campus.run_op(session.listdir("/vice"))
        except ServerUnavailable:
            refused += 1
    return refused


def test_exp9_server_structure(benchmark):
    def both():
        return (
            {mode: run_load(mode) for mode in ("process", "lwp")},
            connection_cap(),
        )

    results, refused = one_round(benchmark, both)
    process, lwp = results["process"], results["lwp"]

    table = Table(
        ["quantity", "per-client processes", "single process + LWPs"],
        title=f"EXP-9: server structure under {CLIENTS} concurrent clients",
    )
    table.add("mean call latency (ms)", f"{process['mean_latency'] * 1000:.0f}",
              f"{lwp['mean_latency'] * 1000:.0f}")
    table.add("completion time (s)", f"{process['wall']:.1f}", f"{lwp['wall']:.1f}")
    table.add("server CPU", f"{process['server_cpu'] * 100:.0f}%",
              f"{lwp['server_cpu'] * 100:.0f}%")
    cap = Table(["quantity", "value"], title="Unix process-limit effect")
    cap.add("connections refused (6 clients, cap 4)", refused)
    save_table("EXP-9_server_structure", table, cap)

    benchmark.extra_info.update({"process": process, "lwp": lwp, "refused": refused})

    # Context switching costs real latency...
    assert lwp["mean_latency"] < process["mean_latency"]
    assert lwp["wall"] <= process["wall"]
    # ...and the per-client-process server cannot exceed its cap.
    assert refused == 2
