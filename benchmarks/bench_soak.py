"""Soak benchmark: the ISSUE-7 acceptance gate, wall-clocked.

Runs the continuous soak driver (:mod:`repro.soak`) at campus scale —
4 clusters x 50 workstations, six virtual hours of diurnally-paced load
with chaos-mode fault injection on — checking every soak invariant each
600-second window, then runs the *negative* control: a deliberately
sabotaged invariant on a small shape must be caught.  The bench fails
(exit 1) if any invariant is violated on the healthy run, if the sabotage
goes undetected, or if the wall budget is blown.

Reported quantities:

* ``soak_wall_seconds`` / ``events_per_second`` — the throughput numbers;
* ``snapshot_overhead_us`` — mean/p99 wall cost of one rolling-metrics
  window (observability overhead as a tracked number);
* ``ops_events_emitted`` / ``windows`` / ``violations`` — stream volume
  and the gate verdict;
* ``negative_test_caught`` — True when the sabotaged run was flagged.

Usage::

    PYTHONPATH=src python benchmarks/bench_soak.py           # full soak
    PYTHONPATH=src python benchmarks/bench_soak.py --smoke   # CI budget
    PYTHONPATH=src python benchmarks/bench_soak.py --json F  # write JSON
"""

import argparse
import json
import os
import sys

if __package__ is None or __package__ == "":  # running as a script
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.soak import SoakConfig, run_soak

__all__ = ["run_soak_benchmark", "SOAK_SHAPE", "SMOKE_SHAPE", "TRACKED_SHAPE"]

# The acceptance shape: 200 workstations, six virtual hours, chaos on.
SOAK_SHAPE = dict(
    clusters=4, workstations_per_cluster=50,
    hours=6.0, window=600.0, warmup=900.0,
    chaos_mean_interval=900.0, chaos_mean_outage=60.0,
)

# --smoke runs the SAME shape — the acceptance criterion is explicitly
# "six virtual hours at 200 workstations inside the wall budget" — it only
# trims the negative-control shape, which is already tiny.
SMOKE_SHAPE = dict(SOAK_SHAPE)

# The shape run_all.py tracks per commit: same code paths, a fraction of
# the virtual time, so the harness records soak events/s and snapshot
# overhead without paying the full six-hour acceptance run every time.
TRACKED_SHAPE = dict(
    clusters=2, workstations_per_cluster=10,
    hours=2.0, window=600.0, warmup=600.0,
    chaos_mean_interval=900.0, chaos_mean_outage=60.0,
)

# The sabotaged control: small and fast, the violation fires in window 1.
NEGATIVE_SHAPE = dict(
    clusters=1, workstations_per_cluster=3,
    hours=0.25, window=300.0, warmup=120.0,
)

# The healthy soak takes ~28 s on the reference container; 180 s leaves
# >6x headroom for slow shared CI runners while still catching a kernel
# or fast-path regression that multiplies the event cost.
SMOKE_BUDGET_SECONDS = 180.0


def run_soak_benchmark(shape=None, metrics_path=None, events_path=None) -> dict:
    """The healthy soak plus the sabotaged negative control."""
    shape = dict(SOAK_SHAPE if shape is None else shape)
    quiet = lambda _line: None

    report = run_soak(SoakConfig(metrics_path=metrics_path,
                                 events_path=events_path, **shape))

    negative = run_soak(SoakConfig(break_invariant=True, **NEGATIVE_SHAPE),
                        echo=quiet)

    return {
        "shape": report["shape"],
        "soak_wall_seconds": report["run_wall_seconds"],
        "events": report["events"],
        "events_per_second": report["events_per_second"],
        "windows": report["windows"],
        "invariant_checks": report["invariant_checks"],
        "violations": report["violations"],
        "snapshot_overhead_us": report["snapshot_overhead_us"],
        "ops_events_emitted": report["ops_events_emitted"],
        "virtual_actions": report["virtual_actions"],
        "virtual_availability": round(
            report["availability"]["availability"], 6),
        "faults_injected": report["availability"]["events"]["faults_injected"],
        "negative_test_caught": bool(negative["violations"]),
    }


def _print_report(report: dict) -> None:
    shape = report["shape"]
    print(f"soak: {shape['workstations']} workstations, "
          f"{shape['virtual_hours']:.1f} virtual hours, "
          f"chaos every ~{shape['chaos_mean_interval']:.0f}s")
    print(f"  wall            {report['soak_wall_seconds']:8.2f} s")
    print(f"  events          {report['events']:>10d}  "
          f"({report['events_per_second']:,} events/s)")
    print(f"  windows         {report['windows']:>10d}  "
          f"({report['invariant_checks']} invariant checks)")
    print(f"  snapshot cost   {report['snapshot_overhead_us']['mean']:8.0f} us mean, "
          f"{report['snapshot_overhead_us']['p99']:.0f} us p99")
    print(f"  ops events      {report['ops_events_emitted']:>10d}")
    print(f"  availability    {report['virtual_availability']:10.4f}  "
          f"({report['faults_injected']} faults injected)")
    print(f"  violations      {len(report['violations']):>10d}")
    print(f"  negative test   {'caught' if report['negative_test_caught'] else 'MISSED'}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="acceptance shape under a hard wall budget (CI)")
    parser.add_argument("--json", metavar="FILE", default="",
                        help="also write the report as JSON")
    parser.add_argument("--metrics", metavar="FILE", default="",
                        help="stream rolling windows to this JSONL file")
    parser.add_argument("--events", metavar="FILE", default="",
                        help="stream ops events to this JSONL file")
    args = parser.parse_args()

    report = run_soak_benchmark(SMOKE_SHAPE if args.smoke else None,
                                metrics_path=args.metrics or None,
                                events_path=args.events or None)
    _print_report(report)

    if args.json:
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    failed = bool(report["violations"]) or not report["negative_test_caught"]
    if failed:
        print("soak gate: FAILED (violations on the healthy run, or the "
              "sabotaged run went undetected)")
        return 1
    if args.smoke:
        verdict = "ok" if report["soak_wall_seconds"] <= SMOKE_BUDGET_SECONDS else "TOO SLOW"
        print(f"smoke budget: {report['soak_wall_seconds']:.2f} s of "
              f"{SMOKE_BUDGET_SECONDS:.1f} s allowed  {verdict}")
        if verdict != "ok":
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
