"""EXP-13 — workstations vs. the timesharing yardstick (§2.2, §5.2).

Paper: the performance goal is "at least as good as that of a
lightly-loaded timesharing system at CMU", and §5.2 claims success:
"our users perceive the overall performance of the workstations to be
equal to or better than that of the large timesharing systems on campus."

The measured quantity is identical work — a make-style recompile of 40
source files (stat pass, read, compile, write objects) — completed on
three worlds:

* a dedicated Virtue workstation with a warm Vice cache (prototype era),
* the shared campus machine with 5 logins ("lightly loaded"),
* the same machine with 30 and 50 logins (the reality that motivated
  personal workstations).

A VAX-780-class shared machine is modestly faster than one workstation
(cpu_speed 1.25 vs 1.0), but it is shared; the workstation's cycles are
its user's alone and its file accesses are cache hits.
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import Table
from repro.sim.rand import WorkloadRandom
from repro.workload.filesizes import USER_DOCUMENT
from repro.workload.timesharing import recompile_task, run_timesharing_compile

from _common import one_round, save_table

SOURCES = 40


class _WorkstationTaskAdapter:
    """Maps the shared recompile task onto a Virtue workstation session."""

    def __init__(self, campus, session):
        self.campus = campus
        self.session = session
        self.host = session.workstation.host

    def stat(self, path):
        return self.session.stat(path)

    def read_file(self, path):
        return self.session.read_file(path)

    def compute(self, seconds):
        return self.host.compute(seconds)

    def write_output(self, name, data):
        # Objects are temporaries: the local name space, per §3.1.
        return self.session.write_file(f"/tmp/{name}", data)


def run_workstation_compile(mode="prototype"):
    campus = ITCSystem(
        SystemConfig(mode=mode, clusters=1, workstations_per_cluster=1,
                     functional_payload_crypto=False)
    )
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    rng = WorkloadRandom(5)
    sources = []
    tree = {}
    for index in range(SOURCES):
        tree[f"/src_{index:03d}.c"] = USER_DOCUMENT.content(rng.fork(7000 + index), b"/*c*/")
        sources.append(f"/vice/usr/u/src_{index:03d}.c")
    campus.populate(volume, tree, owner="u")
    session = campus.login(0, "u", "pw")
    # Warm the whole-file cache: the steady state a user actually lives in.
    for path in sources:
        campus.run_op(session.read_file(path))
    adapter = _WorkstationTaskAdapter(campus, session)
    start = campus.sim.now
    campus.run_op(recompile_task(adapter, sources))
    return {"task_seconds": campus.sim.now - start}


def test_exp13_perceived_performance(benchmark):
    def all_worlds():
        return {
            "workstation": run_workstation_compile("prototype"),
            "workstation_revised": run_workstation_compile("revised"),
            "ts_5": run_timesharing_compile(5, source_count=SOURCES),
            "ts_30": run_timesharing_compile(30, source_count=SOURCES),
            "ts_50": run_timesharing_compile(50, source_count=SOURCES),
        }

    results = one_round(benchmark, all_worlds)

    table = Table(
        ["world", "recompile task (s)", "vs lightly-loaded TS"],
        title="EXP-13: identical recompile task, three worlds",
    )
    light = results["ts_5"]["task_seconds"]
    rows = [
        ("Virtue workstation, warm cache (prototype Vice)", results["workstation"]["task_seconds"]),
        ("Virtue workstation, warm cache (revised Vice)", results["workstation_revised"]["task_seconds"]),
        ("timesharing, 5 logins (lightly loaded)", light),
        ("timesharing, 30 logins", results["ts_30"]["task_seconds"]),
        ("timesharing, 50 logins", results["ts_50"]["task_seconds"]),
    ]
    for label, seconds in rows:
        table.add(label, f"{seconds:.0f}", f"{seconds / light:.2f}x")
    save_table("EXP-13_timesharing", table)

    benchmark.extra_info.update(
        {k: round(v["task_seconds"], 1) for k, v in results.items()}
    )

    workstation = results["workstation"]["task_seconds"]
    revised = results["workstation_revised"]["task_seconds"]
    loaded_30 = results["ts_30"]["task_seconds"]
    loaded_50 = results["ts_50"]["task_seconds"]
    # The §2.2 goal ("at least as good as lightly loaded"): the prototype
    # gets within its per-open tax of it; the revised implementation meets
    # it outright against a machine 1.25x its speed.
    assert workstation < 1.45 * light
    assert revised < 1.2 * light
    # The §5.2 perception: better than campus reality at real login counts.
    assert workstation < loaded_30 < loaded_50
    assert revised < loaded_30
