"""EXP-3 — server resource utilization (§5.2).

Paper: "Server CPU utilization tends to be quite high: nearly 40% on the
most heavily loaded servers in our environment.  Disk utilization is lower,
averaging about 14% on the most heavily loaded servers...  The short-term
resource utilizations are much higher, sometimes peaking at 98% server CPU
utilization!  It is quite clear that the server CPU is the performance
bottleneck in our prototype."
"""

from repro.analysis import Table, format_share
from repro.system.calibration import SERVER_CPU_TARGET, SERVER_DISK_TARGET

from _common import campus_day, one_round, save_table


def test_exp3_server_utilization(benchmark):
    campus, summary = one_round(benchmark, lambda: campus_day(mode="prototype"))

    cpu = summary["busiest_cpu"]
    disk = summary["busiest_disk"]
    peak = summary["busiest_cpu_peak"]

    table = Table(["quantity", "paper", "measured"],
                  title="EXP-3: busiest-server utilization (8h-style window)")
    table.add("mean CPU", format_share(SERVER_CPU_TARGET), format_share(cpu))
    table.add("mean disk", format_share(SERVER_DISK_TARGET), format_share(disk))
    table.add("short-term CPU peak", "up to 98%", format_share(peak))
    save_table("EXP-3_utilization", table)

    benchmark.extra_info.update(
        {"cpu": round(cpu, 4), "disk": round(disk, 4), "cpu_peak": round(peak, 4)}
    )

    # Shape: CPU ≈ 40% band, disk well below CPU, bursty peaks above mean.
    assert 0.25 <= cpu <= 0.60
    assert 0.06 <= disk <= 0.25
    assert disk < cpu, "the server CPU must be the bottleneck, not the disk"
    assert peak > cpu * 1.25, "short-term peaks should far exceed the mean"
