"""EXP-6 — check-on-open vs invalidate-on-modification (§3.2, §5.2).

Paper: "Based on these observations we have concluded that major
performance improvement is possible if cache validity checks are
minimized.  This has led to the alternate cache invalidation scheme"
(callbacks) — weighed against "larger server state and slower updates".

Same synthetic day, same revised servers; only the validation policy
changes.
"""

from repro.analysis import Table, format_share

from _common import campus_day, one_round, save_table


def test_exp6_validation_policy(benchmark):
    def both_policies():
        results = {}
        for policy in ("check-on-open", "callback"):
            campus, summary = campus_day(mode="revised", validation=policy, seed=7)
            server = campus.server(0)
            results[policy] = {
                "validate_calls": server.call_mix.count("validate"),
                "total_calls": server.call_mix.total,
                "server_cpu": summary["busiest_cpu"],
                "callback_state": server.callbacks.state_size,
                "breaks": server.callbacks.promises_broken,
                "hit_ratio": summary["hit_ratio"],
            }
        return results

    results = one_round(benchmark, both_policies)
    check, callback = results["check-on-open"], results["callback"]

    table = Table(
        ["quantity", "check-on-open", "callback"],
        title="EXP-6: validation policy ablation (revised servers, same day)",
    )
    table.add("validation calls", check["validate_calls"], callback["validate_calls"])
    table.add("total server calls", check["total_calls"], callback["total_calls"])
    table.add("busiest server CPU", format_share(check["server_cpu"]),
              format_share(callback["server_cpu"]))
    table.add("callback state (promises held)", check["callback_state"],
              callback["callback_state"])
    table.add("callback breaks sent", check["breaks"], callback["breaks"])
    table.add("hit ratio", format_share(check["hit_ratio"]),
              format_share(callback["hit_ratio"]))
    save_table("EXP-6_validation_policy", table)

    benchmark.extra_info.update(results)

    # The redesign's argument, quantitatively:
    # 1. callbacks eliminate nearly all validation traffic;
    assert callback["validate_calls"] < 0.15 * max(1, check["validate_calls"])
    # 2. total server load drops substantially;
    assert callback["total_calls"] < 0.7 * check["total_calls"]
    assert callback["server_cpu"] < check["server_cpu"]
    # 3. the price is server state that check-on-open never carries.
    assert callback["callback_state"] > 0
    assert check["callback_state"] == 0
