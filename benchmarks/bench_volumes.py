"""EXP-12 — location mechanism and volume operations (§3.1, §5.3).

Three claims measured:

1. "An important property of the location database is that it changes
   relatively slowly" and clients cache hints — so steady-state operation
   generates (almost) no location queries.
2. "The files whose custodians are being modified are unavailable during
   the change" — the move window scales with volume size, and other
   volumes are untouched.
3. "We will use copy-on-write semantics to make cloning a relatively
   inexpensive operation" — clone cost scales with file *count*, not bytes.
"""

import time

from repro import ITCSystem, SystemConfig
from repro.analysis import Table
from repro.errors import VolumeOffline

from _common import one_round, save_table


def location_hint_economy():
    campus = ITCSystem(
        SystemConfig(mode="revised", clusters=2, workstations_per_cluster=1,
                     functional_payload_crypto=False)
    )
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    campus.populate(volume, {f"/f{i}": b"x" * 100 for i in range(20)}, owner="u")
    session = campus.login(0, "u", "pw")
    server = campus.server(0)
    for index in range(20):
        campus.run_op(session.read_file(f"/vice/usr/u/f{index}"))
    location_queries = server.node.calls_received.count("GetCustodian")
    hints = campus.workstation(0).venus.hints
    return {
        "opens": 20,
        "location_queries": location_queries,
        "hint_hits": hints.hits,
        "hint_misses": hints.misses,
    }


def move_window(file_count, file_size, probe=False):
    campus = ITCSystem(
        SystemConfig(mode="revised", clusters=2, workstations_per_cluster=1,
                     functional_payload_crypto=False)
    )
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    campus.populate(
        volume, {f"/f{i}": b"m" * file_size for i in range(file_count)}, owner="u"
    )
    campus.add_user("bystander", "pw")
    campus.create_volume("/usr/bystander", custodian=0, volume_id="u-bystander",
                         owner="bystander")
    sim = campus.sim
    offline_probe = {"worked_during_move": not probe, "blocked": not probe}
    waiters = []

    def prober():
        # While the move is in flight, the moving volume refuses service
        # but the bystander's volume keeps working.
        bystander = campus.login("ws1-0", "bystander", "pw")
        yield sim.timeout(0.2)
        yield from bystander.write_file("/vice/usr/bystander/alive", b"yes")
        offline_probe["worked_during_move"] = True

    def direct_read_probe():
        yield sim.timeout(0.2)
        try:
            volume.read("/f0")
        except VolumeOffline:
            offline_probe["blocked"] = True

    start = sim.now
    move = sim.process(campus.server(0).move_volume("u-u", "server1"))
    if probe:  # only meaningful when the window comfortably exceeds 0.2 s
        waiters.append(sim.process(prober()))
        waiters.append(sim.process(direct_read_probe()))
    window_end = {}

    def watch_move():
        yield move
        window_end["at"] = sim.now

    watcher = sim.process(watch_move())
    sim.run_until_complete(sim.all_of([watcher] + waiters), limit=1e7)
    return {
        "files": file_count,
        "bytes": file_count * file_size,
        "window": window_end["at"] - start,
        **offline_probe,
    }


def clone_costs():
    rows = []
    for file_count, file_size in [(10, 1000), (10, 100_000), (100, 1000)]:
        campus = ITCSystem(
            SystemConfig(mode="revised", clusters=1, workstations_per_cluster=1)
        )
        campus.add_user("u", "pw")
        volume = campus.create_user_volume("u")
        campus.populate(
            volume, {f"/f{i}": b"c" * file_size for i in range(file_count)}, owner="u"
        )
        started = time.perf_counter()
        clone = volume.clone("u-u-ro")
        elapsed = time.perf_counter() - started
        shared = sum(
            1 for i in range(file_count)
            if clone.resolve(f"/f{i}").data is volume.resolve(f"/f{i}").data
        )
        rows.append(
            {"files": file_count, "file_size": file_size,
             "clone_wall_us": elapsed * 1e6, "data_shared": shared}
        )
    return rows


def test_exp12_location_and_volumes(benchmark):
    def everything():
        return (
            location_hint_economy(),
            [move_window(10, 2_000), move_window(10, 200_000, probe=True), move_window(50, 2_000)],
            clone_costs(),
        )

    hints, moves, clones = one_round(benchmark, everything)

    hint_table = Table(["quantity", "value"], title="EXP-12a: location hint economy")
    hint_table.add("file opens", hints["opens"])
    hint_table.add("GetCustodian queries issued", hints["location_queries"])
    hint_table.add("hint cache hits", hints["hint_hits"])
    hint_table.add("hint cache misses", hints["hint_misses"])

    move_table = Table(
        ["files", "bytes", "offline window (s)", "volume blocked", "others fine"],
        title="EXP-12b: volume move unavailability",
    )
    for row in moves:
        move_table.add(row["files"], row["bytes"], f"{row['window']:.2f}",
                       row["blocked"], row["worked_during_move"])

    clone_table = Table(
        ["files", "file size", "clone wall time (µs)", "bodies shared (COW)"],
        title="EXP-12c: copy-on-write clone cost",
    )
    for row in clones:
        clone_table.add(row["files"], row["file_size"],
                        f"{row['clone_wall_us']:.0f}", row["data_shared"])

    save_table("EXP-12_volumes", hint_table, move_table, clone_table)
    benchmark.extra_info.update({"hints": hints, "moves": moves})

    # 1. One location query serves many opens.
    assert hints["location_queries"] <= 2
    assert hints["hint_hits"] > 10 * max(1, hints["hint_misses"])
    # 2. The window scales with volume bytes; service elsewhere continues.
    assert moves[1]["window"] > 3 * moves[0]["window"]
    assert moves[1]["worked_during_move"], "bystander volume stalled during move"
    assert moves[1]["blocked"], "moving volume should refuse service mid-move"

    # 3. Cloning shares every file body (COW) and its cost tracks file
    #    count, not bytes: 100x the bytes must not cost 10x the time.
    assert all(row["data_shared"] == row["files"] for row in clones)
    assert clones[1]["clone_wall_us"] < 10 * clones[0]["clone_wall_us"]
