"""EXP-7 — whole-file transfer vs page-at-a-time access (§3.2).

Paper: whole-file transfer wins because (1) custodians are contacted only
on opens/closes rather than on every read, (2) "the total network protocol
overhead in transmitting a file is lower when it is sent en masse", and
(3) "disk access routines on the servers may be better optimized if it is
known that requests are always for entire files".

We fetch files of increasing size both ways against the same revised
server: one whole-file fetch vs one RPC per 4 KB page (with the paged
server paying scattered disk positioning).  Reported: elapsed time, server
interactions, wire bytes.
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import Table

from _common import one_round, save_table

PAGE = 4096
SIZES = [4_096, 65_536, 262_144, 1_048_576]


def build_campus():
    campus = ITCSystem(
        SystemConfig(mode="revised", clusters=1, workstations_per_cluster=1,
                     functional_payload_crypto=False,
                     cache_max_bytes=64_000_000)
    )
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    for size in SIZES:
        campus.populate(volume, {f"/file_{size}": b"z" * size}, owner="u")
    return campus, volume


def add_page_protocol(campus):
    """A page-at-a-time read protocol on the same server (the road not taken)."""
    server = campus.server(0)

    def fetch_page(conn, args, payload):
        volume = server.volumes["u-u"]
        inode = volume.resolve(args["path"])
        offset = args["offset"]
        chunk = inode.data[offset:offset + PAGE]
        yield from server.host.compute(
            server.costs.fid_lookup_cpu
            + server.costs.fetch_base_cpu / 4  # smaller request, some fixed work
            + len(chunk) * server.costs.per_byte_cpu
        )
        # Paged files cannot rely on whole-file sequential layout.
        yield from server.host.disk.access(len(chunk), sequential=False, page_size=PAGE)
        server.call_mix.add("fetch")
        return {"size": len(chunk)}, bytes(chunk)

    server.node.register("FetchPage", fetch_page)


def measure(campus, size):
    sim = campus.sim
    workstation = campus.workstation(0)
    venus = workstation.venus
    server = campus.server(0)
    path = f"/vice/usr/u/file_{size}"
    session = campus.login(workstation, "u", "pw")

    # -- whole-file --------------------------------------------------------
    # Prime name resolution (both protocols would have an open directory
    # handle in steady state), then drop only the file's cached data.
    campus.run_op(session.stat(path))
    venus.cache.remove(f"/usr/u/file_{size}")
    calls_before = server.node.calls_received.total
    wire_before = sum(seg.bytes_carried for seg in campus.network.segments.values())
    start = sim.now
    campus.run_op(session.read_file(path))
    whole = {
        "seconds": sim.now - start,
        "calls": server.node.calls_received.total - calls_before,
        "wire": sum(seg.bytes_carried for seg in campus.network.segments.values()) - wire_before,
    }

    # -- page-at-a-time ------------------------------------------------------
    def paged_read():
        conn = yield from venus._conn("u", "server0")
        received = 0
        while received < size:
            result, chunk = yield from venus.node.call(
                conn, "FetchPage", {"path": f"/file_{size}", "offset": received},
                expect_bytes=PAGE,
            )
            received += len(chunk)
        return received

    calls_before = server.node.calls_received.total
    wire_before = sum(seg.bytes_carried for seg in campus.network.segments.values())
    start = sim.now
    campus.run_op(paged_read())
    paged = {
        "seconds": sim.now - start,
        "calls": server.node.calls_received.total - calls_before,
        "wire": sum(seg.bytes_carried for seg in campus.network.segments.values()) - wire_before,
    }
    return whole, paged


def test_exp7_whole_file_vs_paged(benchmark):
    def sweep():
        campus, _volume = build_campus()
        add_page_protocol(campus)
        return [(size, *measure(campus, size)) for size in SIZES]

    rows = one_round(benchmark, sweep)

    table = Table(
        ["size (KB)", "whole (s)", "paged (s)", "speedup", "whole calls",
         "paged calls", "whole wire (KB)", "paged wire (KB)"],
        title="EXP-7: whole-file vs page-at-a-time fetch",
    )
    for size, whole, paged in rows:
        table.add(
            size // 1024,
            f"{whole['seconds']:.3f}",
            f"{paged['seconds']:.3f}",
            f"{paged['seconds'] / whole['seconds']:.1f}x",
            whole["calls"],
            paged["calls"],
            whole["wire"] // 1024,
            paged["wire"] // 1024,
        )
    save_table("EXP-7_whole_file", table)

    benchmark.extra_info["rows"] = [
        {"size": size, "whole_s": round(w["seconds"], 4), "paged_s": round(p["seconds"], 4)}
        for size, w, p in rows
    ]

    for size, whole, paged in rows:
        expected_pages = -(-size // PAGE)
        # One open/close interaction pattern vs one server hit per page.
        assert whole["calls"] <= 4
        assert paged["calls"] >= expected_pages
        if size > 16 * PAGE:
            # Protocol overhead: per-page envelopes cost wire bytes. (At
            # tiny sizes the whole-file side's one-time name resolution
            # dominates its wire count, so compare where data dominates.)
            assert paged["wire"] > whole["wire"]
        if size > PAGE:
            assert paged["seconds"] > whole["seconds"]
    # The gap widens with file size (per-page costs accumulate).
    small_ratio = rows[0][2]["seconds"] / rows[0][1]["seconds"]
    large_ratio = rows[-1][2]["seconds"] / rows[-1][1]["seconds"]
    assert large_ratio > small_ratio
