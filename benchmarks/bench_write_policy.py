"""EXP-14 — store-on-close vs deferred write-back (§3.2).

Paper: "Changes to a cached file may be transmitted on close to the
corresponding custodian or deferred until a later time.  In our design,
Virtue stores a file back when it is closed.  We have adopted this approach
in order to simplify recovery from workstation crashes.  It also results in
a better approximation to a timesharing file system, where changes by one
user are immediately visible to all other users."

The ablation quantifies what the choice buys and costs: deferral coalesces
stores (less server traffic) but loses more on a crash and delays
visibility.  A save-happy editing session (users repeatedly saving the same
document) makes the trade vivid.
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import Table

from _common import one_round, save_table

SAVES = 20
DOCS = 3


def run_editing_session(write_policy):
    campus = ITCSystem(
        SystemConfig(mode="revised", clusters=1, workstations_per_cluster=2,
                     functional_payload_crypto=False,
                     write_policy=write_policy, flush_delay=30.0)
    )
    campus.add_user("writer", "pw")
    campus.create_user_volume("writer")
    writer = campus.login(0, "writer", "pw")
    sim = campus.sim

    # The editing session: repeated saves, ~10s apart.
    def edit():
        for save in range(SAVES):
            for doc in range(DOCS):
                yield from writer.write_file(
                    f"/vice/usr/writer/doc{doc}", b"draft %03d " % save + b"x" * 3000
                )
            yield sim.timeout(10.0)

    campus.run_op(edit())
    stores_at_crash = campus.server(0).call_mix.count("store")
    # Simulate a crash right at the end of the session, before any further
    # flushing; count how many of the final drafts the server holds.
    volume = campus.server(0).volumes["u-writer"]
    survived = sum(
        1 for doc in range(DOCS)
        if volume.fs.exists(f"/doc{doc}")
        and volume.read(f"/doc{doc}").startswith(b"draft %03d" % (SAVES - 1))
    )
    # Then let the world quiesce and count total stores.
    campus.run(until=sim.now + 120.0)
    return {
        "stores": campus.server(0).call_mix.count("store"),
        "stores_at_crash": stores_at_crash,
        "latest_drafts_on_server_at_crash": survived,
        "coalesced": campus.workstation(0).venus.coalesced_stores,
    }


def test_exp14_write_policy(benchmark):
    results = one_round(
        benchmark,
        lambda: {policy: run_editing_session(policy) for policy in ("on-close", "deferred")},
    )
    on_close, deferred = results["on-close"], results["deferred"]
    total_saves = SAVES * DOCS

    table = Table(
        ["quantity", "store-on-close (the paper)", "deferred 30s"],
        title=f"EXP-14: {SAVES} saves of {DOCS} documents, then a crash",
    )
    table.add("stores sent to the custodian", on_close["stores"], deferred["stores"])
    table.add("closes coalesced away", on_close["coalesced"], deferred["coalesced"])
    table.add(
        f"documents current on server at crash (of {DOCS})",
        on_close["latest_drafts_on_server_at_crash"],
        deferred["latest_drafts_on_server_at_crash"],
    )
    save_table("EXP-14_write_policy", table)

    benchmark.extra_info.update(results)

    # Store-on-close: every save reaches the custodian, nothing is lost.
    assert on_close["stores"] == total_saves
    assert on_close["latest_drafts_on_server_at_crash"] == DOCS
    # Deferral: markedly fewer stores (the benefit)...
    assert deferred["stores"] < 0.6 * total_saves
    assert deferred["coalesced"] > 0
    # ...but the crash window is real (the paper's reason to reject it):
    assert deferred["latest_drafts_on_server_at_crash"] < DOCS
