"""Tracked wall-clock benchmark harness.

Runs the wall-clock-relevant experiments (EXP-4 Andrew, EXP-5 scalability,
EXP-11 encryption) plus the kernel/crypto microbenchmarks, and records both

* **wall seconds** — how long the simulation itself takes to execute, the
  quantity the fast paths in ``repro.sim`` and ``repro.crypto`` exist to
  shrink; and
* **virtual seconds** — the simulated results, which must NOT move when
  only wall-clock work is optimised.

``--json`` writes ``benchmarks/results/BENCH_<date>.json`` so successive
commits can be compared (see docs/performance.md).

Usage::

    PYTHONPATH=src python benchmarks/run_all.py          # print summary
    PYTHONPATH=src python benchmarks/run_all.py --json   # also write BENCH_<date>.json
"""

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import time

if __package__ is None or __package__ == "":  # running as a script
    _HERE = os.path.dirname(os.path.abspath(__file__))
    _SRC = os.path.join(os.path.dirname(_HERE), "src")
    for _path in (_SRC, _HERE):
        if _path not in sys.path:
            sys.path.insert(0, _path)

from repro.rpc.costs import EncryptionMode
from repro.sim.metrics import Samples

from _common import RESULTS_DIR, run_andrew
from bench_availability import SMOKE_SHAPE as AVAIL_SMOKE_SHAPE
from bench_availability import run_availability_benchmark
from bench_campus import run_campus_benchmark
from bench_encryption import run_mode
from bench_kernel import run_microbenchmarks
from bench_metropolis import (SHARD_SMOKE_SCALE, SHARD_SMOKE_WORKERS,
                              SMOKE_SCALES, run_metropolis_benchmark,
                              run_workers_sweep)
from bench_redundancy import SMOKE_FACTORS, SMOKE_PLANS
from bench_redundancy import SMOKE_SHAPE as REDUNDANCY_SMOKE_SHAPE
from bench_redundancy import ERASURE_SMOKE_SCHEME, run_redundancy_benchmark
from bench_scalability import run_concurrent
from bench_soak import TRACKED_SHAPE as SOAK_TRACKED_SHAPE
from bench_soak import run_soak_benchmark

# Paper-facing operation categories (§5.2 Table) -> RPC procedures, both
# protocol families.  Latency comes from the rpc.<host>.latency.<proc>
# histograms the metrics registry keeps on every client node.
OP_CATEGORIES = {
    "Fetch": ("Fetch", "FetchByFid", "FetchDir"),
    "Store": ("Store", "StoreByFid", "CreateByFid"),
    "TestAuth": ("ValidateCache", "ValidateByFid"),
    "GetFileStat": ("GetStatus", "GetStatusByFid"),
}


def _timed(func):
    start = time.perf_counter()
    value = func()
    return value, time.perf_counter() - start


def bench_exp4() -> dict:
    """EXP-4: the three Andrew benchmark variants."""
    variants = {}
    for label, kwargs in (
        ("local", {"mode": "prototype", "remote": False}),
        ("proto_remote", {"mode": "prototype", "remote": True}),
        ("revised_remote", {"mode": "revised", "remote": True}),
    ):
        (_campus, result), wall = _timed(lambda kw=kwargs: run_andrew(**kw))
        variants[label] = {
            "wall_seconds": round(wall, 3),
            "virtual_total_seconds": round(result.total_seconds, 3),
        }
    return variants


def bench_exp5() -> dict:
    """EXP-5: concurrent clients against one prototype server."""
    sweep = {}
    for clients in (1, 2, 4, 8):
        row, wall = _timed(lambda n=clients: run_concurrent(n))
        sweep[str(clients)] = {
            "wall_seconds": round(wall, 3),
            "virtual_mean_seconds": round(row["mean_seconds"], 3),
            "server_cpu": round(row["server_cpu"], 4),
        }
    return sweep


def bench_exp11() -> dict:
    """EXP-11: cold fetches under each encryption mode."""
    modes = {}
    for mode in (EncryptionMode.NONE, EncryptionMode.HARDWARE, EncryptionMode.SOFTWARE):
        timings, wall = _timed(lambda m=mode: run_mode(m))
        modes[mode] = {
            "wall_seconds": round(wall, 3),
            "virtual_seconds_by_size": {str(k): round(v, 4) for k, v in timings.items()},
        }
    return modes


def op_latency_from(campus) -> dict:
    """Virtual-time latency percentiles per paper op category."""
    by_proc = {}
    for name, bag in campus.metrics.histograms("rpc.").items():
        if ".latency." in name:
            by_proc.setdefault(name.rsplit(".", 1)[1], []).append(bag)
    categories = {}
    for category, procedures in OP_CATEGORIES.items():
        merged = Samples(category)
        for procedure in procedures:
            for bag in by_proc.get(procedure, []):
                for value in bag.values:
                    merged.add(value)
        if not len(merged):
            continue
        categories[category] = {
            "count": len(merged),
            "mean_seconds": round(merged.mean, 6),
            "p50_seconds": round(merged.percentile(0.50), 6),
            "p90_seconds": round(merged.percentile(0.90), 6),
            "p99_seconds": round(merged.percentile(0.99), 6),
        }
    return categories


def bench_op_latency() -> dict:
    """Op-level latency from a revised-remote Andrew run."""
    campus, _result = run_andrew(mode="revised", remote=True)
    return op_latency_from(campus)


def collect() -> dict:
    """Run everything; returns the full report structure."""
    report = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "commit": _git_commit(),
        "experiments": {},
    }
    print("EXP-4 (Andrew benchmark)...")
    report["experiments"]["EXP-4"] = bench_exp4()
    print("EXP-5 (scalability sweep)...")
    report["experiments"]["EXP-5"] = bench_exp5()
    print("EXP-11 (encryption modes)...")
    report["experiments"]["EXP-11"] = bench_exp11()
    print("campus scale (4 clusters, 200 workstations)...")
    report["campus"] = run_campus_benchmark()
    # The fixed comparison point for the campus fast-path work: the same
    # shape measured on the reference container at commit 5870225, before
    # the protection/routing/dispatch caches (docs/performance.md).
    report["campus"]["reference_baseline"] = {
        "commit": "5870225",
        "setup_wall_seconds": 1.07,
        "run_wall_seconds": 4.11,
        "events_per_second": 67458,
    }
    print("metropolis sweep (200 + 1,000 workstations, smoke scales)...")
    # The scale trajectory the calendar-queue kernel exists for: events/s
    # at each campus size.  The tracked harness runs the smoke scales (the
    # 5,000-workstation scale is a local/manual bench_metropolis run).
    report["metropolis"] = run_metropolis_benchmark(SMOKE_SCALES)
    print("sharded parallel execution (campus-200, parity-checked)...")
    # Tracks both sides of the repro.sim.shard trade: the sharded events/s
    # (the speedup column; < 1.0 on single-core runners, where the
    # conservative sync is pure overhead) and the per-shard engine stats
    # (windows, horizon waits, blocked %).  run_workers_sweep raises if
    # the sharded virtual outputs diverge from the unsharded reference.
    report["sharded"] = run_workers_sweep([SHARD_SMOKE_SCALE],
                                          [SHARD_SMOKE_WORKERS])
    print("availability under fault plans...")
    # The smoke shape: the full availability table is its own bench; the
    # tracked harness records the CI-budget variant so runs stay cheap.
    report["availability"] = run_availability_benchmark(
        AVAIL_SMOKE_SHAPE, full=False
    )
    print("redundancy matrix (replication factor x fault plan)...")
    # Corner cells only: the full matrix is bench_redundancy's own run;
    # the tracked harness records the CI-budget variant.
    # The coded rows ride along: same smoke shape, 2+1 stripe, so the
    # tracked JSON records replication vs coding side by side.
    report["redundancy"] = run_redundancy_benchmark(
        REDUNDANCY_SMOKE_SHAPE, SMOKE_FACTORS, SMOKE_PLANS,
        erasure=ERASURE_SMOKE_SCHEME
    )
    print("soak (invariant-checked chaos run, tracked shape)...")
    # The continuous-soak gate at the tracked shape: records soak events/s
    # and per-window snapshot overhead; the six-hour acceptance shape is
    # bench_soak --smoke (make soak-smoke).
    report["soak"] = run_soak_benchmark(SOAK_TRACKED_SHAPE)
    print("op latency (revised remote Andrew)...")
    report["op_latency"] = bench_op_latency()
    print("microbenchmarks...")
    report["microbenchmarks"] = {
        name: round(seconds, 4) for name, seconds in run_microbenchmarks().items()
    }
    return report


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() or "unknown"
    except OSError:  # pragma: no cover - git always present in the repo
        return "unknown"


def summarize(report: dict) -> str:
    lines = [f"benchmark run {report['date']} (python {report['python']}, "
             f"commit {report['commit']})", ""]
    for exp, entries in report["experiments"].items():
        total_wall = sum(entry["wall_seconds"] for entry in entries.values())
        lines.append(f"{exp}: {total_wall:.2f} wall seconds total")
        for label, entry in entries.items():
            virtual = (
                entry.get("virtual_total_seconds")
                or entry.get("virtual_mean_seconds")
                or entry.get("virtual_seconds_by_size")
            )
            lines.append(f"  {label:16s} wall {entry['wall_seconds']:7.3f} s"
                         f"   virtual {virtual}")
    if report.get("campus"):
        campus = report["campus"]
        shape = campus["shape"]
        lines.append(
            f"campus scale ({shape['workstations']} workstations, "
            f"{shape['groups']} groups): setup {campus['setup_wall_seconds']:.2f} s,"
            f" run {campus['run_wall_seconds']:.2f} s"
            f" ({campus['events_per_second']:,} events/s)"
        )
    if report.get("metropolis"):
        lines.append(f"metropolis sweep (scheduler "
                     f"{report['metropolis']['scheduler']}):")
        for scale in report["metropolis"]["scales"]:
            lines.append(
                f"  {scale['name']:12s} {scale['workstations']:>5d} ws"
                f"  run {scale['run_wall_seconds']:7.2f} s"
                f"  {scale['events_per_second']:>8,} events/s"
            )
    if report.get("sharded"):
        lines.append(f"sharded parallel execution "
                     f"(workers={report['sharded']['workers']}, parity ok):")
        for entry in report["sharded"]["scales"]:
            ref = entry["reference"]
            lines.append(
                f"  {ref['name']:12s} unsharded  run {ref['run_wall_seconds']:7.2f} s"
                f"  {ref['events_per_second']:>8,} events/s"
            )
            for row in entry["sharded"]:
                lines.append(
                    f"  {row['name']:12s} workers={row['workers']}  "
                    f"run {row['run_wall_seconds']:7.2f} s"
                    f"  {row['events_per_second']:>8,} events/s"
                    f"  speedup {row['speedup']:.2f}x"
                )
    if report.get("availability"):
        lines.append("availability under fault plans (smoke shape):")
        for name, row in report["availability"]["plans"].items():
            mttr = row["mttr"]
            lines.append(
                f"  {name:22s} avail {row['availability']:8.2%}"
                f"  outages {row['outages']:<3d}"
                f" MTTR p50 {mttr['p50']:6.1f}s p90 {mttr['p90']:6.1f}s"
            )
    if report.get("redundancy"):
        lines.append("redundancy matrix (smoke cells):")
        for factor, rows in report["redundancy"]["factors"].items():
            for name, row in rows.items():
                promotions = row.get("controller", {}).get("promotions", 0)
                lines.append(
                    f"  factor {factor} {name:14s} avail "
                    f"{row['availability']:8.2%}  failovers {promotions:<3d}"
                    f" lost {row['lost_writes']['total']:<3d}"
                    f" storage {row['storage']['overhead']:.2f}x"
                )
        erasure = report["redundancy"].get("erasure")
        if erasure:
            for name, row in erasure["rows"].items():
                rebuild = row.get("rebuild", {})
                lines.append(
                    f"  coded {erasure['scheme']} {name:13s} avail "
                    f"{row['availability']:8.2%}  degraded "
                    f"{row.get('degraded_reads', 0):<3d}"
                    f" lost {row['lost_writes']['total']:<3d}"
                    f" storage {row['storage']['overhead']:.2f}x"
                    f" repair {rebuild.get('bytes', 0):,} B"
                )
    if report.get("soak"):
        soak = report["soak"]
        overhead = soak["snapshot_overhead_us"]
        lines.append(
            f"soak ({soak['shape']['workstations']} ws, "
            f"{soak['shape']['virtual_hours']:.1f} virtual h, chaos on): "
            f"wall {soak['soak_wall_seconds']:.2f} s"
            f"  {soak['events_per_second']:,} events/s"
            f"  snapshot {overhead['mean']:.0f} us mean"
            f"  violations {len(soak['violations'])}"
            f"  negative test {'caught' if soak['negative_test_caught'] else 'MISSED'}"
        )
    if report.get("op_latency"):
        lines.append("op latency, virtual ms (revised remote Andrew):")
        for category, stats in report["op_latency"].items():
            lines.append(
                f"  {category:12s} n={stats['count']:<5d}"
                f" p50 {stats['p50_seconds'] * 1000:7.1f}"
                f"  p90 {stats['p90_seconds'] * 1000:7.1f}"
                f"  p99 {stats['p99_seconds'] * 1000:7.1f}"
            )
    lines.append("microbenchmarks (best of 3):")
    for name, seconds in report["microbenchmarks"].items():
        lines.append(f"  {name:28s} {seconds * 1000:8.2f} ms")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="write benchmarks/results/BENCH_<date>.json")
    args = parser.parse_args()

    report = collect()
    print()
    print(summarize(report))

    if args.json:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"BENCH_{report['date']}.json")
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
