#!/usr/bin/env python3
"""The 5-phase benchmark (§5.2), local vs remote, both implementations.

Reproduces the paper's headline measurement in miniature: "the benchmark
takes about 1000 seconds ... about 80% longer when the workstation is
obtaining all its files from an unloaded Vice server" — and then shows
what the redesign buys.

Run:  python examples/andrew_run.py          (takes a few seconds of wall time)

``--trace FILE`` writes a Chrome-trace (Perfetto-loadable) file covering all
three variants; ``--metrics-json FILE`` dumps the last variant's metrics
registry.  See docs/observability.md.
"""

import argparse
import json
import sys

from repro import ITCSystem, SystemConfig
from repro.obs import TraceRecorder
from repro.workload import AndrewBenchmark, PHASES, make_source_tree


def run_variant(mode, remote, recorder=None):
    campus = ITCSystem(
        SystemConfig(mode=mode, clusters=1, workstations_per_cluster=1,
                     functional_payload_crypto=False)
    )
    if recorder is not None:
        recorder.attach(campus.sim)
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    tree = make_source_tree()
    workstation = campus.workstation(0)
    session = campus.login(workstation, "u", "pw")
    if remote:
        campus.populate(volume, tree, owner="u")
        bench = AndrewBenchmark(session, "/vice/usr/u/src", "/vice/usr/u/target")
    else:
        for path, data in sorted(tree.items()):
            parts = path.strip("/").split("/")
            built = ""
            for part in parts[:-1]:
                built += "/" + part
                if not workstation.local_fs.exists(built):
                    workstation.local_fs.mkdir(built)
            workstation.local_fs.create(path, data)
        bench = AndrewBenchmark(session, "/src", "/target")
    return campus, campus.run_op(bench.run())


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--trace", metavar="FILE", default="",
                        help="write a Chrome-trace file covering all variants")
    parser.add_argument("--metrics-json", metavar="FILE", default="",
                        help="dump the revised-remote metrics registry as JSON")
    args = parser.parse_args([] if argv is None else argv)

    print("Running the 5-phase benchmark (virtual seconds)...\n")
    recorder = None
    if args.trace:
        # One recorder follows the run across the three campuses, so a
        # single trace file tells the whole local-vs-remote story.
        from repro.sim.kernel import Simulator
        recorder = TraceRecorder(Simulator())
    _, local = run_variant("prototype", remote=False, recorder=recorder)
    _, proto = run_variant("prototype", remote=True, recorder=recorder)
    campus, revised = run_variant("revised", remote=True, recorder=recorder)

    header = f"{'phase':<10} {'local':>9} {'prototype remote':>17} {'revised remote':>15}"
    print(header)
    print("-" * len(header))
    for phase in PHASES:
        print(f"{phase:<10} {local.phase_seconds[phase]:>8.1f}s "
              f"{proto.phase_seconds[phase]:>16.1f}s "
              f"{revised.phase_seconds[phase]:>14.1f}s")
    print("-" * len(header))
    print(f"{'Total':<10} {local.total_seconds:>8.0f}s "
          f"{proto.total_seconds:>16.0f}s {revised.total_seconds:>14.0f}s")
    print()
    print(f"paper:    local ≈ 1000s, remote ≈ 80% longer")
    print(f"measured: local = {local.total_seconds:.0f}s, prototype remote = "
          f"+{proto.total_seconds / local.total_seconds - 1:.0%}, "
          f"revised remote = +{revised.total_seconds / local.total_seconds - 1:.0%}")

    if recorder is not None:
        recorder.write_chrome_trace(args.trace)
        print(f"\ntrace: {len(recorder.spans)} spans -> {args.trace}")
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            json.dump(campus.metrics.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics -> {args.metrics_json}")


if __name__ == "__main__":
    main(sys.argv[1:])
