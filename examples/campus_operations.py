#!/usr/bin/env python3
"""Day-2 operations: monitoring, rebalancing, and low-function clients.

Two of the paper's forward-looking sections made real:

* §3.6 — "monitoring tools ... to recognize long-term changes in user
  access patterns and help reassign users to cluster servers so as to
  balance server loads and reduce cross-cluster traffic";
* §3.3 — "a surrogate server for IBM PCs" attaching low-function machines
  through a Virtue workstation's transparent Vice connection.

Run:  python examples/campus_operations.py
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import CampusMonitor
from repro.virtue import PersonalComputer, SurrogateServer


def main():
    campus = ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=2))
    monitor = CampusMonitor(campus)

    # A student's volume was placed near her old dormitory (cluster 0)...
    campus.add_user("student", "pw")
    campus.create_user_volume("student", cluster=0)
    print("The student's volume starts at:",
          campus.servers[0].location.custodian_of("/usr/student"))

    # ...but she has moved: all her activity now comes from cluster 1.
    session = campus.login("ws1-0", "student", "pw")
    for index in range(30):
        campus.run_op(session.write_file(f"/vice/usr/student/notes{index}", b"n" * 400))
        campus.run_op(session.read_file(f"/vice/usr/student/notes{index}"))
    print(f"After a month of work, backbone carried "
          f"{campus.cross_cluster_bytes()} bytes of her traffic")
    print()

    print("The monitoring tools report:")
    for volume_id, by_segment in monitor.traffic_matrix().items():
        print(f"  {volume_id}: {by_segment}")
    for rec in monitor.recommendations(min_accesses=20):
        print(f"  RECOMMEND move {rec.volume_id}: {rec.current_server} -> "
              f"{rec.suggested_server}  ({rec.reason})")
    print()

    print("A human operator approves; the volume moves (offline briefly):")
    rec = monitor.recommendations(min_accesses=20)[0]
    start = campus.sim.now
    campus.run_op(monitor.apply(rec))
    print(f"  move window: {campus.sim.now - start:.2f}s virtual")
    print(f"  custodian now: {campus.servers[0].location.custodian_of('/usr/student')}")
    monitor.reset()
    before = campus.cross_cluster_bytes()
    campus.workstation("ws1-0").venus.invalidate_all()
    campus.run_op(session.read_file("/vice/usr/student/notes0"))
    print(f"  a cold re-read now adds {campus.cross_cluster_bytes() - before} "
          "backbone bytes (served in-cluster)")
    print()

    print("Meanwhile, an IBM PC attaches through a surrogate (§3.3):")
    surrogate = SurrogateServer(campus.workstation("ws1-1"), "pcnet0")
    pc = PersonalComputer(surrogate, "ibm-pc-1")
    campus.run_op(pc.attach("student", "pw"))
    campus.run_op(pc.write_file("/vice/usr/student/pc-report.txt",
                                b"written from a 256KB PC"))
    print("  the PC wrote into Vice; a workstation reads it back:")
    data = campus.run_op(session.read_file("/vice/usr/student/pc-report.txt"))
    print(f"  {data.decode()!r}")
    print(f"  surrogate served {surrogate.requests_served} PC requests")
    print()

    print("Per-user usage accounting (§3.6, observed not billed):")
    for user, amount in sorted(monitor.usage_by_user().items()):
        print(f"  {user}: {amount} bytes of file traffic")


if __name__ == "__main__":
    main()
