#!/usr/bin/env python3
"""A bad day on campus: lunchtime server outage plus a flaky backbone.

§2.2's availability stance — "single point network or machine failures
should not affect the entire user community; we are willing to accept
temporary loss of service to small groups of users" — acted out with the
fault-injection subsystem (``repro.faults``) and measured with the
availability tracker (``repro.obs.availability``):

* from mid-morning the backbone drops and corrupts a few percent of
  packets (retransmissions and MAC rejections, not data loss);
* at "lunchtime" the cluster-0 server crashes and salvages back;
* synthetic users keep working throughout; the report shows who noticed,
  for how long, and how quickly service returned.

Run:  python examples/chaos_day.py
"""

from repro import ITCSystem, SystemConfig
from repro.analysis import availability_report
from repro.faults import Fault, FaultPlan
from repro.workload import provision_campus, run_campus_day

WARMUP = 120.0
DAY = 1500.0


def main():
    plan = FaultPlan(name="chaos-day", seed=42, faults=(
        # The backbone turns flaky mid-morning and stays bad all day.
        Fault("link", "backbone", start=WARMUP + 200.0, duration=1200.0,
              loss=0.02, corrupt=0.01, duplicate=0.01),
        # The cluster-0 server dies at lunch and salvages back.
        Fault("server_crash", "server0", start=WARMUP + 600.0, duration=180.0),
    ))
    campus = ITCSystem(SystemConfig(
        mode="revised",
        clusters=2,
        workstations_per_cluster=3,
        functional_payload_crypto=False,
        fault_plan=plan,
    ))
    users = provision_campus(campus, hot_files=8, cold_files=10,
                             shared_files=10, binary_files=6)
    print(f"Scripted outages: {len(plan.faults)} fault windows, seed {plan.seed}")
    for fault in plan.faults:
        print(f"  t={fault.start:6.0f}s  {fault.kind:12s} {fault.target:10s} "
              f"for {fault.duration:.0f}s")
    print()

    summary = run_campus_day(campus, users, duration=DAY, warmup=WARMUP)
    tracker = campus.availability

    print(f"The day: {summary['actions']} user actions over "
          f"{summary['duration']:.0f} virtual seconds")
    print()
    print(availability_report(campus))
    print()

    avail = summary["availability"]
    print(f"campus availability: {avail['availability']:.2%} "
          f"({avail['failures']} failed of {avail['attempts']} attempts)")
    mttr = avail["mttr"]
    if mttr["count"]:
        print(f"outages: {avail['outages']} episodes, MTTR mean "
              f"{mttr['mean']:.0f}s, p90 {mttr['p90']:.0f}s, "
              f"worst {mttr['max']:.0f}s")
    ttfs = avail["ttfs"]
    if ttfs["count"]:
        print(f"after each repair, first successful op within "
              f"{ttfs['mean']:.0f}s on average")
    events = avail["events"]
    print(f"injected {events['faults_injected']} faults, "
          f"{events['recoveries']} recoveries, "
          f"{events['salvages']} salvage passes")
    injected = {k: v for k, v in campus.fault_scheduler.stats.items() if v}
    print(f"wire damage: {injected}")
    rejected = (
        sum(ws.venus.node.corrupt_rejected for ws in campus.workstations)
        + sum(server.node.corrupt_rejected for server in campus.servers)
    )
    print(f"corrupted packets rejected by the integrity layer: {rejected} "
          "(none accepted)")
    print()
    print("The paper's claim holds: the crash cost its cluster some minutes,"
          " the rest of campus kept working.")


if __name__ == "__main__":
    main()
