#!/usr/bin/env python3
"""Heterogeneity via symbolic links (paper Fig. 3-2, §3.1).

"On a Sun workstation, the local directory /bin is a symbolic link to the
remote directory /vice/unix/sun/bin; on a Vax, /bin is a symbolic link to
/vice/unix/vax/bin.  The extra level of indirection provided by symbolic
links is thus of great value in supporting a heterogeneous environment."

A Sun and a Vax sit side by side; both run `/bin/cc`, each transparently
gets its own architecture's binary from the shared space, and both see the
same shared files everywhere else.

Run:  python examples/heterogeneous_campus.py
"""

from repro import ITCSystem, SystemConfig


def main():
    campus = ITCSystem(SystemConfig(clusters=1, workstations_per_cluster=2))
    campus.add_user("dev", "pw")
    campus.create_user_volume("dev")

    # The shared space carries per-architecture binary trees.
    unix = campus.create_volume("/unix", custodian=0, volume_id="unix")
    campus.populate(
        unix,
        {
            "/sun/bin/cc": b"\x7fELF MC68020 compiler",
            "/sun/bin/ls": b"\x7fELF MC68020 ls",
            "/vax/bin/cc": b"\x7fELF VAX-11 compiler",
            "/vax/bin/ls": b"\x7fELF VAX-11 ls",
        },
    )

    # Two workstations of different type; only their local symlinks differ.
    sun = campus.workstation(0)
    sun.ws_type = "sun"
    vax = campus.workstation(1)
    vax.ws_type = "vax"
    for workstation in (sun, vax):
        workstation.local_fs.symlink("/bin", f"/vice/unix/{workstation.ws_type}/bin")

    sun_dev = campus.login(sun, "dev", "pw")
    vax_dev = campus.login(vax, "dev", "pw")

    print("The same local name, per-architecture shared binaries:")
    sun_cc = campus.run_op(sun_dev.read_file("/bin/cc"))
    vax_cc = campus.run_op(vax_dev.read_file("/bin/cc"))
    print(f"  on the Sun,  /bin/cc -> {sun_cc.decode()}")
    print(f"  on the Vax,  /bin/cc -> {vax_cc.decode()}")
    print()

    print("Where the names actually point:")
    for workstation in (sun, vax):
        target = workstation.local_fs.readlink("/bin")
        print(f"  {workstation.name} ({workstation.ws_type}): /bin -> {target}")
    print()

    print("Everything else in the shared space is identical for both:")
    campus.run_op(sun_dev.write_file("/vice/usr/dev/shared-note", b"works on my Sun"))
    note = campus.run_op(vax_dev.read_file("/vice/usr/dev/shared-note"))
    print(f"  the Vax reads the Sun's note: {note.decode()!r}")
    print()

    print("Local files stay local (Fig. 3-1's partition):")
    campus.run_op(sun_dev.write_file("/tmp/scratch.o", b"sun-only temporary"))
    exists_on_vax = campus.run_op(vax_dev.exists("/tmp/scratch.o"))
    print(f"  /tmp/scratch.o written on the Sun, visible on the Vax: {exists_on_vax}")


if __name__ == "__main__":
    main()
