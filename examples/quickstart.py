#!/usr/bin/env python3
"""Quickstart: a two-cluster campus, one user, whole-file caching at work.

Builds the Fig. 2-1/2-2 topology (clusters of workstations around cluster
servers, joined by a backbone), creates a user with a home volume, and
shows the fundamental cycle: open-fetch, cache-hit re-read, store-on-close
— with the virtual-time cost of each step.

Run:  python examples/quickstart.py
"""

from repro import ITCSystem, SystemConfig


def main():
    config = SystemConfig(
        mode="revised",  # the paper's redesigned implementation
        clusters=2,
        workstations_per_cluster=3,
    )
    campus = ITCSystem(config)

    print("The campus (paper Fig. 2-2):")
    print(f"  backbone Ethernet + {config.clusters} cluster LANs")
    for cluster in range(config.clusters):
        names = [ws.name for ws in campus.workstations
                 if ws.name.startswith(f"ws{cluster}-")]
        print(f"  cluster{cluster}: server{cluster} + workstations {', '.join(names)}")
    print()

    # -- setup: a user and their home volume -------------------------------
    campus.add_user("satya", "correct-horse")
    campus.create_user_volume("satya", cluster=0)
    session = campus.login("ws0-0", "satya", "correct-horse")
    sim = campus.sim

    # -- store on close ------------------------------------------------------
    start = sim.now
    campus.run_op(session.write_file("/vice/usr/satya/notes.txt",
                                     b"Caching whole files is the key idea.\n"))
    print(f"write_file (create + store-through on close): {sim.now - start:.3f}s virtual")

    # -- first read: whole-file fetch from the custodian ----------------------
    start = sim.now
    data = campus.run_op(session.read_file("/vice/usr/satya/notes.txt"))
    print(f"first read  (cache miss, whole-file fetch):   {sim.now - start:.3f}s virtual")

    # -- second read: pure cache hit, zero Vice traffic -----------------------
    calls_before = campus.server(0).node.calls_received.total
    start = sim.now
    data = campus.run_op(session.read_file("/vice/usr/satya/notes.txt"))
    print(f"second read (cache hit):                      {sim.now - start:.3f}s virtual")
    print(f"  server calls during the cache hit: "
          f"{campus.server(0).node.calls_received.total - calls_before}")
    print(f"  contents: {data.decode().strip()!r}")
    print()

    # -- the same file from the other side of campus --------------------------
    roaming = campus.login("ws1-2", "satya", "correct-horse")
    start = sim.now
    data = campus.run_op(roaming.read_file("/vice/usr/satya/notes.txt"))
    print(f"read from ws1-2 across the backbone:          {sim.now - start:.3f}s virtual")
    print()

    venus = campus.workstation("ws0-0").venus
    print(f"Venus at ws0-0: {len(venus.cache)} file(s) cached, "
          f"hit ratio {venus.cache.hit_ratio:.0%}")
    print(f"call mix so far: {campus.campus_call_mix()}")


if __name__ == "__main__":
    main()
