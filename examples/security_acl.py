#!/usr/bin/env python3
"""Security walkthrough: untrusted workstations, ACLs, negative rights.

Demonstrates §3.4 end to end:
  1. mutual authentication — a wrong password gets nothing;
  2. an eavesdropper on the campus LAN sees only ciphertext;
  3. access lists with recursive groups;
  4. negative rights as the rapid-revocation mechanism.

Run:  python examples/security_acl.py
"""

from repro import ITCSystem, SystemConfig
from repro.errors import AuthenticationFailure, PermissionDenied


def main():
    campus = ITCSystem(SystemConfig(clusters=1, workstations_per_cluster=3))
    campus.add_user("satya", "pw-satya")
    campus.add_user("howard", "pw-howard")
    campus.add_user("mallory", "pw-mallory")
    campus.create_user_volume("satya")
    satya = campus.login("ws0-0", "satya", "pw-satya")

    # ---------------------------------------------------------------- 1
    print("1. Mutual authentication")
    impostor = campus.login("ws0-1", "satya", "guessed-password")
    try:
        campus.run_op(impostor.listdir("/vice/usr/satya"))
    except AuthenticationFailure:
        print("   wrong password -> AuthenticationFailure (nothing leaked)")
    print()

    # ---------------------------------------------------------------- 2
    print("2. The exposed LAN")
    secret = b"grant proposal: ask for $2,000,000"
    wire_capture = []
    original_send = campus.network.send

    def wiretap(datagram, kind="data", deliver=True):
        envelope = datagram.payload
        wire_capture.append(getattr(envelope, "body", b"") + getattr(envelope, "payload", b""))
        return original_send(datagram, kind, deliver)

    campus.network.send = wiretap
    campus.run_op(satya.write_file("/vice/usr/satya/proposal.txt", secret))
    campus.network.send = original_send
    snooped = b"".join(wire_capture)
    print(f"   {len(wire_capture)} messages captured, {len(snooped)} bytes total")
    print(f"   plaintext visible to the wiretap: {secret in snooped}")
    print()

    # ---------------------------------------------------------------- 3
    print("3. Access lists and recursive groups")
    campus.add_group("itc-staff", members=["howard"])
    campus.add_group("project-vice", members=["itc-staff"])  # group in group
    campus.run_op(satya.mkdir("/vice/usr/satya/vice-design"))
    acl = campus.run_op(satya.get_acl("/vice/usr/satya/vice-design"))
    acl["positive"]["project-vice"] = "rliw"
    acl["positive"].pop("system:anyuser", None)  # private to the project
    campus.run_op(satya.set_acl("/vice/usr/satya/vice-design", acl))
    campus.run_op(
        satya.write_file("/vice/usr/satya/vice-design/ideas.txt", b"callbacks!")
    )

    howard = campus.login("ws0-1", "howard", "pw-howard")
    data = campus.run_op(howard.read_file("/vice/usr/satya/vice-design/ideas.txt"))
    print(f"   howard (member via itc-staff ⊆ project-vice) reads: {data.decode()!r}")
    mallory = campus.login("ws0-2", "mallory", "pw-mallory")
    try:
        campus.run_op(mallory.read_file("/vice/usr/satya/vice-design/ideas.txt"))
    except PermissionDenied:
        print("   mallory (no group) -> PermissionDenied")
    print()

    # ---------------------------------------------------------------- 4
    print("4. Negative rights: rapid revocation")
    campus.add_member("itc-staff", "mallory")  # mallory joins the staff...
    data = campus.run_op(mallory.read_file("/vice/usr/satya/vice-design/ideas.txt"))
    print(f"   mallory, newly on staff, reads: {data.decode()!r}")
    print("   ...and is then caught leaking documents.")
    # Removing her from every group would crawl the replicated protection
    # database; a negative entry on the one ACL is immediate:
    acl = campus.run_op(satya.get_acl("/vice/usr/satya/vice-design"))
    acl["negative"] = {"mallory": "rliwdak"}
    campus.run_op(satya.set_acl("/vice/usr/satya/vice-design", acl))
    try:
        campus.run_op(mallory.read_file("/vice/usr/satya/vice-design/ideas.txt"))
    except PermissionDenied:
        print("   negative rights override her group grant -> PermissionDenied")
    data = campus.run_op(howard.read_file("/vice/usr/satya/vice-design/ideas.txt"))
    print(f"   howard is unaffected: {data.decode()!r}")


if __name__ == "__main__":
    main()
