#!/usr/bin/env python3
"""Releasing system software with read-only volume clones (§3.2, §5.3).

"The creation of a read-only subtree is an atomic operation, thus
providing a convenient mechanism to support the orderly release of new
system software.  Multiple coexisting versions of a subsystem are
represented by their respective read-only subtrees."

An administrator stages compiler release 2 in the read-write volume, clones
it, and places replicas in both clusters; workstations keep fetching from
their nearest replica, custodian load drops, and the frozen release never
changes under users' feet.

Run:  python examples/software_release.py
"""

from repro import ITCSystem, SystemConfig


def main():
    campus = ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=2))
    campus.add_user("operator", "ops")
    campus.add_user("student", "pw")

    # The system-software volume, custodian in cluster 0.
    unix = campus.create_volume("/unix", custodian=0, volume_id="unix", owner="operator")
    campus.populate(
        unix,
        {
            "/bin/cc": b"\x7fELF cc release 1 " + b"c" * 40_000,
            "/bin/ld": b"\x7fELF ld release 1 " + b"l" * 30_000,
            "/bin/make": b"\x7fELF make release 1 " + b"m" * 20_000,
        },
        owner="operator",
    )

    print("Release 1 is live. A student in cluster 1 compiles:")
    student = campus.login("ws1-0", "student", "pw")
    backbone_before = campus.cross_cluster_bytes()
    campus.run_op(student.read_file("/vice/unix/bin/cc"))
    print(f"  cold fetch of /vice/unix/bin/cc crossed the backbone "
          f"({campus.cross_cluster_bytes() - backbone_before} bytes): "
          "the custodian lives in cluster 0")
    print()

    print("The operator clones the volume and places replicas in BOTH clusters:")
    campus.run_op(
        campus.server(0).release_readonly("unix", ["server0", "server1"])
    )
    entry = campus.server(1).location.entry_for_volume("unix")
    print(f"  location database now lists replicas at: {entry.ro_servers}")

    # A different student, cold cache, after the release:
    campus.add_user("student2", "pw")
    student2 = campus.login("ws1-1", "student2", "pw")
    backbone_before = campus.cross_cluster_bytes()
    campus.run_op(student2.read_file("/vice/unix/bin/cc"))
    crossed = campus.cross_cluster_bytes() - backbone_before
    print(f"  cold fetch now crosses the backbone: {crossed} bytes "
          "(served by the replica in the student's own cluster)")
    print()

    print("Release 2 is staged in the read-write volume...")
    operator = campus.login("ws0-0", "operator", "ops")
    campus.run_op(
        operator.write_file("/vice/unix/bin/cc",
                            b"\x7fELF cc release 2 " + b"C" * 45_000)
    )
    frozen = campus.server(1).volumes["unix-ro"].read("/bin/cc")
    print(f"  the frozen replica still serves: {frozen[:22]!r}")
    rw = campus.server(0).volumes["unix"].read("/bin/cc")
    print(f"  the read-write volume holds:     {rw[:22]!r}")
    print()

    print("The operator cuts release 2 over atomically (a fresh clone):")
    for server in campus.servers:
        server.volumes.pop("unix-ro", None)  # retire release 1's clones
    campus.run_op(
        campus.server(0).release_readonly("unix", ["server0", "server1"])
    )
    campus.workstation("ws1-1").venus.invalidate_all()  # simulate later re-fetch
    data = campus.run_op(student2.read_file("/vice/unix/bin/cc"))
    print(f"  students now fetch: {data[:22]!r}")
    print()
    print("Caching note: replica copies can never go stale, so Venus skips")
    validations = campus.workstation("ws1-1").venus.validations
    campus.run_op(student2.read_file("/vice/unix/bin/cc"))
    print(f"  validation on re-open (validations before/after: "
          f"{validations}/{campus.workstation('ws1-1').venus.validations})")


if __name__ == "__main__":
    main()
