#!/usr/bin/env python3
"""User mobility: the paper's §3.2 promise, measured.

"If a user places all his files in the shared name space, he can move to
any other workstation attached to Vice and use it exactly as he would use
his own workstation.  The only observable differences are an initial
performance penalty as the cache on the new workstation is filled with the
user's working set of files."

A faculty member works in her office (cluster 0), walks to a dormitory
workstation across campus (cluster 1), and keeps working.  We measure the
cold-cache penalty and its disappearance.

Run:  python examples/user_mobility.py
"""

from repro import ITCSystem, SystemConfig


WORKING_SET = [f"/vice/usr/prof/paper/section{i}.tex" for i in range(8)]


def work_a_little(campus, session):
    """Edit the paper: read every section, append to one."""
    start = campus.sim.now
    for path in WORKING_SET:
        campus.run_op(session.read_file(path))
    campus.run_op(session.append_file(WORKING_SET[0], b"% revised\n"))
    return campus.sim.now - start


def main():
    campus = ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=2))
    campus.add_user("prof", "tenure")
    campus.create_user_volume("prof", cluster=0)  # custodian near her office

    office = campus.login("ws0-0", "prof", "tenure")
    campus.run_op(office.mkdir("/vice/usr/prof/paper"))
    for path in WORKING_SET:
        campus.run_op(office.write_file(path, b"\\section{...}\n" * 200))

    print("In the office (ws0-0, same cluster as her custodian):")
    print(f"  warm session: {work_a_little(campus, office):7.3f}s virtual")
    print(f"  warm session: {work_a_little(campus, office):7.3f}s virtual")
    print()

    # She walks across campus. Nothing to carry: her files are in Vice.
    dorm = office.move_to(campus.workstation("ws1-1"), "tenure")
    print("At the dormitory (ws1-1, other side of the backbone):")
    cold = work_a_little(campus, dorm)
    print(f"  first session (cache filling):  {cold:7.3f}s virtual")
    warm = work_a_little(campus, dorm)
    print(f"  second session (cache full):    {warm:7.3f}s virtual")
    print(f"  initial penalty: {cold / warm:.1f}x, then native speed")
    print()

    # Both workstations saw the same name space throughout.
    listing = campus.run_op(dorm.listdir("/vice/usr/prof/paper"))
    print(f"Same name space everywhere: /vice/usr/prof/paper -> {listing}")

    venus = campus.workstation("ws1-1").venus
    print(f"Venus at the dormitory now caches {len(venus.cache)} files "
          f"({venus.cache.used_bytes} bytes) of her working set")


if __name__ == "__main__":
    main()
