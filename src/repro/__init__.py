"""Reproduction of the ITC Distributed File System (Vice/Virtue, SOSP 1985).

A faithful, runnable implementation of the system described in
Satyanarayanan et al., "The ITC Distributed File System: Principles and
Design": whole-file caching workstations (Virtue/Venus) over a cluster of
trusted file servers (Vice), with location-transparent naming, volumes,
access lists with negative rights, encryption-based mutual authentication,
and both the 1985 prototype and the revised (proto-AFS-2) implementations.

Quick start::

    from repro import ITCSystem, SystemConfig

    campus = ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=3))
    campus.add_user("satya", "password")
    campus.create_user_volume("satya")
    session = campus.login("ws0-0", "satya", "password")
    campus.run_op(session.write_file("/vice/usr/satya/notes.txt", b"hello vice"))
    print(campus.run_op(session.read_file("/vice/usr/satya/notes.txt")))

See DESIGN.md for the architecture and EXPERIMENTS.md for the paper's
evaluation reproduced by the ``benchmarks/`` harness.
"""

from repro.system.config import SystemConfig
from repro.system.itc import ITCSystem
from repro.virtue.session import UserSession

__version__ = "1.0.0"

__all__ = ["ITCSystem", "SystemConfig", "UserSession", "__version__"]
