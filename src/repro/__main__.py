"""Command-line front end: ``python -m repro <command>``.

Small, self-contained demonstrations of the reproduced system:

* ``info``     — what this package is and what it contains;
* ``andrew``   — the §5.2 5-phase benchmark, local vs remote;
* ``day``      — a synthetic campus day, reporting the §5.2 quantities;
* ``mobility`` — the cold-cache/warm-cache mobility measurement;
* ``status``   — a short campus day followed by the operator's dashboard;
* ``chaos``    — a campus day under an injected fault plan (or seeded
  random chaos), reporting availability, MTTR and the outage timeline;
* ``trace``    — a traced benchmark run exported as a Chrome-trace file;
* ``profile``  — a cProfile'd workload: wall-clock hot spots printed next
  to the simulation's cache counters (see ``docs/performance.md``);
* ``console``  — the live ops console: a campus day rendered as a curses
  dashboard with pause/step/pacing control and interactive fault
  injection (``--headless`` renders plain-text frames instead);
* ``soak``     — the continuous soak driver: hours-to-days of virtual
  time under diurnal load and chaos faults, rolling metrics and ops
  events streamed to JSONL, soak invariants asserted per window (exit
  code 1 on any violation).

``andrew`` and ``status`` accept ``--trace FILE`` (write a Perfetto-loadable
trace of the run) and ``--metrics-json FILE`` (dump the campus metrics
registry); see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import ITCSystem, SystemConfig, __version__
from repro.analysis import Table, campus_report, format_share
from repro.analysis.dashboard import availability_report, hotspot_report
from repro.faults import PRESETS, FaultPlan
from repro.obs import RollingAggregator, TraceRecorder, validate_coverage
from repro.workload import (
    AndrewBenchmark,
    PHASES,
    launch_campus_day,
    make_source_tree,
    provision_campus,
    run_campus_day,
)


def _rolling_flags(command) -> None:
    """The shared ``--window`` / ``--top`` rolling-aggregator flags."""
    command.add_argument("--window", type=float, default=0.0, metavar="SECONDS",
                        help="sample rolling metrics windows every SECONDS of "
                             "virtual time (0 = off)")
    command.add_argument("--top", type=int, default=0, metavar="N",
                        help="print the top-N hot volumes/users/servers from "
                             "the rolling windows (0 = off)")


def _install_rolling(args, campus):
    """Attach a sampling RollingAggregator when --window/--top asked for one."""
    if args.window <= 0 and args.top <= 0:
        return None
    every = args.window if args.window > 0 else 300.0
    aggregator = RollingAggregator(campus.metrics)
    aggregator.install_sampler(campus.sim, every)
    return aggregator


def _finish_rolling(args, aggregator) -> None:
    """Print the hotspot tables the rolling windows accumulated."""
    if aggregator is None:
        return
    print()
    print(hotspot_report(aggregator, args.top if args.top > 0 else 5))
    overhead = aggregator.overhead_us
    print(f"\nrolling windows: {len(aggregator.windows)} sampled, snapshot "
          f"overhead mean {overhead.mean:.0f}us p99 "
          f"{overhead.percentile(0.99):.0f}us")


def cmd_info(_args) -> int:
    """Print the package summary."""
    print(f"repro {__version__} — the ITC Distributed File System (SOSP 1985)")
    print(__doc__)
    print("Subpackages: sim, net, crypto, rpc, storage, vice, venus, virtue,")
    print("             system, workload, analysis, obs")
    print("See DESIGN.md / EXPERIMENTS.md, and benchmarks/ for the evaluation.")
    return 0


def _attach_recorder(args, campus) -> TraceRecorder:
    """Attach (or move) the run's trace recorder when ``--trace`` was given."""
    recorder = getattr(args, "_recorder", None)
    if recorder is None:
        recorder = TraceRecorder(campus.sim)
        args._recorder = recorder
    else:
        recorder.attach(campus.sim)
    return recorder


def _finish_obs(args, campus) -> None:
    """Write the ``--trace`` / ``--metrics-json`` outputs, if requested."""
    recorder = getattr(args, "_recorder", None)
    if recorder is not None and args.trace:
        recorder.write_chrome_trace(args.trace)
        print(f"trace: {len(recorder.spans)} spans -> {args.trace}")
    if getattr(args, "metrics_json", None):
        with open(args.metrics_json, "w") as handle:
            json.dump(campus.metrics.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics: {len(campus.metrics)} instruments -> {args.metrics_json}")


def _andrew_once(mode: str, remote: bool, args=None):
    campus = ITCSystem(
        SystemConfig(mode=mode, clusters=1, workstations_per_cluster=1,
                     functional_payload_crypto=False)
    )
    if args is not None and getattr(args, "trace", None):
        _attach_recorder(args, campus)
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    tree = make_source_tree()
    workstation = campus.workstation(0)
    session = campus.login(workstation, "u", "pw")
    if remote:
        campus.populate(volume, tree, owner="u")
        bench = AndrewBenchmark(session, "/vice/usr/u/src", "/vice/usr/u/target")
    else:
        for path, data in sorted(tree.items()):
            parts = path.strip("/").split("/")
            built = ""
            for part in parts[:-1]:
                built += "/" + part
                if not workstation.local_fs.exists(built):
                    workstation.local_fs.mkdir(built)
            workstation.local_fs.create(path, data)
        bench = AndrewBenchmark(session, "/src", "/target")
    return campus, campus.run_op(bench.run())


def cmd_andrew(args) -> int:
    """Run the 5-phase benchmark."""
    _, local = _andrew_once(args.mode, remote=False, args=args)
    campus, remote = _andrew_once(args.mode, remote=True, args=args)
    table = Table(["phase", "local (s)", "remote (s)"],
                  title=f"5-phase benchmark ({args.mode})")
    for phase in PHASES:
        table.add(phase, f"{local.phase_seconds[phase]:.1f}",
                  f"{remote.phase_seconds[phase]:.1f}")
    table.add("Total", f"{local.total_seconds:.0f}", f"{remote.total_seconds:.0f}")
    print(table)
    print(f"\nremote penalty: +{remote.total_seconds / local.total_seconds - 1:.0%}"
          f"  (paper, prototype: about +80%)")
    _finish_obs(args, campus)
    return 0


def cmd_day(args) -> int:
    """Run a synthetic campus day and report the §5.2 quantities."""
    campus = ITCSystem(
        SystemConfig(mode=args.mode, clusters=args.clusters,
                     workstations_per_cluster=args.workstations,
                     functional_payload_crypto=False, cache_max_files=200)
    )
    users = provision_campus(campus)
    print(f"running {len(users)} users for {args.hours:.1f}h "
          f"(+{args.warmup:.1f}h warm-up), mode={args.mode} ...")
    summary = run_campus_day(
        campus, users, duration=args.hours * 3600.0, warmup=args.warmup * 3600.0
    )
    table = Table(["quantity", "value"], title="campus day summary")
    table.add("user actions", summary["actions"])
    table.add("cache hit ratio", format_share(summary["hit_ratio"]))
    for label, share in sorted(summary["call_mix"].items(), key=lambda kv: -kv[1]):
        table.add(f"call mix: {label}", format_share(share))
    table.add("busiest server CPU", format_share(summary["busiest_cpu"]))
    table.add("busiest server disk", format_share(summary["busiest_disk"]))
    table.add("CPU peak (short-term)", format_share(summary["busiest_cpu_peak"]))
    table.add("backbone bytes", summary["cross_cluster_bytes"])
    print(table)
    return 0


def cmd_mobility(_args) -> int:
    """Measure the §3.2 mobility penalty."""
    campus = ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=1))
    campus.add_user("prof", "pw")
    campus.create_user_volume("prof", cluster=0)
    session = campus.login("ws0-0", "prof", "pw")
    campus.run_op(session.mkdir("/vice/usr/prof/work"))
    paths = [f"/vice/usr/prof/work/file{i}" for i in range(10)]
    for path in paths:
        campus.run_op(session.write_file(path, b"w" * 4000))

    def read_all(active):
        start = campus.sim.now
        for path in paths:
            campus.run_op(active.read_file(path))
        return campus.sim.now - start

    home = read_all(session)
    away = session.move_to(campus.workstation("ws1-0"), "pw")
    cold = read_all(away)
    warm = read_all(away)
    table = Table(["session", "10-file working set (s)"], title="user mobility")
    table.add("home cluster, warm", f"{home:.3f}")
    table.add("across campus, cold", f"{cold:.3f}")
    table.add("across campus, warm", f"{warm:.3f}")
    print(table)
    print(f"\ninitial penalty {cold / warm:.1f}x, then native speed — §3.2's promise")
    return 0


def cmd_status(args) -> int:
    """Run a brief campus day, then print the operator's dashboard."""
    campus = ITCSystem(
        SystemConfig(mode=args.mode, clusters=args.clusters,
                     workstations_per_cluster=args.workstations,
                     functional_payload_crypto=False)
    )
    if args.trace:
        _attach_recorder(args, campus)
    users = provision_campus(campus, hot_files=8, cold_files=8,
                             shared_files=8, binary_files=6)
    run_campus_day(campus, users, duration=args.duration, warmup=args.warmup)
    print(campus_report(campus))
    _finish_obs(args, campus)
    return 0


def cmd_chaos(args) -> int:
    """Run a campus day under a fault plan; report availability and MTTR."""
    if args.plan_file:
        with open(args.plan_file) as handle:
            plan = FaultPlan.from_dict(json.load(handle))
    else:
        plan = PRESETS[args.plan](seed=args.seed)
    replication = None
    if args.replication > 1:
        from repro.vice.replication import ReplicationConfig

        replication = ReplicationConfig(factor=args.replication)
    erasure = None
    if args.erasure:
        from repro.vice.erasure import ErasureConfig

        try:
            k, m = (int(part) for part in args.erasure.split(","))
        except ValueError:
            print(f"--erasure wants K,M (e.g. 4,2), got {args.erasure!r}")
            return 2
        erasure = ErasureConfig(data=k, parity=m)
    campus = ITCSystem(
        SystemConfig(mode=args.mode, clusters=args.clusters,
                     workstations_per_cluster=args.workstations,
                     functional_payload_crypto=False,
                     seed=args.seed, fault_plan=plan,
                     replication=replication, erasure=erasure)
    )
    if args.trace:
        _attach_recorder(args, campus)
    aggregator = _install_rolling(args, campus)
    users = provision_campus(campus, hot_files=8, cold_files=8,
                             shared_files=8, binary_files=6)
    print(f"running {len(users)} users for {args.duration:.0f}s "
          f"(+{args.warmup:.0f}s warm-up) under plan {plan.name!r}, "
          f"seed={plan.seed} ...")
    summary = run_campus_day(campus, users, duration=args.duration,
                             warmup=args.warmup)
    print(availability_report(campus))
    scheduler = campus.fault_scheduler
    injected = {k: v for k, v in scheduler.stats.items() if v}
    events = campus.availability.counters
    print(f"\nfaults: {events['faults_injected']} injected, "
          f"{events['recoveries']} recovered, {events['salvages']} salvage "
          f"passes" + (f"; packet/disk injections: {injected}" if injected else ""))
    ttfs = summary["availability"]["ttfs"]
    if ttfs["count"]:
        print(f"time to first success after recovery: mean {ttfs['mean']:.1f}s, "
              f"p90 {ttfs['p90']:.1f}s")
    controller = campus.replication_controller
    if controller is not None and erasure is not None:
        degraded = sum(ws.venus.degraded_reads for ws in campus.workstations)
        rebuild_bytes = sum(
            s.replication.rebuild_bytes for s in campus.servers
            if s.replication is not None
        )
        print(f"erasure ({erasure.data}+{erasure.parity}): "
              f"{controller.deaths_declared} deaths declared, "
              f"{controller.promotions} promotions, "
              f"{controller.rebuilds} stripe rebuilds, "
              f"{controller.rejoins} rejoins; "
              f"{degraded} degraded reads, "
              f"{rebuild_bytes} repair-traffic bytes")
    elif controller is not None:
        print(f"replication (factor {args.replication}): "
              f"{controller.deaths_declared} deaths declared, "
              f"{controller.promotions} promotions, "
              f"{controller.rereplications} re-replications, "
              f"{controller.rejoins} rejoins")
    if args.timeline:
        count = campus.availability.write_timeline(args.timeline)
        print(f"timeline: {count} events -> {args.timeline}")
    _finish_rolling(args, aggregator)
    _finish_obs(args, campus)
    return 0


def cmd_profile(args) -> int:
    """cProfile a workload; print hot spots next to the obs-layer counters."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    aggregator = None
    shard_stats = []
    if args.workload == "andrew":
        print("profiling: andrew benchmark (remote, revised mode) ...")
        profiler.enable()
        campus, result = _andrew_once("revised", remote=True)
        profiler.disable()
        virtual = result.total_seconds
    else:
        sharding = None
        if getattr(args, "workers", 0):
            from repro.sim.shard import ShardConfig

            sharding = ShardConfig(workers=args.workers)
        campus = ITCSystem(
            SystemConfig(mode="revised", clusters=args.clusters,
                         workstations_per_cluster=args.workstations,
                         functional_payload_crypto=False,
                         sharding=sharding)
        )
        if args.window > 0:
            aggregator = RollingAggregator(campus.metrics)
            aggregator.install_sampler(campus.sim, args.window)
        with campus.batch_setup():
            users = provision_campus(campus, hot_files=8, cold_files=8,
                                     shared_files=8, binary_files=6)
        workers_note = (f", {args.workers} shard workers" if sharding else "")
        print(f"profiling: campus day, {len(users)} users, "
              f"{args.duration:.0f}s after {args.warmup:.0f}s warm-up"
              f"{workers_note} ...")
        start = campus.sim.now
        profiler.enable()
        if sharding is not None:
            from repro.sim.shard import run_sharded_campus_day

            summary = run_sharded_campus_day(
                campus, users, duration=args.duration, warmup=args.warmup,
                stats_sink=shard_stats,
            )
            virtual = summary["duration"] + args.warmup
            profiler.disable()
        else:
            run_campus_day(campus, users, duration=args.duration,
                           warmup=args.warmup)
            profiler.disable()
            virtual = campus.sim.now - start

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(f"\n=== hot spots (top {args.top} by {args.sort}) ===")
    print(stream.getvalue().rstrip())

    # The wall-clock picture above only means something next to what the
    # simulation did: pair it with the registry's cache counters so a cold
    # cache or a routing regression is visible alongside the hot functions.
    metrics = campus.metrics
    print(f"\n=== simulation counters ({virtual:.0f} virtual seconds) ===")
    rows = Table(["instrument", "hits", "misses", "hit rate"], title="caches")
    for name in metrics.names():
        if not name.endswith("cache"):
            continue
        counts = metrics.value(name).get("counts", {})
        hits, misses = counts.get("hits", 0), counts.get("misses", 0)
        rate = hits / (hits + misses) if hits + misses else 0.0
        rows.add(name, hits, misses, format_share(rate))
    print(rows)

    # Event-queue health: the kernel is the wall-clock floor, so show how
    # the scheduler coped — cascade share (events that never touched the
    # time-ordered queue), occupancy, resizes and dead-event compactions.
    stats = campus.sim.scheduler_stats
    queue_rows = Table(["stat", "value"], title=f"event queue ({stats['scheduler']})")
    queue_rows.add("events", stats["events"])
    queue_rows.add("queue pushes", stats["pushes"])
    queue_rows.add("cascade events", stats["cascade_events"])
    queue_rows.add("cascade share", format_share(
        stats["cascade_events"] / stats["events"] if stats["events"] else 0.0))
    if stats["scheduler"] == "calendar":
        queue_rows.add("buckets", stats["buckets"])
        queue_rows.add("bucket width (s)", f"{stats['bucket_width']:.6g}")
        queue_rows.add("occupied buckets", stats["occupied_buckets"])
        queue_rows.add("overflow pending", stats["overflow"])
        queue_rows.add("resizes", stats["resizes"])
    queue_rows.add("dead (uncompacted)", stats["dead"])
    queue_rows.add("compactions", stats["compactions"])
    print(queue_rows)

    # --workers: the per-shard engine picture.  The tables above describe
    # the coordinator process (which only forks, merges and idles under
    # sharding); the workers' own kernels report here.
    if shard_stats:
        shard_rows = Table(
            ["shard", "clusters", "events", "events/s", "windows",
             "horizon waits", "blocked %"],
            title="shard workers (coordinator tables above are idle)")
        for stats in shard_stats:
            shard_rows.add(
                stats["shard"],
                ",".join(str(c) for c in stats["clusters"]),
                stats["events"],
                f"{stats['events_per_s']:,}",
                stats["windows"],
                stats["horizon_waits"],
                f"{stats['blocked_pct']:.1f}",
            )
        print(shard_rows)

    # --window: the rolling-window hotspot view of the same run, so "which
    # volume/user is hot" sits next to "which function is hot".
    if aggregator is not None:
        print()
        print(hotspot_report(aggregator, args.top))
        overhead = aggregator.overhead_us
        print(f"\nrolling windows: {len(aggregator.windows)} sampled, snapshot "
              f"overhead mean {overhead.mean:.0f}us p99 "
              f"{overhead.percentile(0.99):.0f}us")
    return 0


def cmd_console(args) -> int:
    """Run the live ops console over a fresh campus day."""
    from repro.console import ConsoleModel, run_console, run_headless
    from repro.obs.live import OpsEventStream, SimulationController

    campus = ITCSystem(
        SystemConfig(mode="revised", clusters=args.clusters,
                     workstations_per_cluster=args.workstations,
                     functional_payload_crypto=False)
    )
    users = provision_campus(campus, hot_files=8, cold_files=8,
                             shared_files=8, binary_files=6)
    horizon = campus.sim.now + args.hours * 3600.0
    launch_campus_day(campus, users, args.hours * 3600.0)
    controller = SimulationController(campus.sim, pacing=args.pacing)
    stream = OpsEventStream(campus.sim, path=args.events or None)
    model = ConsoleModel(campus, controller, stream=stream,
                         sample_every=args.sample_every)
    # Fault controls created the availability tracker; route every user's
    # operation outcomes through it so outages reach the banner/stream.
    for user in users:
        user.tracker = campus.availability
    try:
        if args.headless:
            return run_headless(model, frames=args.frames,
                                print_frames=args.print_frames)
        return run_console(model, horizon=horizon)
    finally:
        stream.close()


def cmd_soak(args) -> int:
    """Run the soak driver; exit 1 on any invariant violation."""
    from repro.soak import SoakConfig, run_soak

    config = SoakConfig(
        clusters=args.clusters,
        workstations_per_cluster=args.workstations,
        hours=args.hours,
        window=args.window,
        warmup=args.warmup,
        seed=args.seed,
        chaos_mean_interval=args.chaos_interval,
        chaos_mean_outage=args.chaos_outage,
        metrics_path=args.metrics or None,
        events_path=args.events or None,
        break_invariant=args.break_invariant,
    )
    report = run_soak(config)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report -> {args.json}")
    return 1 if report["violations"] else 0


def cmd_trace(args) -> int:
    """Run a short traced benchmark and export the trace."""
    campus = ITCSystem(
        SystemConfig(mode="revised", clusters=1, workstations_per_cluster=1,
                     functional_payload_crypto=False)
    )
    recorder = TraceRecorder(campus.sim)
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    campus.populate(volume, make_source_tree(), owner="u")
    session = campus.login(campus.workstation(0), "u", "pw")
    bench = AndrewBenchmark(session, "/vice/usr/u/src", "/vice/usr/u/target")
    result = campus.run_op(bench.run())

    recorder.write_chrome_trace(args.out)
    print(f"{len(recorder.spans)} spans over {result.total_seconds:.0f} virtual "
          f"seconds -> {args.out}")
    if args.jsonl:
        recorder.write_jsonl(args.jsonl)
        print(f"JSONL -> {args.jsonl}")
    if args.check:
        problems = validate_coverage(recorder.spans)
        for problem in problems:
            print(f"coverage FAIL: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("coverage OK: open->RPC->server->disk for fetch and store")
    return 0


def main(argv=None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Runnable demonstrations of the ITC DFS reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def obs_flags(command):
        command.add_argument("--trace", metavar="FILE", default="",
                             help="write a Chrome-trace (Perfetto) file of the run")
        command.add_argument("--metrics-json", metavar="FILE", default="",
                             help="dump the campus metrics registry as JSON")

    sub.add_parser("info", help="package summary").set_defaults(func=cmd_info)

    andrew = sub.add_parser("andrew", help="the 5-phase benchmark")
    andrew.add_argument("--mode", choices=("prototype", "revised"), default="prototype")
    obs_flags(andrew)
    andrew.set_defaults(func=cmd_andrew)

    day = sub.add_parser("day", help="a synthetic campus day")
    day.add_argument("--mode", choices=("prototype", "revised"), default="prototype")
    day.add_argument("--clusters", type=int, default=1)
    day.add_argument("--workstations", type=int, default=20)
    day.add_argument("--hours", type=float, default=1.5)
    day.add_argument("--warmup", type=float, default=1.5)
    day.set_defaults(func=cmd_day)

    sub.add_parser("mobility", help="the mobility penalty").set_defaults(
        func=cmd_mobility
    )

    status = sub.add_parser("status", help="campus day + operator dashboard")
    status.add_argument("--mode", choices=("prototype", "revised"), default="revised")
    status.add_argument("--clusters", type=int, default=2,
                        help="cluster count (default 2)")
    status.add_argument("--workstations", type=int, default=4,
                        help="workstations per cluster (default 4)")
    status.add_argument("--duration", type=float, default=600.0,
                        help="measured window, virtual seconds (default 600)")
    status.add_argument("--warmup", type=float, default=120.0,
                        help="warm-up before measuring, virtual seconds (default 120)")
    obs_flags(status)
    status.set_defaults(func=cmd_status)

    chaos = sub.add_parser(
        "chaos", help="campus day under fault injection; availability report"
    )
    chaos.add_argument("--plan", choices=sorted(PRESETS), default="server-crash",
                       help="named fault plan preset (default server-crash)")
    chaos.add_argument("--plan-file", metavar="FILE", default="",
                       help="load a FaultPlan from JSON instead of a preset")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (default 0)")
    chaos.add_argument("--mode", choices=("prototype", "revised"), default="revised")
    chaos.add_argument("--clusters", type=int, default=2,
                       help="cluster count (default 2)")
    chaos.add_argument("--workstations", type=int, default=4,
                       help="workstations per cluster (default 4)")
    chaos.add_argument("--duration", type=float, default=1800.0,
                       help="measured window, virtual seconds (default 1800)")
    chaos.add_argument("--warmup", type=float, default=120.0,
                       help="warm-up before measuring, virtual seconds (default 120)")
    chaos.add_argument("--replication", type=int, default=1, metavar="N",
                       help="replicate each volume on N servers with heartbeat "
                            "failover (default 1 = off; revised mode only)")
    chaos.add_argument("--erasure", default="", metavar="K,M",
                       help="erasure-code each volume into K data + M parity "
                            "fragments on distinct servers, with degraded "
                            "reads and background rebuild (default off; "
                            "revised mode only, exclusive with --replication)")
    chaos.add_argument("--timeline", metavar="FILE", default="",
                       help="write the fault/outage timeline as JSON")
    obs_flags(chaos)
    _rolling_flags(chaos)
    chaos.set_defaults(func=cmd_chaos)

    console = sub.add_parser(
        "console", help="live ops console: dashboard + interactive faults"
    )
    console.add_argument("--clusters", type=int, default=2,
                         help="cluster count (default 2)")
    console.add_argument("--workstations", type=int, default=4,
                         help="workstations per cluster (default 4)")
    console.add_argument("--hours", type=float, default=2.0,
                         help="virtual hours of campus day to run (default 2)")
    console.add_argument("--pacing", type=float, default=60.0,
                         help="virtual seconds per wall second (default 60)")
    console.add_argument("--sample-every", type=float, default=10.0,
                         help="rolling-window interval, virtual s (default 10)")
    console.add_argument("--events", metavar="FILE", default="",
                         help="also write the ops-event stream as JSONL")
    console.add_argument("--headless", action="store_true",
                         help="no curses: advance fixed frames, print the last")
    console.add_argument("--frames", type=int, default=12,
                         help="--headless: frames to advance (default 12)")
    console.add_argument("--print-frames", action="store_true",
                         help="--headless: print every frame, not just the last")
    console.set_defaults(func=cmd_console)

    soak = sub.add_parser(
        "soak", help="continuous soak under chaos; invariant-checked windows"
    )
    soak.add_argument("--clusters", type=int, default=2,
                      help="cluster count (default 2)")
    soak.add_argument("--workstations", type=int, default=10,
                      help="workstations per cluster (default 10)")
    soak.add_argument("--hours", type=float, default=6.0,
                      help="measured virtual hours (default 6)")
    soak.add_argument("--window", type=float, default=600.0,
                      help="invariant/metrics window, virtual s (default 600)")
    soak.add_argument("--warmup", type=float, default=900.0,
                      help="warm-up virtual seconds (default 900)")
    soak.add_argument("--seed", type=int, default=0,
                      help="campus + chaos seed (default 0)")
    soak.add_argument("--chaos-interval", type=float, default=900.0,
                      help="mean seconds between chaos faults (default 900)")
    soak.add_argument("--chaos-outage", type=float, default=60.0,
                      help="mean chaos fault duration (default 60)")
    soak.add_argument("--metrics", metavar="FILE", default="",
                      help="write one rolling window per line as JSONL")
    soak.add_argument("--events", metavar="FILE", default="",
                      help="write the ops-event stream as JSONL")
    soak.add_argument("--json", metavar="FILE", default="",
                      help="write the final soak report as JSON")
    soak.add_argument("--break-invariant", action="store_true",
                      help="sabotage the pending bound (negative test: the "
                           "run must exit 1)")
    soak.set_defaults(func=cmd_soak)

    profile = sub.add_parser(
        "profile", help="cProfile a workload; hot spots + cache counters"
    )
    profile.add_argument("workload", choices=("andrew", "campus"), nargs="?",
                         default="andrew",
                         help="what to profile (default andrew)")
    profile.add_argument("--top", type=int, default=15,
                         help="how many hot functions to print (default 15)")
    profile.add_argument("--sort", choices=("cumulative", "tottime"),
                         default="cumulative",
                         help="pstats sort order (default cumulative)")
    profile.add_argument("--clusters", type=int, default=2,
                         help="campus workload: cluster count (default 2)")
    profile.add_argument("--workstations", type=int, default=5,
                         help="campus workload: workstations per cluster (default 5)")
    profile.add_argument("--duration", type=float, default=120.0,
                         help="campus workload: measured virtual seconds (default 120)")
    profile.add_argument("--warmup", type=float, default=30.0,
                         help="campus workload: warm-up virtual seconds (default 30)")
    profile.add_argument("--window", type=float, default=0.0, metavar="SECONDS",
                         help="campus workload: sample rolling metrics windows "
                              "every SECONDS of virtual time (0 = off)")
    profile.add_argument("--workers", type=int, default=0, metavar="N",
                         help="campus workload: run sharded over N per-cluster "
                              "event-loop workers and print the per-shard "
                              "table (0 = single process)")
    profile.set_defaults(func=cmd_profile)

    trace = sub.add_parser(
        "trace", help="run a short traced benchmark, export a Chrome trace"
    )
    trace.add_argument("--out", metavar="FILE", default="trace.json",
                       help="Chrome-trace output path (default trace.json)")
    trace.add_argument("--jsonl", metavar="FILE", default="",
                       help="also write one-span-per-line JSONL")
    trace.add_argument("--check", action="store_true",
                       help="validate end-to-end span coverage; exit 1 on gaps")
    trace.set_defaults(func=cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
