"""Command-line front end: ``python -m repro <command>``.

Small, self-contained demonstrations of the reproduced system:

* ``info``     — what this package is and what it contains;
* ``andrew``   — the §5.2 5-phase benchmark, local vs remote;
* ``day``      — a synthetic campus day, reporting the §5.2 quantities;
* ``mobility`` — the cold-cache/warm-cache mobility measurement;
* ``status``   — a short campus day followed by the operator's dashboard.
"""

from __future__ import annotations

import argparse
import sys

from repro import ITCSystem, SystemConfig, __version__
from repro.analysis import Table, campus_report, format_share
from repro.workload import (
    AndrewBenchmark,
    PHASES,
    make_source_tree,
    provision_campus,
    run_campus_day,
)


def cmd_info(_args) -> int:
    """Print the package summary."""
    print(f"repro {__version__} — the ITC Distributed File System (SOSP 1985)")
    print(__doc__)
    print("Subpackages: sim, net, crypto, rpc, storage, vice, venus, virtue,")
    print("             system, workload, analysis")
    print("See DESIGN.md / EXPERIMENTS.md, and benchmarks/ for the evaluation.")
    return 0


def _andrew_once(mode: str, remote: bool):
    campus = ITCSystem(
        SystemConfig(mode=mode, clusters=1, workstations_per_cluster=1,
                     functional_payload_crypto=False)
    )
    campus.add_user("u", "pw")
    volume = campus.create_user_volume("u")
    tree = make_source_tree()
    workstation = campus.workstation(0)
    session = campus.login(workstation, "u", "pw")
    if remote:
        campus.populate(volume, tree, owner="u")
        bench = AndrewBenchmark(session, "/vice/usr/u/src", "/vice/usr/u/target")
    else:
        for path, data in sorted(tree.items()):
            parts = path.strip("/").split("/")
            built = ""
            for part in parts[:-1]:
                built += "/" + part
                if not workstation.local_fs.exists(built):
                    workstation.local_fs.mkdir(built)
            workstation.local_fs.create(path, data)
        bench = AndrewBenchmark(session, "/src", "/target")
    return campus.run_op(bench.run())


def cmd_andrew(args) -> int:
    """Run the 5-phase benchmark."""
    local = _andrew_once(args.mode, remote=False)
    remote = _andrew_once(args.mode, remote=True)
    table = Table(["phase", "local (s)", "remote (s)"],
                  title=f"5-phase benchmark ({args.mode})")
    for phase in PHASES:
        table.add(phase, f"{local.phase_seconds[phase]:.1f}",
                  f"{remote.phase_seconds[phase]:.1f}")
    table.add("Total", f"{local.total_seconds:.0f}", f"{remote.total_seconds:.0f}")
    print(table)
    print(f"\nremote penalty: +{remote.total_seconds / local.total_seconds - 1:.0%}"
          f"  (paper, prototype: about +80%)")
    return 0


def cmd_day(args) -> int:
    """Run a synthetic campus day and report the §5.2 quantities."""
    campus = ITCSystem(
        SystemConfig(mode=args.mode, clusters=args.clusters,
                     workstations_per_cluster=args.workstations,
                     functional_payload_crypto=False, cache_max_files=200)
    )
    users = provision_campus(campus)
    print(f"running {len(users)} users for {args.hours:.1f}h "
          f"(+{args.warmup:.1f}h warm-up), mode={args.mode} ...")
    summary = run_campus_day(
        campus, users, duration=args.hours * 3600.0, warmup=args.warmup * 3600.0
    )
    table = Table(["quantity", "value"], title="campus day summary")
    table.add("user actions", summary["actions"])
    table.add("cache hit ratio", format_share(summary["hit_ratio"]))
    for label, share in sorted(summary["call_mix"].items(), key=lambda kv: -kv[1]):
        table.add(f"call mix: {label}", format_share(share))
    table.add("busiest server CPU", format_share(summary["busiest_cpu"]))
    table.add("busiest server disk", format_share(summary["busiest_disk"]))
    table.add("CPU peak (short-term)", format_share(summary["busiest_cpu_peak"]))
    table.add("backbone bytes", summary["cross_cluster_bytes"])
    print(table)
    return 0


def cmd_mobility(_args) -> int:
    """Measure the §3.2 mobility penalty."""
    campus = ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=1))
    campus.add_user("prof", "pw")
    campus.create_user_volume("prof", cluster=0)
    session = campus.login("ws0-0", "prof", "pw")
    campus.run_op(session.mkdir("/vice/usr/prof/work"))
    paths = [f"/vice/usr/prof/work/file{i}" for i in range(10)]
    for path in paths:
        campus.run_op(session.write_file(path, b"w" * 4000))

    def read_all(active):
        start = campus.sim.now
        for path in paths:
            campus.run_op(active.read_file(path))
        return campus.sim.now - start

    home = read_all(session)
    away = session.move_to(campus.workstation("ws1-0"), "pw")
    cold = read_all(away)
    warm = read_all(away)
    table = Table(["session", "10-file working set (s)"], title="user mobility")
    table.add("home cluster, warm", f"{home:.3f}")
    table.add("across campus, cold", f"{cold:.3f}")
    table.add("across campus, warm", f"{warm:.3f}")
    print(table)
    print(f"\ninitial penalty {cold / warm:.1f}x, then native speed — §3.2's promise")
    return 0


def cmd_status(args) -> int:
    """Run a brief campus day, then print the operator's dashboard."""
    campus = ITCSystem(
        SystemConfig(mode=args.mode, clusters=2, workstations_per_cluster=4,
                     functional_payload_crypto=False)
    )
    users = provision_campus(campus, hot_files=8, cold_files=8,
                             shared_files=8, binary_files=6)
    run_campus_day(campus, users, duration=600.0, warmup=120.0)
    print(campus_report(campus))
    return 0


def main(argv=None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Runnable demonstrations of the ITC DFS reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package summary").set_defaults(func=cmd_info)

    andrew = sub.add_parser("andrew", help="the 5-phase benchmark")
    andrew.add_argument("--mode", choices=("prototype", "revised"), default="prototype")
    andrew.set_defaults(func=cmd_andrew)

    day = sub.add_parser("day", help="a synthetic campus day")
    day.add_argument("--mode", choices=("prototype", "revised"), default="prototype")
    day.add_argument("--clusters", type=int, default=1)
    day.add_argument("--workstations", type=int, default=20)
    day.add_argument("--hours", type=float, default=1.5)
    day.add_argument("--warmup", type=float, default=1.5)
    day.set_defaults(func=cmd_day)

    sub.add_parser("mobility", help="the mobility penalty").set_defaults(
        func=cmd_mobility
    )

    status = sub.add_parser("status", help="campus day + operator dashboard")
    status.add_argument("--mode", choices=("prototype", "revised"), default="revised")
    status.set_defaults(func=cmd_status)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
