"""Analysis: result tables, the §3.6 monitoring tools, status dashboard."""

from repro.analysis.dashboard import (
    availability_report,
    campus_report,
    server_report,
    workstation_report,
)
from repro.analysis.monitor import CampusMonitor, Recommendation
from repro.analysis.report import Table, comparison_table, format_seconds, format_share

__all__ = [
    "CampusMonitor",
    "Recommendation",
    "Table",
    "availability_report",
    "campus_report",
    "comparison_table",
    "format_seconds",
    "format_share",
    "server_report",
    "workstation_report",
]
