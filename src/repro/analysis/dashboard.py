"""The operator's campus status report.

§3.6 asks for tools "to ease day-to-day operations of the system"; this is
the at-a-glance half of that (the trend-watching half is
:class:`repro.analysis.monitor.CampusMonitor`).  One call renders the whole
campus: servers with their volumes, load and callback state; workstations
with their cache health; and the location database's current shape.
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import Table, format_share

__all__ = ["availability_report", "campus_report", "hotspot_report",
           "server_report", "workstation_report"]


def server_report(campus, start: float = 0.0) -> Table:
    """One row per cluster server: storage, load, state.

    Reads the metrics registry (``campus.metrics``) rather than reaching
    into component attributes; CPU/disk utilization still goes through the
    host because the report window starts at ``start``, not at zero.
    """
    table = Table(
        ["server", "volumes", "files", "used MB", "calls", "CPU", "disk",
         "callbacks held", "locks"],
        title="Vice servers",
    )
    metrics = campus.metrics
    for server in campus.servers:
        name = server.host.name
        snap = metrics.snapshot(f"vice.{name}.")
        table.add(
            name,
            snap[f"vice.{name}.volumes"]["value"],
            snap[f"vice.{name}.files"]["value"],
            f"{snap[f'vice.{name}.used_bytes']['value'] / 1e6:.1f}",
            metrics.value(f"rpc.{name}.calls_received")["total"],
            format_share(server.host.cpu_utilization(start)),
            format_share(server.host.disk_utilization(start)),
            snap[f"vice.{name}.callbacks.held"]["value"],
            snap[f"vice.{name}.locks.held"]["value"],
        )
    return table


def workstation_report(campus) -> Table:
    """One row per workstation: cache health and traffic.

    Driven entirely by the metrics registry — the table is a rendering of
    ``campus.metrics.snapshot("venus.<host>.")``.
    """
    table = Table(
        ["workstation", "cached files", "cache KB", "hit ratio", "opens",
         "fetches", "stores", "breaks rx"],
        title="Virtue workstations",
    )
    metrics = campus.metrics
    for workstation in campus.workstations:
        name = workstation.name
        snap = metrics.snapshot(f"venus.{name}.")
        table.add(
            name,
            snap[f"venus.{name}.cache.files"]["value"],
            snap[f"venus.{name}.cache.used_bytes"]["value"] // 1024,
            format_share(snap[f"venus.{name}.cache.hit_ratio"]["value"]),
            snap[f"venus.{name}.opens"]["total"],
            snap[f"venus.{name}.fetches"]["total"],
            snap[f"venus.{name}.stores"]["total"],
            snap[f"venus.{name}.callback_breaks_received"]["total"],
        )
    return table


def volume_report(campus) -> Table:
    """One row per mounted volume: placement and state."""
    table = Table(
        ["mount", "volume", "custodian", "replicas", "files", "bytes",
         "quota", "state"],
        title="Location database",
    )
    location = campus.servers[0].location
    for entry in location.entries():
        try:
            volume = campus.volume(entry.volume_id)
            state = "online" if volume.online else "OFFLINE"
            files, used = volume.file_count, volume.used_bytes
            quota = volume.quota_bytes or "—"
        except Exception:
            state, files, used, quota = "missing", "?", "?", "—"
        table.add(
            entry.mount_path,
            entry.volume_id,
            entry.custodian,
            ",".join(entry.ro_servers) or "—",
            files,
            used,
            quota,
            state,
        )
    return table


def availability_report(campus) -> Table:
    """Outage accounting, when a fault plan is installed.

    Renders the :class:`~repro.obs.availability.AvailabilityTracker`
    summary: one row of campus-wide numbers plus one per user that
    experienced an outage.
    """
    tracker = campus.availability
    summary = tracker.summary()
    table = Table(
        ["scope", "ops", "ok", "failed", "availability", "outages",
         "MTTR p50", "MTTR p90"],
        title="Availability",
    )
    mttr = summary["mttr"]
    table.add(
        "campus",
        summary["attempts"],
        summary["successes"],
        summary["failures"],
        format_share(summary["availability"]),
        summary["outages"],
        f"{mttr['p50']:.1f}s",
        f"{mttr['p90']:.1f}s",
    )
    for user, stats in tracker.per_user().items():
        if not stats["failures"]:
            continue
        episodes = [e for e in tracker.episodes if e.user == user]
        durations = sorted(e.duration for e in episodes)
        table.add(
            user,
            stats["attempts"],
            stats["successes"],
            stats["failures"],
            format_share(stats["availability"]),
            len(episodes),
            f"{durations[len(durations) // 2]:.1f}s" if durations else "—",
            f"{durations[-1]:.1f}s" if durations else "—",
        )
    return table


def hotspot_report(aggregator, k: int = 5) -> str:
    """Top-``k`` hot volumes, users and servers from a rolling aggregator.

    Renders :meth:`~repro.obs.live.RollingAggregator.top` over the retained
    windows — the "which volume do we move tonight?" question §5.2 answers
    operationally.  Shared by ``repro chaos --top`` / ``repro profile
    --top`` and the console's hotspot panel.
    """
    sections: List[str] = []
    for field, unit in (("volumes", "bytes"), ("users", "bytes"),
                        ("servers", "calls")):
        ranked = aggregator.top(field, k)
        table = Table([field[:-1], unit, "share"],
                      title=f"Top {field} ({len(aggregator.windows)} windows)")
        total = sum(delta for _, delta in ranked) or 1.0
        for name, delta in ranked:
            table.add(name, f"{delta:.0f}", format_share(delta / total))
        if not ranked:
            table.add("—", "0", format_share(0.0))
        sections.append(str(table))
    return "\n\n".join(sections)


def campus_report(campus, start: float = 0.0) -> str:
    """The full report, ready to print."""
    sections: List[str] = [
        f"Campus status at t={campus.sim.now:.1f}s "
        f"({campus.config.mode} mode, {len(campus.servers)} clusters,"
        f" {len(campus.workstations)} workstations)",
        "",
        str(server_report(campus, start)),
        "",
        str(workstation_report(campus)),
        "",
        str(volume_report(campus)),
    ]
    mix = campus.campus_call_mix()
    if mix:
        mix_table = Table(["call category", "share"], title="Campus call mix")
        for label, share in sorted(mix.items(), key=lambda kv: -kv[1]):
            mix_table.add(label, format_share(share))
        sections += ["", str(mix_table)]
    if getattr(campus, "availability", None) is not None:
        sections += ["", str(availability_report(campus))]
    return "\n".join(sections)
