"""Monitoring tools (§3.6): access-pattern observation and rebalancing.

"Another area, whose importance we recognize ... is the development of
monitoring tools.  These tools will be required to ease day-to-day
operations of the system and also to recognize long-term changes in user
access patterns and help reassign users to cluster servers so as to balance
server loads and reduce cross-cluster traffic."  And §3.1: "we may install
mechanisms in Vice to monitor long-term access file patterns and recommend
changes to improve performance.  Even then, a human operator will initiate
the actual reassignment."

:class:`CampusMonitor` reads the traffic counters every server keeps (per
volume, per originating cluster segment) and produces *recommendations*; a
human — the example or test driving the simulation — decides whether to
apply each one via the normal ``move_volume`` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

__all__ = ["CampusMonitor", "Recommendation"]


@dataclass(frozen=True)
class Recommendation:
    """One suggested custodian reassignment."""

    volume_id: str
    current_server: str
    suggested_server: str
    local_accesses: int
    remote_accesses: int
    reason: str

    @property
    def remote_fraction(self) -> float:
        total = self.local_accesses + self.remote_accesses
        return self.remote_accesses / total if total else 0.0


class CampusMonitor:
    """Aggregates every server's volume-traffic counters campus-wide."""

    def __init__(self, campus):
        self.campus = campus

    # -- observation ---------------------------------------------------------

    def traffic_matrix(self) -> Dict[str, Dict[str, int]]:
        """volume_id -> {originating segment -> data accesses}."""
        metrics = self.campus.metrics
        matrix: Dict[str, Dict[str, int]] = {}
        for server in self.campus.servers:
            reading = metrics.value(f"vice.{server.host.name}.volume_traffic")
            for label, count in reading["counts"].items():
                volume_id, _, segment = label.partition("|")
                row = matrix.setdefault(volume_id, {})
                row[segment] = row.get(segment, 0) + count
        return matrix

    def server_load(self) -> Dict[str, int]:
        """Total served calls per server (load-balance view)."""
        metrics = self.campus.metrics
        return {
            server.host.name:
                metrics.value(f"rpc.{server.host.name}.calls_received")["total"]
            for server in self.campus.servers
        }

    def usage_by_user(self) -> Dict[str, int]:
        """Bytes of data traffic per user, campus-wide (§3.6 accounting)."""
        metrics = self.campus.metrics
        totals: Dict[str, int] = {}
        for server in self.campus.servers:
            reading = metrics.value(f"vice.{server.host.name}.usage_by_user")
            for user, amount in reading["counts"].items():
                totals[user] = totals.get(user, 0) + amount
        return totals

    # -- recommendation ---------------------------------------------------------

    def _segment_server(self, segment: str) -> str:
        """The cluster server living on a given segment."""
        for server in self.campus.servers:
            if server.host.nic.segment.name == segment:
                return server.host.name
        return ""

    def recommendations(
        self, min_accesses: int = 20, remote_threshold: float = 0.6
    ) -> List[Recommendation]:
        """Volumes whose traffic mostly originates in another cluster.

        A volume is flagged when at least ``min_accesses`` data accesses
        were observed and more than ``remote_threshold`` of them came from
        one *other* cluster — the "student moved to another dormitory" case
        of §3.1.
        """
        location = self.campus.servers[0].location
        flagged: List[Recommendation] = []
        for volume_id, by_segment in self.traffic_matrix().items():
            if volume_id.endswith("-ro"):
                continue  # replicas already sit where their readers are
            total = sum(by_segment.values())
            if total < min_accesses:
                continue
            try:
                entry = location.entry_for_volume(volume_id)
            except Exception:
                continue
            custodian = entry.custodian
            home_segment = next(
                (s.host.nic.segment.name for s in self.campus.servers
                 if s.host.name == custodian),
                "",
            )
            local = by_segment.get(home_segment, 0)
            for segment, count in sorted(by_segment.items(), key=lambda kv: -kv[1]):
                if segment == home_segment:
                    continue
                if count / total > remote_threshold:
                    target = self._segment_server(segment)
                    if target and target != custodian:
                        flagged.append(
                            Recommendation(
                                volume_id=volume_id,
                                current_server=custodian,
                                suggested_server=target,
                                local_accesses=local,
                                remote_accesses=count,
                                reason=(
                                    f"{count}/{total} data accesses originate in "
                                    f"{segment}, served from {home_segment}"
                                ),
                            )
                        )
                break  # only consider the dominant remote segment
        return flagged

    # -- the human-in-the-loop action -----------------------------------------

    def apply(self, recommendation: Recommendation) -> Generator:
        """Carry out one reassignment (operator-initiated, §3.1)."""
        server = self.campus.server(recommendation.current_server)
        yield from server.move_volume(
            recommendation.volume_id, recommendation.suggested_server
        )

    def reset(self) -> None:
        """Start a fresh observation window."""
        for server in self.campus.servers:
            server.volume_traffic = type(server.volume_traffic)(
                server.volume_traffic.name
            )
