"""Result tables for the benchmark harness.

Every bench prints the same rows/series the paper reports, plus a
paper-vs-measured comparison where the paper pins a number.  The plain-text
tables here keep that output dependency-free and diff-friendly (the bench
outputs are recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["Table", "format_share", "format_seconds", "comparison_table",
           "utilization_bar"]


def format_share(value: float) -> str:
    """A fraction as a percent string."""
    return f"{100.0 * value:5.1f}%"


def utilization_bar(fraction: float, width: int = 10) -> str:
    """A bracketed text meter: ``utilization_bar(0.42)`` -> ``[####......]``.

    Shared by the live ops console's panels and any plain-text report that
    wants an at-a-glance load column.  Values are clamped to [0, 1].
    """
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "[" + "#" * filled + "." * (width - filled) + "]"


def format_seconds(value: float) -> str:
    """Seconds with sensible precision."""
    if value >= 100:
        return f"{value:8.0f} s"
    if value >= 1:
        return f"{value:8.1f} s"
    return f"{value * 1000:6.1f} ms"


class Table:
    """A plain-text table with aligned columns."""

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add(self, *cells) -> None:
        """Append a row (cells are stringified)."""
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        """The formatted table."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def comparison_table(
    title: str,
    paper: Dict[str, float],
    measured: Dict[str, float],
    formatter=format_share,
    order: Optional[List[str]] = None,
) -> Table:
    """Paper-vs-measured rows for the quantities the paper pins."""
    table = Table(["quantity", "paper", "measured"], title=title)
    keys = order or list(paper)
    for key in keys:
        table.add(
            key,
            formatter(paper[key]) if key in paper else "—",
            formatter(measured.get(key, 0.0)),
        )
    return table
