"""The live ops console: §3.6's day-to-day operations seat, interactive.

``python -m repro console`` runs a campus day under a
:class:`~repro.obs.live.SimulationController` and renders it as a
terminal dashboard: per-server utilization bars, campus-wide rates from a
:class:`~repro.obs.live.RollingAggregator`, an outage banner, hot
volumes/users, and the tail of the structured ops-event stream.  The
operator can pause the virtual clock, single-step it, throttle it to
wall-clock speed, and inject faults (crash a server, partition a cluster,
start chaos) whose effects appear in the banner and the JSONL stream —
the interactive half of what the paper's operators did by walking to the
machine room.

The module splits into a pure :class:`ConsoleModel` (state + text frames,
fully testable headlessly) and a thin curses front-end
(:func:`run_console`).  Only the front-end imports :mod:`curses`, so the
model works on builds without it and in CI pipes.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.report import format_share, utilization_bar
from repro.errors import ReproError
from repro.faults.plan import ChaosConfig, Fault
from repro.obs.live import OpsEventStream, RollingAggregator, SimulationController
from repro.system.topology import cluster_segment

__all__ = ["ConsoleModel", "KEY_HELP", "run_console"]

# One-line key legend rendered at the bottom of every frame.
KEY_HELP = ("space pause  tab/0-9 select  c crash  p partition  x chaos  "
            ". step  > +10s  +/- speed  q quit")


class ConsoleModel:
    """Everything the console shows and does, minus the terminal.

    The model owns the observer stack (controller, aggregator, event
    stream), refreshes rolling windows as virtual time passes, renders
    text frames, and translates operator commands into fault-scheduler
    calls.  The curses front-end and the ``--headless`` mode are both thin
    loops over :meth:`handle_key` / :meth:`refresh` / :meth:`render_lines`.
    """

    def __init__(self, campus, controller: Optional[SimulationController] = None,
                 stream: Optional[OpsEventStream] = None,
                 sample_every: float = 10.0, top_k: int = 4,
                 crash_outage: float = 90.0, partition_outage: float = 60.0):
        self.campus = campus
        self.sim = campus.sim
        self.controller = controller or SimulationController(self.sim, pacing=60.0)
        self.aggregator = RollingAggregator(campus.metrics)
        self.stream = stream or OpsEventStream(self.sim)
        self.sample_every = sample_every
        self.top_k = top_k
        self.crash_outage = crash_outage
        self.partition_outage = partition_outage
        # Fault controls (installs an empty plan + availability tracker on
        # campuses that have none, so injected faults are accounted for).
        self.scheduler = campus.ensure_fault_controls()
        self.stream.attach_availability(campus.availability)
        # Selectable targets: every server, then every cluster segment.
        self.targets: List[Tuple[str, str]] = (
            [("server", server.host.name) for server in campus.servers]
            + [("cluster", cluster_segment(i))
               for i in range(campus.config.clusters)]
        )
        self.selected = 0
        self.status = "ready"
        self.quit_requested = False
        self._next_sample = self.sim.now + sample_every

    # -- observation -------------------------------------------------------

    def refresh(self) -> Optional[Dict[str, Any]]:
        """Sample a new rolling window if one is due; returns the window."""
        window = None
        while self.sim.now >= self._next_sample:
            window = self.aggregator.sample(self.sim.now)
            self.stream.scan(window)
            self._next_sample += self.sample_every
        return window

    def banner(self) -> str:
        """The outage line: active faults and open outages, or all-clear."""
        active = self.scheduler.active
        tracker = self.campus.availability
        open_outages = len(tracker.open_episodes()) if tracker is not None else 0
        if not active and not open_outages:
            return "ALL CLEAR"
        faults = ", ".join(f"{kind}:{target}"
                           for kind, target in sorted(active))
        pieces = []
        if faults:
            pieces.append(f"ACTIVE FAULTS [{faults}]")
        if open_outages:
            pieces.append(f"{open_outages} users in outage")
        return "  ".join(pieces)

    # -- selection ---------------------------------------------------------

    @property
    def selected_target(self) -> Tuple[str, str]:
        return self.targets[self.selected]

    def select(self, index: int) -> None:
        if 0 <= index < len(self.targets):
            self.selected = index
            kind, name = self.targets[index]
            self.status = f"selected {kind} {name}"

    def select_next(self) -> None:
        self.select((self.selected + 1) % len(self.targets))

    # -- operator actions --------------------------------------------------

    def toggle_pause(self) -> None:
        paused = self.controller.toggle()
        self.status = "paused" if paused else "running"
        self.stream.emit("operator", action="pause" if paused else "resume")

    def step_event(self) -> None:
        ran = self.controller.step_event()
        self.status = f"stepped {ran} event(s)"

    def step_time(self, delta: float = 10.0) -> None:
        self.controller.step_time(delta)
        self.refresh()
        self.status = f"advanced {delta:.0f} virtual s"

    def change_pacing(self, factor: float) -> None:
        pacing = self.controller.pacing
        if pacing is None:
            self.status = "pacing off (unthrottled)"
            return
        self.controller.pacing = min(36000.0, max(1.0, pacing * factor))
        self.status = f"pacing {self.controller.pacing:.0f}x"

    def crash_selected(self) -> None:
        """Crash the selected server (servers only; clusters get partition)."""
        kind, name = self.selected_target
        if kind != "server":
            self.status = f"{name} is a cluster — press p to partition it"
            return
        if not self.campus.server(name).host.up:
            self.status = f"{name} is already down"
            return
        self.scheduler.inject(
            Fault("server_crash", name, start=0.0, duration=self.crash_outage))
        self.stream.emit("operator", action="crash_server", target=name,
                         outage=self.crash_outage)
        self.status = f"crashing {name} for {self.crash_outage:.0f}s"

    def partition_selected(self) -> None:
        """Partition the selected cluster segment off the backbone."""
        kind, name = self.selected_target
        if kind != "cluster":
            self.status = f"{name} is a server — press c to crash it"
            return
        if name in self.campus.network.partitioned:
            self.status = f"{name} is already partitioned"
            return
        self.scheduler.inject(
            Fault("partition", name, start=0.0,
                  duration=self.partition_outage))
        self.stream.emit("operator", action="partition_cluster", target=name,
                         duration=self.partition_outage)
        self.status = f"partitioning {name} for {self.partition_outage:.0f}s"

    def start_chaos(self) -> None:
        started = self.scheduler.start_chaos(ChaosConfig(
            start=0.0, mean_interval=300.0, mean_outage=45.0))
        if started:
            self.stream.emit("operator", action="start_chaos")
        self.status = "chaos started" if started else "chaos already running"

    # -- key dispatch ------------------------------------------------------

    def handle_key(self, key: str) -> None:
        """One keystroke; unknown keys are ignored."""
        if key == "q":
            self.quit_requested = True
        elif key == " ":
            self.toggle_pause()
        elif key == "\t":
            self.select_next()
        elif key.isdigit():
            self.select(int(key))
        elif key == "c":
            self.crash_selected()
        elif key == "p":
            self.partition_selected()
        elif key == "x":
            self.start_chaos()
        elif key == ".":
            self.step_event()
        elif key == ">":
            self.step_time(10.0)
        elif key == "+":
            self.change_pacing(2.0)
        elif key == "-":
            self.change_pacing(0.5)

    # -- rendering ---------------------------------------------------------

    def render_lines(self, width: int = 96, events_tail: int = 6) -> List[str]:
        """One full text frame, as a list of lines."""
        sim = self.sim
        window = self.aggregator.last or {}
        rates = window.get("rates", {})
        lines = [
            (f"ITC campus  t={sim.now:9.1f}s  [{self.controller.state.upper()}]"
             f"  pacing={self._pacing_label()}"
             f"  {window.get('events_per_s', 0.0):8.0f} ev/s"),
            f"  {self.banner()}",
            "",
        ]
        lines += self._server_lines(window)
        lines.append("")
        lines.append(
            f"campus   opens {rates.get('opens', 0.0):6.1f}/s"
            f"  fetch {rates.get('fetches', 0.0):5.1f}/s"
            f"  store {rates.get('stores', 0.0):5.1f}/s"
            f"  hit {format_share(window.get('hit_ratio', 0.0))}"
            f"  breaks {rates.get('callback_breaks', 0.0):5.1f}/s"
        )
        latency = window.get("latency", {})
        if latency.get("count"):
            lines.append(
                f"rpc      p50 {latency['p50'] * 1000:7.1f}ms"
                f"  p99 {latency['p99'] * 1000:7.1f}ms"
                f"  ({latency['count']} calls this window)"
            )
        lines.append("")
        lines += self._hotspot_lines()
        lines.append("")
        lines += [f"  {line}" for line in self._event_lines(events_tail)]
        lines.append("")
        lines.append(f"status: {self.status}")
        lines.append(KEY_HELP)
        return [line[:width] for line in lines]

    def _pacing_label(self) -> str:
        pacing = self.controller.pacing
        return "off" if pacing is None else f"{pacing:.0f}x"

    def _server_lines(self, window: Dict[str, Any]) -> List[str]:
        hosts = window.get("hosts", {})
        lines = []
        for index, (kind, name) in enumerate(self.targets):
            marker = ">" if index == self.selected else " "
            if kind == "server":
                host = self.campus.server(name).host
                stats = hosts.get(name, {})
                state = "UP  " if host.up else "DOWN"
                lines.append(
                    f"{marker}{index} {name:<10s} {state}"
                    f"  cpu {utilization_bar(stats.get('cpu', 0.0))}"
                    f" {format_share(stats.get('cpu', 0.0))}"
                    f"  disk {utilization_bar(stats.get('disk', 0.0))}"
                    f"  {stats.get('calls', 0.0):6.0f} calls"
                )
            else:
                cut = name in self.campus.network.partitioned
                state = "CUT " if cut else "OK  "
                lines.append(f"{marker}{index} {name:<10s} {state}  (segment)")
        return lines

    def _hotspot_lines(self) -> List[str]:
        lines = []
        for field, label in (("volumes", "hot volumes"), ("users", "hot users")):
            ranked = self.aggregator.top(field, self.top_k)
            if not ranked:
                continue
            cells = "  ".join(f"{name}:{delta:.0f}" for name, delta in ranked)
            lines.append(f"{label:<12s} {cells}")
        return lines or ["(no traffic yet)"]

    def _event_lines(self, n: int) -> List[str]:
        out = []
        for record in self.stream.tail(n):
            detail = " ".join(
                f"{key}={value}" for key, value in sorted(record.items())
                if key not in ("t", "event")
            )
            out.append(f"t={record['t']:9.1f}  {record['event']:<22s} {detail}")
        return out or ["(no events yet)"]


def run_headless(model: ConsoleModel, frames: int,
                 frame_virtual_seconds: float = 10.0,
                 print_frames: bool = False) -> int:
    """Drive the console loop without a terminal (tests, CI, pipes)."""
    for _ in range(frames):
        if model.quit_requested:
            break
        model.controller.advance(model.sim.now + frame_virtual_seconds)
        model.refresh()
        frame = model.render_lines()
        if print_frames:
            print("\n".join(frame))
            print("-" * 40)
    if not print_frames:
        print("\n".join(model.render_lines()))
    return 0


def run_console(model: ConsoleModel, horizon: Optional[float] = None) -> int:
    """The interactive curses loop (~20 frames/s, non-blocking input)."""
    import curses

    def loop(screen) -> None:
        curses.curs_set(0)
        screen.nodelay(True)
        last_wall = time.monotonic()
        while not model.quit_requested:
            wall = time.monotonic()
            elapsed, last_wall = wall - last_wall, wall
            try:
                model.controller.tick(elapsed, horizon=horizon)
            except ReproError:
                pass  # un-paced controller with no horizon: stepping only
            model.refresh()
            height, width = screen.getmaxyx()
            screen.erase()
            for row, line in enumerate(model.render_lines(width - 1)):
                if row >= height - 1:
                    break
                screen.addnstr(row, 0, line, width - 1)
            screen.refresh()
            if horizon is not None and model.sim.now >= horizon:
                break
            key = screen.getch()
            if key != -1:
                try:
                    model.handle_key(chr(key))
                except ValueError:
                    pass  # non-character key (resize, arrows): ignored
            time.sleep(0.05)

    curses.wrapper(loop)
    return 0
