"""Encryption substrate: cipher, key derivation, mutual-auth handshake (§3.4)."""

from repro.crypto.cipher import (
    SealedPayload,
    SessionCipher,
    keystream,
    mac,
    open_sealed,
    seal,
    unseal,
)
from repro.crypto.handshake import ClientHandshake, ServerHandshake, fresh_nonce
from repro.crypto.keys import KEY_BYTES, derive_session_key, derive_user_key

__all__ = [
    "KEY_BYTES",
    "ClientHandshake",
    "SealedPayload",
    "ServerHandshake",
    "SessionCipher",
    "derive_session_key",
    "derive_user_key",
    "fresh_nonce",
    "keystream",
    "mac",
    "open_sealed",
    "seal",
    "unseal",
]
