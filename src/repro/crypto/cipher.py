"""A real (toy-strength) symmetric cipher with message integrity.

The paper's security argument does not depend on cipher strength — it
depends on *where* encryption sits: every Vice-Virtue connection is
encrypted end to end with a per-session key, so an exposed campus LAN
reveals nothing.  We therefore implement a genuine keystream cipher (SHA-256
in counter mode) with an appended MAC, strong enough that tests can prove
the properties the design relies on: ciphertext differs from plaintext,
decryption with the wrong key fails loudly, and tampering is detected.

The implementation is tuned so the simulation's data path costs O(1) Python
operations per message rather than O(bytes): keystream blocks are derived
from a single pre-hashed (key, nonce) prefix and XORed against the whole
buffer as one big integer.  The wire format and every keystream byte are
identical to the original per-byte implementation, so old sealed messages
open under this code and vice versa.

Do not use this module outside the simulation; it is a protocol model, not
audited cryptography.
"""

from __future__ import annotations

import functools
import hashlib
import hmac
from typing import Optional

from repro.errors import IntegrityError

__all__ = [
    "SealedPayload",
    "SessionCipher",
    "keystream",
    "mac",
    "open_sealed",
    "seal",
    "unseal",
]

_MAC_BYTES = 16
_NONCE_BYTES = 8
_BLOCK_BYTES = 32  # SHA-256 digest size

# 8-byte big-endian counters, extended on demand; shared by every keystream.
_COUNTERS: list = [i.to_bytes(8, "big") for i in range(256)]


def _counter_bytes(nblocks: int) -> list:
    while len(_COUNTERS) < nblocks:
        _COUNTERS.append(len(_COUNTERS).to_bytes(8, "big"))
    return _COUNTERS[:nblocks] if nblocks != len(_COUNTERS) else _COUNTERS


@functools.lru_cache(maxsize=8)
def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes from (key, nonce).

    Counter-mode SHA-256: block *i* is ``SHA256(key || nonce || i)``.  The
    (key, nonce) prefix is absorbed once and each block only hashes the
    8-byte counter on a copy of that midstate.  A small LRU memo makes the
    second derivation of a message's stream — the unseal right after the
    seal, on the other end of a simulated wire — effectively free.
    """
    if length <= 0:
        return b""
    base = hashlib.sha256(key + nonce)
    copy = base.copy
    blocks = []
    append = blocks.append
    for cb in _counter_bytes(-(-length // _BLOCK_BYTES)):
        h = copy()
        h.update(cb)
        append(h.digest())
    stream = b"".join(blocks)
    return stream if len(stream) == length else stream[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length buffers in O(1) Python operations."""
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(stream, "little")
    ).to_bytes(len(data), "little")


def mac(key: bytes, data: bytes) -> bytes:
    """Message authentication code over ``data``."""
    return hmac.new(key, data, hashlib.sha256).digest()[:_MAC_BYTES]


def seal(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC: returns ``nonce || ciphertext || tag``."""
    if len(nonce) != _NONCE_BYTES:
        raise ValueError(f"nonce must be {_NONCE_BYTES} bytes")
    ciphertext = _xor(plaintext, keystream(key, nonce, len(plaintext)))
    tag = mac(key, nonce + ciphertext)
    return nonce + ciphertext + tag


def _verify(key: bytes, sealed: bytes) -> memoryview:
    """Check framing and the MAC; returns a view of the ciphertext."""
    if len(sealed) < _NONCE_BYTES + _MAC_BYTES:
        raise IntegrityError("sealed message too short")
    view = memoryview(sealed)
    tag = view[-_MAC_BYTES:]
    if not hmac.compare_digest(tag, mac(key, view[:-_MAC_BYTES])):
        raise IntegrityError("message failed integrity check (wrong key or tampering)")
    return view[_NONCE_BYTES:-_MAC_BYTES]


def unseal(key: bytes, sealed: bytes) -> bytes:
    """Verify and decrypt a :func:`seal` output; raises on tampering/bad key."""
    ciphertext = _verify(key, sealed)
    stream = keystream(key, bytes(sealed[:_NONCE_BYTES]), len(ciphertext))
    return _xor(ciphertext, stream)


class SealedPayload(bytes):
    """:func:`seal` output that remembers its in-process plaintext.

    On the wire this *is* the sealed byte string — length, framing and
    content are exactly what :func:`seal` produced, and a peer holding only
    the bytes can :func:`unseal` it.  But when the same Python object
    reaches the receiving end of a simulated connection, :func:`open_sealed`
    can verify the MAC (one C-speed pass) and hand back the remembered
    plaintext without re-deriving the keystream — the whole-file fast path:
    payload bytes are sealed once, not re-materialized per hop.
    """

    plain: Optional[bytes] = None


def open_sealed(key: bytes, sealed: bytes) -> bytes:
    """Verify and open ``sealed``, skipping decryption when it carries its
    plaintext (see :class:`SealedPayload`); otherwise a plain :func:`unseal`.

    Tampering anywhere in the wire bytes — or a wrong key — still raises
    :class:`~repro.errors.IntegrityError`: the MAC is always checked against
    the actual bytes received.
    """
    plain = getattr(sealed, "plain", None)
    if plain is None:
        return unseal(key, sealed)
    _verify(key, sealed)
    return plain


class SessionCipher:
    """Per-connection encryption state with monotonically increasing nonces.

    Each direction of a connection holds its own :class:`SessionCipher`
    seeded with the session key from the authentication handshake; nonce
    reuse (which would let an eavesdropper XOR two ciphertexts) is
    structurally impossible because the counter only moves forward.
    """

    def __init__(self, session_key: bytes, direction: int = 0):
        self.session_key = session_key
        self._counter = 0
        self._direction = direction & 0xFF
        self.bytes_encrypted = 0
        self.bytes_decrypted = 0

    def _next_nonce(self) -> bytes:
        nonce = self._direction.to_bytes(1, "big") + self._counter.to_bytes(7, "big")
        self._counter += 1
        return nonce

    def encrypt(self, plaintext: bytes) -> bytes:
        """Seal ``plaintext`` under the next nonce."""
        self.bytes_encrypted += len(plaintext)
        return seal(self.session_key, self._next_nonce(), plaintext)

    def decrypt(self, sealed: bytes) -> bytes:
        """Verify and open a message sealed by the peer."""
        plaintext = unseal(self.session_key, sealed)
        self.bytes_decrypted += len(plaintext)
        return plaintext

    # -- opt-in whole-file fast path --------------------------------------

    def seal_payload(self, plaintext: bytes) -> SealedPayload:
        """Like :meth:`encrypt`, but the result remembers its plaintext so
        the in-process receiver can open it without a second keystream pass."""
        self.bytes_encrypted += len(plaintext)
        sealed = SealedPayload(seal(self.session_key, self._next_nonce(), plaintext))
        sealed.plain = plaintext
        return sealed

    def open_payload(self, sealed: bytes) -> bytes:
        """Verify and open a payload; MAC-only when the fast path applies."""
        plaintext = open_sealed(self.session_key, sealed)
        self.bytes_decrypted += len(plaintext)
        return plaintext
