"""A real (toy-strength) symmetric cipher with message integrity.

The paper's security argument does not depend on cipher strength — it
depends on *where* encryption sits: every Vice-Virtue connection is
encrypted end to end with a per-session key, so an exposed campus LAN
reveals nothing.  We therefore implement a genuine keystream cipher (SHA-256
in counter mode) with an appended MAC, strong enough that tests can prove
the properties the design relies on: ciphertext differs from plaintext,
decryption with the wrong key fails loudly, and tampering is detected.

Do not use this module outside the simulation; it is a protocol model, not
audited cryptography.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import IntegrityError

__all__ = ["SessionCipher", "keystream", "mac", "seal", "unseal"]

_MAC_BYTES = 16
_NONCE_BYTES = 8


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes from (key, nonce)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def mac(key: bytes, data: bytes) -> bytes:
    """Message authentication code over ``data``."""
    return hmac.new(key, data, hashlib.sha256).digest()[:_MAC_BYTES]


def seal(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC: returns ``nonce || ciphertext || tag``."""
    if len(nonce) != _NONCE_BYTES:
        raise ValueError(f"nonce must be {_NONCE_BYTES} bytes")
    stream = keystream(key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = mac(key, nonce + ciphertext)
    return nonce + ciphertext + tag


def unseal(key: bytes, sealed: bytes) -> bytes:
    """Verify and decrypt a :func:`seal` output; raises on tampering/bad key."""
    if len(sealed) < _NONCE_BYTES + _MAC_BYTES:
        raise IntegrityError("sealed message too short")
    nonce = sealed[:_NONCE_BYTES]
    tag = sealed[-_MAC_BYTES:]
    ciphertext = sealed[_NONCE_BYTES:-_MAC_BYTES]
    if not hmac.compare_digest(tag, mac(key, nonce + ciphertext)):
        raise IntegrityError("message failed integrity check (wrong key or tampering)")
    stream = keystream(key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))


class SessionCipher:
    """Per-connection encryption state with monotonically increasing nonces.

    Each direction of a connection holds its own :class:`SessionCipher`
    seeded with the session key from the authentication handshake; nonce
    reuse (which would let an eavesdropper XOR two ciphertexts) is
    structurally impossible because the counter only moves forward.
    """

    def __init__(self, session_key: bytes, direction: int = 0):
        self.session_key = session_key
        self._counter = 0
        self._direction = direction & 0xFF
        self.bytes_encrypted = 0
        self.bytes_decrypted = 0

    def encrypt(self, plaintext: bytes) -> bytes:
        """Seal ``plaintext`` under the next nonce."""
        nonce = self._direction.to_bytes(1, "big") + self._counter.to_bytes(7, "big")
        self._counter += 1
        self.bytes_encrypted += len(plaintext)
        return seal(self.session_key, nonce, plaintext)

    def decrypt(self, sealed: bytes) -> bytes:
        """Verify and open a message sealed by the peer."""
        plaintext = unseal(self.session_key, sealed)
        self.bytes_decrypted += len(plaintext)
        return plaintext
