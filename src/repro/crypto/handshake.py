"""Mutual authentication handshake between mutually suspicious parties.

Paper §3.4: "At connection establishment time, Vice and Virtue are viewed
as mutually suspicious parties sharing a common encryption key.  This key is
used in an authentication handshake, at the end of which each party is
assured of the identity of the other."

The protocol is a classic three-message challenge/response under the shared
long-term key K (derived from the user's password):

1. client → server : ``username``, ``seal(K, client_nonce)``
2. server → client : ``seal(K, client_nonce || server_nonce)``
   (proves the server knows K *and* echoes the fresh client challenge)
3. client → server : ``seal(K, server_nonce)``
   (proves the client knows K against the fresh server challenge)

Both sides then derive ``session_key = KDF(K, client_nonce, server_nonce)``.
The handshake objects are pure protocol state machines — transport and
virtual-time costs live in :mod:`repro.rpc` — so they can be unit-tested
byte-for-byte, including wrong-key and replay attacks.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Optional, Tuple

from repro.crypto import cipher
from repro.crypto.keys import derive_session_key
from repro.errors import AuthenticationFailure, IntegrityError, UnknownPrincipal

__all__ = ["ClientHandshake", "ServerHandshake", "fresh_nonce"]

_NONCE_BYTES = 16


def fresh_nonce(seed: bytes) -> bytes:
    """A deterministic-but-unique nonce derived from caller-supplied entropy.

    The simulation supplies seeds that include the virtual time and a
    per-connection counter, so nonces never repeat within a run while the
    whole run stays reproducible.
    """
    return hashlib.sha256(b"itc-nonce|" + seed).digest()[:_NONCE_BYTES]


class ClientHandshake:
    """Virtue's side of the handshake, acting for one authenticated user."""

    def __init__(self, username: str, user_key: bytes, entropy: bytes):
        self.username = username
        self._key = user_key
        self._client_nonce = fresh_nonce(entropy + b"|client")
        self._server_nonce: Optional[bytes] = None
        self.session_key: Optional[bytes] = None

    def hello(self) -> Tuple[str, bytes]:
        """Message 1: identify the user and issue the client challenge."""
        sealed = cipher.seal(self._key, self._client_nonce[:8], self._client_nonce)
        return self.username, sealed

    def verify_server(self, response: bytes) -> bytes:
        """Check message 2 and produce message 3.

        Raises :class:`AuthenticationFailure` if the server could not have
        known the shared key or replayed a stale exchange.
        """
        try:
            plaintext = cipher.unseal(self._key, response)
        except IntegrityError as exc:
            raise AuthenticationFailure(f"server response unreadable: {exc}") from exc
        if len(plaintext) != 2 * _NONCE_BYTES:
            raise AuthenticationFailure("malformed server response")
        echoed, server_nonce = plaintext[:_NONCE_BYTES], plaintext[_NONCE_BYTES:]
        if echoed != self._client_nonce:
            raise AuthenticationFailure("server failed the freshness challenge (replay?)")
        self._server_nonce = server_nonce
        self.session_key = derive_session_key(self._key, self._client_nonce, server_nonce)
        return cipher.seal(self._key, server_nonce[:8], server_nonce)


class ServerHandshake:
    """Vice's side; looks up the user's key in the authentication database."""

    def __init__(self, key_lookup: Callable[[str], bytes], entropy: bytes):
        self._key_lookup = key_lookup
        self._entropy = entropy
        self._key: Optional[bytes] = None
        self._client_nonce: Optional[bytes] = None
        self._server_nonce: Optional[bytes] = None
        self.username: Optional[str] = None
        self.session_key: Optional[bytes] = None

    def respond(self, username: str, hello: bytes) -> bytes:
        """Process message 1, emit message 2.

        An unknown user or an undecipherable challenge both fail — and fail
        identically from the network's point of view, so an attacker cannot
        probe for valid usernames by observing error differences.
        """
        try:
            key = self._key_lookup(username)
        except (KeyError, UnknownPrincipal) as exc:
            raise AuthenticationFailure("authentication failed") from exc
        try:
            client_nonce = cipher.unseal(key, hello)
        except IntegrityError as exc:
            raise AuthenticationFailure("authentication failed") from exc
        if len(client_nonce) != _NONCE_BYTES:
            raise AuthenticationFailure("authentication failed")
        self._key = key
        self.username = username
        self._client_nonce = client_nonce
        self._server_nonce = fresh_nonce(self._entropy + b"|server|" + client_nonce)
        payload = client_nonce + self._server_nonce
        return cipher.seal(key, self._server_nonce[:8], payload)

    def verify_client(self, confirmation: bytes) -> None:
        """Check message 3; on success the session key becomes available."""
        if self._key is None or self._server_nonce is None:
            raise AuthenticationFailure("handshake out of order")
        try:
            echoed = cipher.unseal(self._key, confirmation)
        except IntegrityError as exc:
            raise AuthenticationFailure("client failed the freshness challenge") from exc
        if echoed != self._server_nonce:
            raise AuthenticationFailure("client failed the freshness challenge")
        self.session_key = derive_session_key(
            self._key, self._client_nonce, self._server_nonce
        )
