"""Key derivation — "the password itself is not transmitted".

Each user's long-term authentication key is derived on the workstation from
the password the user types (§3.4).  Vice stores the same derived key in its
(physically secure) authentication database; the password never crosses the
network in any form, encrypted or not.
"""

from __future__ import annotations

import hashlib

__all__ = ["KEY_BYTES", "derive_user_key", "derive_session_key"]

KEY_BYTES = 32


def derive_user_key(username: str, password: str) -> bytes:
    """Derive a user's long-term key from their password.

    The username salts the derivation so two users with the same password
    hold different keys.
    """
    material = b"itc-user-key|" + username.encode() + b"|" + password.encode()
    return hashlib.sha256(material).digest()[:KEY_BYTES]


def derive_session_key(shared_key: bytes, client_nonce: bytes, server_nonce: bytes) -> bytes:
    """Derive a per-connection session key from the handshake nonces.

    "The final phase of the handshake generates a session key which is used
    for encrypting all further communication on the connection" — binding
    both nonces means neither side alone controls the key, and replaying an
    old handshake yields a different (useless) session key.
    """
    material = b"itc-session-key|" + shared_key + b"|" + client_nonce + b"|" + server_nonce
    return hashlib.sha256(material).digest()[:KEY_BYTES]
