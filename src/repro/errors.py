"""Exception hierarchy for the ITC DFS reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
mistakes.  The subtree mirrors the system decomposition: simulation errors,
file-system errors (deliberately close to Unix errno semantics), Vice protocol
errors, and security errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """A misuse of the discrete-event kernel (double trigger, bad yield...)."""


class Interrupt(ReproError):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


# ---------------------------------------------------------------------------
# File system (Unix substrate and Virtue syscall surface)
# ---------------------------------------------------------------------------


class FileSystemError(ReproError):
    """Base class for file-system errors; carries an errno-like name."""

    errno_name = "EIO"


class FileNotFound(FileSystemError):
    """ENOENT: a path component does not exist."""

    errno_name = "ENOENT"


class FileExists(FileSystemError):
    """EEXIST: target of an exclusive create already exists."""

    errno_name = "EEXIST"


class NotADirectory(FileSystemError):
    """ENOTDIR: a non-final path component is not a directory."""

    errno_name = "ENOTDIR"


class IsADirectory(FileSystemError):
    """EISDIR: a data operation was attempted on a directory."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(FileSystemError):
    """ENOTEMPTY: attempt to remove a directory that still has entries."""

    errno_name = "ENOTEMPTY"


class CrossDeviceLink(FileSystemError):
    """EXDEV: rename across volume boundaries is not permitted."""

    errno_name = "EXDEV"


class InvalidArgument(FileSystemError):
    """EINVAL: malformed path or argument."""

    errno_name = "EINVAL"


class TooManySymlinks(FileSystemError):
    """ELOOP: symbolic-link expansion exceeded the traversal limit."""

    errno_name = "ELOOP"


class BadFileDescriptor(FileSystemError):
    """EBADF: operation on a closed or wrong-mode descriptor."""

    errno_name = "EBADF"


class ReadOnlyFileSystem(FileSystemError):
    """EROFS: mutation attempted on a read-only volume or replica."""

    errno_name = "EROFS"


class QuotaExceeded(FileSystemError):
    """EDQUOT: a store would push a volume past its quota."""

    errno_name = "EDQUOT"


class NoSpace(FileSystemError):
    """ENOSPC: the server partition or cache disk is full."""

    errno_name = "ENOSPC"


class DiskError(FileSystemError):
    """EIO: a disk access failed (media error, injected fault)."""

    errno_name = "EIO"


# ---------------------------------------------------------------------------
# Vice protocol
# ---------------------------------------------------------------------------


class ViceError(ReproError):
    """Base class for Vice protocol-level failures."""


class PermissionDenied(ViceError):
    """The caller's CPS does not grant the required rights."""

    errno_name = "EACCES"


class NotCustodian(ViceError):
    """The contacted server is not the custodian; carries a referral.

    Mirrors the paper: "If a server receives a request for a file for which
    it is not the custodian, it will respond with the identity of the
    appropriate custodian."
    """

    def __init__(self, custodian_hint):
        super().__init__(custodian_hint)
        self.custodian_hint = custodian_hint


class VolumeOffline(ViceError):
    """The volume holding the file is offline (e.g. mid-move or salvage)."""


class VolumeBusy(ViceError):
    """The volume is briefly locked by an administrative operation."""


class StaleVersion(ViceError):
    """A store was attempted from a cached copy older than the server's."""


class LockConflict(ViceError):
    """An advisory lock request conflicts with an existing holder."""


class ServerUnavailable(ViceError):
    """The server is down or unreachable; Virtue may retry elsewhere."""


class LeaseExpired(ViceError):
    """A replicated volume's primary lost its write lease.

    Raised by a primary whose heartbeat lease from the replication
    controller has lapsed (it may have been partitioned away and a
    surviving replica promoted in its place).  Venus treats it like
    ``ServerUnavailable``: refresh the location hint and retry at the
    current primary.
    """


class ReplicationError(ViceError):
    """A replicated store could not reach its write quorum."""


# ---------------------------------------------------------------------------
# Security
# ---------------------------------------------------------------------------


class SecurityError(ReproError):
    """Base class for authentication and encryption failures."""


class AuthenticationFailure(SecurityError):
    """The mutual-authentication handshake failed (wrong key, replay...)."""


class NotAuthenticated(SecurityError):
    """An operation requiring an authenticated connection had none."""


class IntegrityError(SecurityError):
    """Decryption or message-integrity verification failed."""


class UnknownPrincipal(SecurityError):
    """A user or group name is absent from the protection database."""
