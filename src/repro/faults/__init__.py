"""Deterministic fault injection, chaos scheduling and recovery driving.

The paper devotes §4.4 to operability — crashed custodians salvage and
return, workstations ride out Vice outages on their caches, the network
"is not assumed to be reliable".  This package makes those behaviours
testable and measurable instead of anecdotal:

* :mod:`repro.faults.plan` — declarative, JSON-round-trippable
  :class:`FaultPlan` (timed fault windows) and :class:`ChaosConfig`
  (seeded random arrivals), plus the named presets shared by the
  ``python -m repro chaos`` CLI and the availability bench.
* :mod:`repro.faults.scheduler` — :class:`FaultScheduler` executes a plan
  as kernel processes: apply at ``start``, revert at ``start + duration``,
  with server recovery running the real salvage pass.
* :mod:`repro.faults.injectors` — the per-layer fault hooks (packet
  loss/corruption/duplication, disk errors, CPU degradation), re-exported
  from the modules that apply them.

Install via configuration (``SystemConfig(fault_plan=...)``) or at runtime
(``campus.install_faults(plan)``); either way the campus gains an
:class:`~repro.obs.availability.AvailabilityTracker` that turns operation
outcomes into availability, MTTR and an outage timeline.  With no plan
installed every hook stays ``None`` and the simulation is byte-identical
to one built before this package existed.
"""

from repro.faults.injectors import DiskFaults, LinkFaults, corrupted_datagram
from repro.faults.plan import (
    PRESETS,
    ChaosConfig,
    Fault,
    FaultPlan,
    chaos_plan,
    clean_plan,
    flaky_campus_plan,
    lossy_backbone_plan,
    partition_plan,
    server_crash_plan,
)
from repro.faults.scheduler import FaultScheduler

__all__ = [
    "ChaosConfig",
    "DiskFaults",
    "Fault",
    "FaultPlan",
    "FaultScheduler",
    "LinkFaults",
    "PRESETS",
    "chaos_plan",
    "clean_plan",
    "corrupted_datagram",
    "flaky_campus_plan",
    "lossy_backbone_plan",
    "partition_plan",
    "server_crash_plan",
]
