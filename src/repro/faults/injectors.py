"""The low-level injectors, gathered in one import surface.

The injectors themselves live next to the layers they break — that is the
point: fault injection exercises the *real* delivery, disk and CPU paths,
not mocks.  This module just re-exports them so tests and tools can write
``from repro.faults.injectors import LinkFaults, DiskFaults``:

* :class:`~repro.net.link.LinkFaults` — seeded per-segment packet loss,
  corruption and duplication, applied by :meth:`Network.send`; corrupted
  envelopes must be caught by the RPC layer's MAC check.
* :class:`~repro.storage.disk.DiskFaults` — seeded media errors
  (:class:`~repro.errors.DiskError` after the arm moves) and a service
  time multiplier.
* :func:`~repro.net.packet.corrupted_datagram` — builds the damaged copy
  a corrupted transfer delivers (the original is never mutated).
* Host-level faults need no injector class: :meth:`Host.crash`,
  :meth:`Host.recover`, :meth:`Host.degrade` and
  :meth:`Host.restore_speed` are first-class host operations.
"""

from __future__ import annotations

from repro.net.link import LinkFaults
from repro.net.packet import corrupted_datagram
from repro.storage.disk import DiskFaults

__all__ = ["DiskFaults", "LinkFaults", "corrupted_datagram"]
