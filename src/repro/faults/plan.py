"""Declarative fault plans: what breaks, where, when, and for how long.

A :class:`FaultPlan` is data, not behaviour: a tuple of timed
:class:`Fault` windows plus an optional seeded :class:`ChaosConfig` for
random fault arrivals.  The :class:`~repro.faults.scheduler.FaultScheduler`
turns a plan into kernel processes; everything here is plain validated
configuration that round-trips through JSON (``to_dict``/``from_dict``),
so plans can live in files, CLI flags and benchmark tables.

Fault kinds and their targets:

==============  =======================  =====================================
kind            target                   effect while the window is open
==============  =======================  =====================================
``server_crash``  server host name       host down; RPCs time out; a salvage
                                         pass runs on recovery (§4.4)
``ws_crash``      workstation name       workstation down; descriptors and
                                         callback promises die
``partition``     segment name           segment cut off from the campus
                                         (bridge failure)
``link``          segment name           seeded packet loss / corruption /
                                         duplication on the segment
``disk``          host name              seeded media errors and a service-
                                         time multiplier on the host's disk
``slow_cpu``      host name              CPU degraded to ``factor`` of its
                                         rated speed
==============  =======================  =====================================

Determinism: a plan carries its own ``seed``.  Every random stream the
scheduler uses (per-segment link fates, per-disk error draws, chaos
arrivals) is forked from that seed and a stable per-target salt, so the
same ``(SystemConfig.seed, FaultPlan, workload)`` triple replays the same
campus byte-for-byte — regardless of how many other processes are running.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "ChaosConfig",
    "Fault",
    "FaultPlan",
    "PRESETS",
    "chaos_plan",
    "clean_plan",
    "flaky_campus_plan",
    "lossy_backbone_plan",
    "partition_plan",
    "server_crash_plan",
]

FAULT_KINDS = ("server_crash", "ws_crash", "partition", "link", "disk", "slow_cpu")


@dataclass(frozen=True)
class Fault:
    """One timed fault window on one target."""

    kind: str
    target: str
    start: float
    duration: float
    # Link-fault rates (kind == "link").
    loss: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    # Disk-fault parameters (kind == "disk").
    error_rate: float = 0.0
    latency_factor: float = 1.0
    # CPU degradation (kind == "slow_cpu").
    factor: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not self.target:
            raise ValueError("fault target must be a node or segment name")
        if self.start < 0:
            raise ValueError(f"fault start {self.start!r} is negative")
        if self.duration <= 0:
            raise ValueError(f"fault duration {self.duration!r} must be positive")
        for name in ("loss", "corrupt", "duplicate", "error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate {rate!r} outside [0, 1]")
        if self.latency_factor <= 0:
            raise ValueError("latency_factor must be positive")
        if self.factor <= 0:
            raise ValueError("slow_cpu factor must be positive")

    @property
    def end(self) -> float:
        """Virtual time at which the fault is reverted."""
        return self.start + self.duration

    def overlaps(self, other: "Fault") -> bool:
        """True when two windows on the same (kind, target) intersect."""
        if (self.kind, self.target) != (other.kind, other.target):
            return False
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded random fault arrivals ("chaos mode").

    Faults arrive one at a time (serial, so revert order is trivially
    well-defined): exponential inter-arrival times with ``mean_interval``,
    each fault lasting an exponential ``mean_outage`` (floored at one
    second), targeting a uniformly chosen eligible node or segment.  All
    draws come from the plan's seed, so a chaos run replays exactly.
    """

    start: float = 0.0
    end: Optional[float] = None  # None: for as long as the campus runs
    mean_interval: float = 600.0
    mean_outage: float = 60.0
    kinds: Tuple[str, ...] = ("server_crash", "link", "disk", "slow_cpu")
    # Parameters applied to randomly drawn faults of each kind.
    loss: float = 0.05
    corrupt: float = 0.01
    duplicate: float = 0.01
    error_rate: float = 0.05
    latency_factor: float = 4.0
    factor: float = 0.25

    def __post_init__(self):
        if self.mean_interval <= 0 or self.mean_outage <= 0:
            raise ValueError("chaos intervals must be positive")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown chaos fault kind {kind!r}")
        if not self.kinds:
            raise ValueError("chaos needs at least one fault kind")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault windows plus optional chaos arrivals."""

    faults: Tuple[Fault, ...] = ()
    chaos: Optional[ChaosConfig] = None
    seed: int = 0
    name: str = "plan"

    def __post_init__(self):
        # Coerce lists (e.g. from from_dict) into the canonical tuple.
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        ordered = sorted(self.faults, key=lambda f: (f.start, f.kind, f.target))
        for first, second in zip(ordered, ordered[1:]):
            if first.overlaps(second):
                raise ValueError(
                    f"overlapping {first.kind!r} windows on {first.target!r}: "
                    f"[{first.start}, {first.end}) and "
                    f"[{second.start}, {second.end})"
                )

    def with_(self, **changes) -> "FaultPlan":
        """A copy with selected fields replaced (re-validates)."""
        return replace(self, **changes)

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (clean baseline)."""
        return not self.faults and self.chaos is None

    # -- JSON round trip ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [asdict(fault) for fault in self.faults],
            "chaos": None if self.chaos is None else asdict(self.chaos),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (validates)."""
        chaos = record.get("chaos")
        if chaos is not None:
            chaos = dict(chaos)
            if "kinds" in chaos:
                chaos["kinds"] = tuple(chaos["kinds"])
            chaos = ChaosConfig(**chaos)
        return cls(
            faults=tuple(Fault(**f) for f in record.get("faults", ())),
            chaos=chaos,
            seed=record.get("seed", 0),
            name=record.get("name", "plan"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chaos = " chaos" if self.chaos else ""
        return f"<FaultPlan {self.name!r} faults={len(self.faults)}{chaos}>"


# -- presets (shared by the CLI, the bench and the examples) ----------------


def clean_plan(seed: int = 0) -> FaultPlan:
    """No faults at all — the availability-accounting baseline."""
    return FaultPlan(name="clean", seed=seed)


def server_crash_plan(
    server: str = "server0",
    at: float = 600.0,
    outage: float = 120.0,
    seed: int = 0,
) -> FaultPlan:
    """One cluster server crashes mid-run and salvages back."""
    return FaultPlan(
        name="server-crash",
        seed=seed,
        faults=(Fault("server_crash", server, start=at, duration=outage),),
    )


def lossy_backbone_plan(
    loss: float = 0.03,
    corrupt: float = 0.01,
    duplicate: float = 0.01,
    start: float = 300.0,
    duration: float = 1800.0,
    seed: int = 0,
) -> FaultPlan:
    """The backbone drops, damages and duplicates packets for a while."""
    return FaultPlan(
        name="lossy-backbone",
        seed=seed,
        faults=(
            Fault("link", "backbone", start=start, duration=duration,
                  loss=loss, corrupt=corrupt, duplicate=duplicate),
        ),
    )


def partition_plan(
    segment: str = "cluster0",
    at: float = 600.0,
    outage: float = 120.0,
    seed: int = 0,
) -> FaultPlan:
    """One cluster segment is cut off from the backbone (bridge failure).

    Every host on the segment keeps running but cannot be reached from the
    rest of the campus; on a replicated campus the partitioned server's
    write lease expires and its volumes fail over to replicas outside.
    """
    return FaultPlan(
        name="partition",
        seed=seed,
        faults=(Fault("partition", segment, start=at, duration=outage),),
    )


def flaky_campus_plan(seed: int = 0) -> FaultPlan:
    """A bad day: lossy backbone, a server crash, a sick disk, a slow CPU."""
    return FaultPlan(
        name="flaky-campus",
        seed=seed,
        faults=(
            Fault("link", "backbone", start=200.0, duration=1200.0,
                  loss=0.02, corrupt=0.01, duplicate=0.01),
            Fault("server_crash", "server0", start=600.0, duration=90.0),
            Fault("disk", "server1", start=400.0, duration=600.0,
                  error_rate=0.02, latency_factor=3.0),
            Fault("slow_cpu", "server1", start=1100.0, duration=300.0,
                  factor=0.3),
        ),
    )


def chaos_plan(
    seed: int = 0,
    mean_interval: float = 300.0,
    mean_outage: float = 45.0,
    end: Optional[float] = None,
) -> FaultPlan:
    """Seeded random fault arrivals across the whole campus."""
    return FaultPlan(
        name="chaos",
        seed=seed,
        chaos=ChaosConfig(mean_interval=mean_interval,
                          mean_outage=mean_outage, end=end),
    )


# Plan factories by name, each accepting ``seed=``: the CLI's ``--plan``
# choices and the availability bench's scenario table.
PRESETS = {
    "clean": clean_plan,
    "server-crash": server_crash_plan,
    "lossy-backbone": lossy_backbone_plan,
    "partition": partition_plan,
    "flaky-campus": flaky_campus_plan,
    "chaos": chaos_plan,
}
