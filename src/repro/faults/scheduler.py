"""The fault scheduler: a plan's windows executed as kernel events.

:class:`FaultScheduler` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into simulation processes.  Each
timed fault becomes one window process (sleep until ``start``, apply,
sleep ``duration``, revert); chaos mode becomes one arrival loop drawing
seeded random faults one at a time.  All randomness — per-segment link
fates, per-disk error draws, chaos arrivals — forks off the plan's seed
with stable per-target salts, so a given ``(config, plan, workload)``
triple replays byte-identically no matter what else the campus is doing.

Reverting is as important as injecting: a crashed server runs its §4.4
salvage pass before counting as recovered, a degraded CPU returns to its
rated speed, an injected link or disk fault is uninstalled (restoring the
zero-cost-when-off fast path).  Every apply/revert is reported to the
campus :class:`~repro.obs.availability.AvailabilityTracker` so the outage
timeline and MTTR numbers line up with what was actually injected.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Generator, Optional

from repro.errors import SimulationError
from repro.faults.plan import ChaosConfig, Fault, FaultPlan
from repro.net.link import LinkFaults
from repro.sim.rand import WorkloadRandom
from repro.storage.disk import DiskFaults

__all__ = ["FaultScheduler"]


def _salt(label: str) -> int:
    """A stable integer salt for per-target random streams."""
    return zlib.crc32(label.encode())


class FaultScheduler:
    """Executes a :class:`FaultPlan` against a live campus."""

    def __init__(self, campus, plan: FaultPlan):
        self.campus = campus
        self.sim = campus.sim
        self.plan = plan
        self._base_rng = WorkloadRandom(plan.seed)
        # Injection counters shared with every installed injector.
        self.stats: Dict[str, int] = {
            "link_lost": 0, "link_corrupted": 0, "link_duplicated": 0,
            "disk_errors": 0,
        }
        self.installed = False
        self.chaos_running = False
        self.active: Dict[tuple, Fault] = {}  # (kind, target) -> live fault
        self.sim.metrics.counter("faults.injections", lambda: dict(self.stats))
        self.sim.metrics.gauge("faults.active", lambda: len(self.active))

    # -- installation ------------------------------------------------------

    def install(self) -> None:
        """Spawn one window process per fault plus the chaos loop, if any."""
        if self.installed:
            raise SimulationError("fault plan already installed")
        self.installed = True
        for index, fault in enumerate(self.plan.faults):
            self.sim.process(
                self._window(fault),
                name=f"fault:{fault.kind}:{fault.target}:{index}",
            )
        if self.plan.chaos is not None:
            self.chaos_running = True
            self.sim.process(self._chaos_loop(self.plan.chaos), name="fault:chaos")

    # -- live injection (the ops console) ----------------------------------

    def inject(self, fault: Fault) -> None:
        """Enqueue one ad-hoc fault window into the running simulation.

        ``fault.start`` is relative to *now* (0 = apply at the next
        instant), exactly as plan windows are relative to t=0.  The window
        runs through the same apply/revert path as planned faults, so the
        availability timeline and the ops-event stream record it
        identically.
        """
        self.sim.process(
            self._window(fault),
            name=f"fault:live:{fault.kind}:{fault.target}",
        )

    def start_chaos(self, chaos: ChaosConfig) -> bool:
        """Start a chaos arrival loop mid-run; False if one is already on.

        ``chaos.start``/``chaos.end`` are still absolute virtual times, so
        a console-started loop usually passes ``start=0`` (begin now) and
        ``end=None`` (until the campus stops).
        """
        if self.chaos_running:
            return False
        self.chaos_running = True
        self.sim.process(self._chaos_loop(chaos), name="fault:chaos-live")
        return True

    def _window(self, fault: Fault) -> Generator:
        yield self.sim.timeout(fault.start)
        self._apply(fault)
        yield self.sim.timeout(fault.duration)
        yield from self._revert(fault)

    # -- chaos mode --------------------------------------------------------

    def _chaos_loop(self, chaos: ChaosConfig) -> Generator:
        """Seeded random fault arrivals, strictly one live fault at a time."""
        rng = self._base_rng.fork(_salt("chaos-arrivals"))
        if chaos.start > 0:
            yield self.sim.timeout(chaos.start)
        while chaos.end is None or self.sim.now < chaos.end:
            yield self.sim.timeout(rng.exponential(chaos.mean_interval))
            if chaos.end is not None and self.sim.now >= chaos.end:
                break
            fault = self._draw_fault(rng, chaos)
            if fault is None or not self._apply(fault):
                continue
            yield self.sim.timeout(fault.duration)
            yield from self._revert(fault)

    def _draw_fault(self, rng: WorkloadRandom,
                    chaos: ChaosConfig) -> Optional[Fault]:
        kind = rng.choice(chaos.kinds)
        duration = max(1.0, rng.exponential(chaos.mean_outage))
        campus = self.campus
        if kind == "server_crash":
            target = rng.choice([s.host.name for s in campus.servers])
            return Fault(kind, target, start=0.0, duration=duration)
        if kind == "ws_crash":
            target = rng.choice([w.name for w in campus.workstations])
            return Fault(kind, target, start=0.0, duration=duration)
        if kind == "partition":
            target = rng.choice(sorted(campus.network.segments))
            return Fault(kind, target, start=0.0, duration=duration)
        if kind == "link":
            target = rng.choice(sorted(campus.network.segments))
            return Fault(kind, target, start=0.0, duration=duration,
                         loss=chaos.loss, corrupt=chaos.corrupt,
                         duplicate=chaos.duplicate)
        if kind == "disk":
            target = rng.choice([s.host.name for s in campus.servers])
            return Fault(kind, target, start=0.0, duration=duration,
                         error_rate=chaos.error_rate,
                         latency_factor=chaos.latency_factor)
        if kind == "slow_cpu":
            target = rng.choice([s.host.name for s in campus.servers])
            return Fault(kind, target, start=0.0, duration=duration,
                         factor=chaos.factor)
        return None

    # -- apply / revert ----------------------------------------------------

    def _host_for(self, target: str):
        """The Host behind a target name (server or workstation)."""
        try:
            return self.campus.server(target).host
        except KeyError:
            return self.campus.workstation(target).host

    def _apply(self, fault: Fault) -> bool:
        """Inject one fault; returns False when the target is already
        faulted the same way (chaos collisions are skipped, not stacked)."""
        key = (fault.kind, fault.target)
        if key in self.active:
            return False
        campus, kind, target = self.campus, fault.kind, fault.target
        detail: Dict[str, Any] = {}
        if kind == "server_crash":
            host = campus.server(target).host
            if not host.up:
                return False
            host.crash()
        elif kind == "ws_crash":
            workstation = campus.workstation(target)
            if not workstation.host.up:
                return False
            workstation.crash()
        elif kind == "partition":
            if target in campus.network.partitioned:
                return False
            campus.network.partition(target)
        elif kind == "link":
            segment = campus.network.segments[target]
            if segment.faults is not None:
                return False
            campus.network.install_link_faults(target, LinkFaults(
                self._base_rng.fork(_salt(f"link:{target}")),
                loss=fault.loss, corrupt=fault.corrupt,
                duplicate=fault.duplicate, stats=self.stats,
            ))
            detail = {"loss": fault.loss, "corrupt": fault.corrupt,
                      "duplicate": fault.duplicate}
        elif kind == "disk":
            disk = self._host_for(target).disk
            if disk.faults is not None:
                return False
            disk.faults = DiskFaults(
                self._base_rng.fork(_salt(f"disk:{target}")),
                error_rate=fault.error_rate,
                latency_factor=fault.latency_factor, stats=self.stats,
            )
            detail = {"error_rate": fault.error_rate,
                      "latency_factor": fault.latency_factor}
        elif kind == "slow_cpu":
            host = self._host_for(target)
            if host.cpu_speed != host.rated_cpu_speed:
                return False
            host.degrade(fault.factor)
            detail = {"factor": fault.factor}
        else:  # pragma: no cover - Fault validation forbids this
            raise SimulationError(f"unknown fault kind {kind!r}")
        self.active[key] = fault
        tracker = self.campus.availability
        if tracker is not None:
            tracker.record_fault(kind, target, **detail)
        return True

    def _revert(self, fault: Fault) -> Generator:
        """Undo one fault; a generator because server recovery salvages."""
        key = (fault.kind, fault.target)
        self.active.pop(key, None)
        campus, kind, target = self.campus, fault.kind, fault.target
        tracker = campus.availability
        if kind == "server_crash":
            server = campus.server(target)
            server.host.recover()
            # §4.4: a recovering custodian salvages every volume before it
            # counts as back; recovery time includes the salvage pass.
            reports = yield from server.salvage_all()
            if tracker is not None:
                tracker.record_salvage(target, len(reports))
        elif kind == "ws_crash":
            campus.workstation(target).recover()
        elif kind == "partition":
            campus.network.heal(target)
        elif kind == "link":
            campus.network.install_link_faults(target, None)
        elif kind == "disk":
            self._host_for(target).disk.faults = None
        elif kind == "slow_cpu":
            self._host_for(target).restore_speed()
        if tracker is not None:
            tracker.record_recovery(kind, target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultScheduler plan={self.plan.name!r} "
                f"active={len(self.active)}>")
