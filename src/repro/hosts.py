"""Machine model: a host bundles CPU, disk and network attachment.

Every node in the system — Virtue workstation, Vice cluster server, bridge
management processor — is a :class:`Host`.  Costs throughout the library are
expressed in *seconds on a reference 1-unit machine*; a host with
``cpu_speed`` 2.0 completes the same work in half the virtual time.  This is
how "the server CPU is the performance bottleneck" (§5.2) becomes a
measurable outcome rather than an assumption: all protocol, crypto and
file-handling work is charged to the host's CPU resource, whose utilization
integral the benches read.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.net.topology import Network, NetworkInterface
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.storage.disk import Disk

__all__ = ["Host"]


class Host:
    """One machine: named, attached to a segment, with CPU and disk."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        segment: str,
        cpu_speed: float = 1.0,
        disk: Optional[Disk] = None,
        **disk_kwargs,
    ):
        if cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")
        self.sim = sim
        self.network = network
        self.name = name
        self.cpu_speed = cpu_speed
        self.rated_cpu_speed = cpu_speed  # nameplate speed; degrade() scales off this
        self.cpu = Resource(sim, capacity=1, name=f"cpu:{name}")
        self.disk = disk or Disk(sim, name=name, **disk_kwargs)
        self.nic: NetworkInterface = network.attach(name, segment)
        self.up = True

        metrics = sim.metrics
        metrics.utilization(f"host.{name}.cpu", lambda: self.cpu.utilization)
        metrics.utilization(f"host.{name}.disk", lambda: self.disk.arm.utilization)
        metrics.counter(f"host.{name}.disk.operations",
                        lambda: self.disk.operations)
        metrics.counter(f"host.{name}.disk.bytes_read",
                        lambda: self.disk.bytes_read)
        metrics.counter(f"host.{name}.disk.bytes_written",
                        lambda: self.disk.bytes_written)

    def compute(self, reference_seconds: float) -> Generator[Any, Any, None]:
        """Occupy the CPU for ``reference_seconds`` of 1-unit machine work."""
        if reference_seconds <= 0:
            return
        # Inlined Resource.use: compute() is the single hottest generator in
        # the simulation, so skip the extra delegating frame and, when the
        # CPU is uncontended, the Request handle allocation too.
        cpu = self.cpu
        if cpu.try_claim():
            try:
                yield self.sim.timeout(reference_seconds / self.cpu_speed)
            finally:
                cpu.release_anon()
            return
        request = cpu.request()
        yield request
        try:
            yield self.sim.timeout(reference_seconds / self.cpu_speed)
        finally:
            cpu.release(request)

    def cpu_utilization(self, start: float = 0.0, end=None) -> float:
        """Mean CPU busy fraction over the window (the paper's ~40 %)."""
        return self.cpu.utilization.mean_utilization(start, end)

    def disk_utilization(self, start: float = 0.0, end=None) -> float:
        """Mean disk busy fraction over the window (the paper's ~14 %)."""
        return self.disk.mean_utilization(start, end)

    def crash(self) -> None:
        """Mark the host down; its RPC node will refuse traffic."""
        self.up = False

    def recover(self) -> None:
        """Bring the host back up."""
        self.up = True

    def degrade(self, factor: float) -> None:
        """Run the CPU at ``factor`` of its rated speed (thermal throttle,
        a runaway daemon).  Only work started after the call is affected."""
        if factor <= 0:
            raise ValueError("degrade factor must be positive")
        self.cpu_speed = self.rated_cpu_speed * factor

    def restore_speed(self) -> None:
        """Return the CPU to its rated speed."""
        self.cpu_speed = self.rated_cpu_speed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} speed={self.cpu_speed}>"
