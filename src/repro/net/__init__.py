"""Campus network substrate: segments, bridges, routing (paper Fig. 2-2)."""

from repro.net.link import Segment
from repro.net.packet import Datagram, WireFormat
from repro.net.topology import Bridge, Network, NetworkInterface

__all__ = [
    "Bridge",
    "Datagram",
    "Network",
    "NetworkInterface",
    "Segment",
    "WireFormat",
]
