"""A shared LAN segment with serialization, latency and fair interleaving.

Each segment (a cluster Ethernet or the campus backbone of Fig. 2-2) is a
single shared medium: one station transmits at a time.  Long transfers are
split into *bursts* of a configurable number of frames so that concurrent
senders interleave, as CSMA/CD stations do, without simulating every frame
as a kernel event.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.sim.kernel import Simulator
from repro.sim.metrics import Counter
from repro.sim.rand import WorkloadRandom
from repro.sim.resources import Resource
from repro.net.packet import WireFormat

__all__ = ["LinkFaults", "Segment"]


class LinkFaults:
    """Seeded per-segment packet-fault injector (loss/corruption/duplication).

    Installed on :attr:`Segment.faults` by the chaos scheduler (see
    :mod:`repro.faults`); ``None`` — the default — costs the transfer path a
    single attribute check.  Fates are decided per logical transfer by a
    dedicated :class:`~repro.sim.rand.WorkloadRandom`, so identical seeds
    reproduce identical fault sequences regardless of other campus traffic.

    A *lost* transfer occupies the wire but never reaches the destination
    inbox; a *corrupted* one arrives with flipped bytes (the RPC layer's
    MAC check must catch it); a *duplicated* one arrives twice (at-most-once
    semantics must absorb it).
    """

    __slots__ = ("rng", "loss", "corrupt", "duplicate", "stats")

    def __init__(
        self,
        rng: WorkloadRandom,
        loss: float = 0.0,
        corrupt: float = 0.0,
        duplicate: float = 0.0,
        stats: Optional[Dict[str, int]] = None,
    ):
        for name, rate in (("loss", loss), ("corrupt", corrupt),
                           ("duplicate", duplicate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate {rate!r} outside [0, 1]")
        self.rng = rng
        self.loss = loss
        self.corrupt = corrupt
        self.duplicate = duplicate
        # Shared with the scheduler/tracker so injections are observable.
        self.stats = stats if stats is not None else {
            "link_lost": 0, "link_corrupted": 0, "link_duplicated": 0,
        }

    def judge(self) -> str:
        """Fate of one transfer: "lost", "corrupted", "duplicated" or "ok".

        At most one fate per transfer (a lost packet cannot also arrive
        twice); draws short-circuit in a fixed order so the stream is
        deterministic.
        """
        rng = self.rng
        if self.loss and rng.chance(self.loss):
            self.stats["link_lost"] += 1
            return "lost"
        if self.corrupt and rng.chance(self.corrupt):
            self.stats["link_corrupted"] += 1
            return "corrupted"
        if self.duplicate and rng.chance(self.duplicate):
            self.stats["link_duplicated"] += 1
            return "duplicated"
        return "ok"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LinkFaults loss={self.loss} corrupt={self.corrupt}"
                f" duplicate={self.duplicate}>")


class Segment:
    """One broadcast LAN segment.

    Parameters
    ----------
    bandwidth_bps:
        Raw signalling rate (10 Mb/s for the campus Ethernet).
    latency:
        One-way propagation plus media-access delay per burst, seconds.
    wire:
        Frame format used to convert payload bytes into wire bits.
    burst_frames:
        Frames sent per medium acquisition; smaller values interleave
        concurrent transfers more finely at the cost of more events.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float = 10_000_000.0,
        latency: float = 0.0005,
        wire: WireFormat = WireFormat(),
        burst_frames: int = 32,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if burst_frames < 1:
            raise ValueError("burst_frames must be >= 1")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.wire = wire
        self.burst_frames = burst_frames
        self.medium = Resource(sim, capacity=1, name=f"lan:{name}")
        self.bytes_carried = 0
        self.frames_carried = 0
        self.traffic = Counter(f"traffic:{name}")
        # Fault injection hook (repro.faults): None keeps the segment clean
        # and costs the delivery path one attribute check.
        self.faults: Optional[LinkFaults] = None

    def transmission_time(self, payload_bytes: int) -> float:
        """Seconds the medium is occupied by ``payload_bytes`` (no queueing)."""
        return self.wire.wire_bits(payload_bytes) / self.bandwidth_bps

    def transmit(self, payload_bytes: int, kind: str = "data") -> Generator[Any, Any, None]:
        """Occupy the medium long enough to carry ``payload_bytes``.

        A generator to be driven from a simulation process.  Completes when
        the last burst has been transmitted and has propagated.
        """
        wire = self.wire
        frames = wire.frames_for(payload_bytes)
        wire_bytes = wire.wire_bytes(payload_bytes)
        self.frames_carried += frames
        self.bytes_carried += wire_bytes
        self.traffic.add(kind, wire_bytes)

        # Hoist the per-frame wire overhead out of the burst loop.
        mtu = wire.mtu
        per_frame_bits = wire.header_bytes * 8 + wire.interframe_gap_bits
        bandwidth = self.bandwidth_bps
        burst_frames = self.burst_frames
        medium_use = self.medium.use
        remaining_frames = frames
        remaining_bytes = max(payload_bytes, 0)
        while remaining_frames > 0:
            burst = burst_frames if burst_frames < remaining_frames else remaining_frames
            burst_bytes = min(remaining_bytes, burst * mtu)
            burst_bits = burst_bytes * 8 + burst * per_frame_bits
            yield from medium_use(burst_bits / bandwidth)
            remaining_frames -= burst
            remaining_bytes -= burst_bytes
        # Propagation + media access once per logical transfer; a zero-latency
        # segment must not cost a kernel event.
        if self.latency > 0.0:
            yield self.sim.timeout(self.latency)

    def mean_utilization(self, start: float = 0.0, end=None) -> float:
        """Fraction of time the medium was busy over the window."""
        return self.medium.utilization.mean_utilization(start, end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Segment {self.name} {self.bandwidth_bps/1e6:.0f}Mb/s>"
