"""Wire-level cost model: packets, frames and transfer sizing.

The network substrate does not simulate individual frames as events (a
campus day would be billions of them); instead each transfer is costed by
the exact number of frames it would occupy on an early-1980s Ethernet:
``ceil(payload / mtu)`` frames, each carrying ``header_bytes`` of protocol
overhead.  This is what makes the paper's whole-file-vs-page argument
measurable — a page-at-a-time protocol pays the header and round-trip cost
once per page, a whole-file transfer amortises it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["Datagram", "WireFormat", "corrupted_datagram"]


@dataclass(frozen=True)
class WireFormat:
    """Frame parameters for a LAN segment.

    Defaults approximate the 10 Mb/s Ethernet of the paper's campus:
    1460-byte maximum payload, 64 bytes of header/trailer/preamble per
    frame, plus a mandatory inter-frame gap.
    """

    mtu: int = 1460
    header_bytes: int = 64
    interframe_gap_bits: int = 96

    def frames_for(self, payload_bytes: int) -> int:
        """Number of frames a payload occupies (at least one)."""
        if payload_bytes <= 0:
            return 1
        # Integer ceiling division: exact for payloads too large for floats.
        return -(-payload_bytes // self.mtu)

    def wire_bytes(self, payload_bytes: int) -> int:
        """Total bytes on the wire including per-frame headers."""
        return max(0, payload_bytes) + self.frames_for(payload_bytes) * self.header_bytes

    def wire_bits(self, payload_bytes: int) -> int:
        """Total bits on the wire including headers and inter-frame gaps."""
        frames = self.frames_for(payload_bytes)
        return self.wire_bytes(payload_bytes) * 8 + frames * self.interframe_gap_bits


class Datagram:
    """One logical unit handed to the network: a message plus its size.

    ``payload`` is opaque to the network (the RPC layer puts marshalled
    call records and file contents in it).  ``payload_bytes`` is the size
    used for costing; it may exceed ``len(payload)`` when the RPC layer
    accounts for marshalling overhead.

    A plain ``__slots__`` class, not a dataclass: one is allocated per RPC
    message, so the per-instance ``__dict__`` is measurable churn.
    """

    __slots__ = ("source", "destination", "payload", "payload_bytes", "hops", "metadata")

    def __init__(self, source: str, destination: str, payload: Any,
                 payload_bytes: int, hops: int = 0, metadata: Any = None):
        self.source = source
        self.destination = destination
        self.payload = payload
        self.payload_bytes = payload_bytes
        self.hops = hops
        self.metadata = metadata  # lazily-populated annotation slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Datagram(source={self.source!r}, destination={self.destination!r}, "
                f"payload_bytes={self.payload_bytes}, hops={self.hops})")


def corrupted_datagram(datagram: Datagram, rng: Any) -> Optional[Datagram]:
    """A copy of ``datagram`` whose payload arrived with flipped bits.

    The network treats payloads as opaque, so corruption is delegated to the
    payload itself via a ``corrupted_copy(rng)`` method (the RPC layer's
    :class:`~repro.rpc.messages.Envelope` implements it).  Returns ``None``
    when the payload cannot be meaningfully corrupted — the caller should
    then deliver the original untouched.  The original datagram is never
    mutated: in-process simulation shares payload objects with the sender's
    reply cache.
    """
    corrupt = getattr(datagram.payload, "corrupted_copy", None)
    if corrupt is None:
        return None
    payload = corrupt(rng)
    if payload is None:
        return None
    return Datagram(
        datagram.source, datagram.destination, payload,
        datagram.payload_bytes, hops=datagram.hops, metadata=datagram.metadata,
    )
