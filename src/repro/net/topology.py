"""The campus network: segments, bridges and a uniform address space.

Figure 2-2 of the paper: clusters of 50-100 workstations, each cluster with
its own Ethernet segment and cluster server, joined by *bridges* to a
backbone Ethernet.  "All of Vice is logically one network, with the bridges
providing a uniform network address space for all nodes" — so nodes address
each other by name and the :class:`Network` does the routing, invisibly to
the endpoints, exactly as the paper requires.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.net.link import LinkFaults, Segment
from repro.net.packet import Datagram, corrupted_datagram
from repro.sim.kernel import Simulator
from repro.sim.resources import Store

__all__ = ["Bridge", "Network", "NetworkInterface"]


class NetworkInterface:
    """A node's attachment point: a named inbox on one segment."""

    def __init__(self, sim: Simulator, node: str, segment: Segment):
        self.node = node
        self.segment = segment
        self.inbox: Store = Store(sim, name=f"nic:{node}")

    def receive(self) -> Any:
        """Event that fires with the next inbound :class:`Datagram`."""
        return self.inbox.get()


class Bridge:
    """A store-and-forward router between two segments.

    Bridges add a per-transfer forwarding delay (routing-table lookup and
    queueing in the bridge's memory) on top of retransmission onto the next
    segment.
    """

    def __init__(self, name: str, side_a: Segment, side_b: Segment, forwarding_delay: float = 0.002):
        self.name = name
        self.side_a = side_a
        self.side_b = side_b
        self.forwarding_delay = forwarding_delay
        self.transfers_forwarded = 0

    def connects(self, segment: Segment) -> bool:
        """True if this bridge attaches to ``segment``."""
        return segment is self.side_a or segment is self.side_b

    def other_side(self, segment: Segment) -> Segment:
        """The segment on the far side of ``segment``."""
        if segment is self.side_a:
            return self.side_b
        if segment is self.side_b:
            return self.side_a
        raise SimulationError(f"bridge {self.name} does not attach to {segment.name}")


class Network:
    """The whole campus internetwork with name-based, location-free addressing."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.segments: Dict[str, Segment] = {}
        self.bridges: List[Bridge] = []
        self.interfaces: Dict[str, NetworkInterface] = {}
        # Route cache: (src segment, dst segment) -> (segments, hops) where
        # hops pairs each segment with the bridge crossed to reach it
        # (``None`` for the first).  ``send`` walks hops with zero scans.
        self._route_cache: Dict[Tuple[str, str], Tuple[List[Segment], List[Tuple[Segment, Optional[Bridge]]]]] = {}
        # Segment name -> [(neighbor segment, joining bridge)], kept in
        # bridge insertion order so BFS tie-breaks exactly as the old
        # scan-all-bridges loop did.
        self._adjacency: Dict[str, List[Tuple[Segment, Bridge]]] = {}
        self.partitioned: set = set()  # names of segments currently cut off
        # Count of segments with an installed LinkFaults injector; zero keeps
        # the delivery path on its original no-branching-per-hop shape.
        self._faulty_segments = 0
        # Sharded execution hook (repro.sim.shard): when set, ``send``
        # hands a transfer off the moment it reaches a segment this
        # shard does not own.  None in single-process runs.
        self.shard_router = None
        self.route_hits = 0
        self.route_misses = 0
        sim.metrics.counter(
            "net.route_cache",
            lambda: {"hits": self.route_hits, "misses": self.route_misses},
        )

    # -- construction -------------------------------------------------------

    def add_segment(self, name: str, **segment_kwargs) -> Segment:
        """Create and register a LAN segment."""
        if name in self.segments:
            raise SimulationError(f"duplicate segment {name!r}")
        segment = Segment(self.sim, name, **segment_kwargs)
        self.segments[name] = segment
        self._route_cache.clear()
        return segment

    def add_bridge(self, name: str, segment_a: str, segment_b: str, forwarding_delay: float = 0.002) -> Bridge:
        """Join two segments with a store-and-forward bridge."""
        side_a, side_b = self.segments[segment_a], self.segments[segment_b]
        bridge = Bridge(name, side_a, side_b, forwarding_delay)
        self.bridges.append(bridge)
        self._adjacency.setdefault(side_a.name, []).append((side_b, bridge))
        self._adjacency.setdefault(side_b.name, []).append((side_a, bridge))
        self._route_cache.clear()
        return bridge

    def attach(self, node: str, segment_name: str) -> NetworkInterface:
        """Attach a named node to a segment; node names are campus-unique."""
        if node in self.interfaces:
            raise SimulationError(f"node {node!r} already attached")
        nic = NetworkInterface(self.sim, node, self.segments[segment_name])
        self.interfaces[node] = nic
        return nic

    # -- fault injection -------------------------------------------------------

    def partition(self, segment_name: str) -> None:
        """Cut a segment off from the rest of the campus (bridge failure)."""
        self.partitioned.add(segment_name)
        self._route_cache.clear()

    def heal(self, segment_name: str) -> None:
        """Restore a previously partitioned segment."""
        self.partitioned.discard(segment_name)
        self._route_cache.clear()

    def install_link_faults(self, segment_name: str, faults: Optional[LinkFaults]) -> None:
        """Attach (or, with ``None``, remove) a fault injector on a segment."""
        segment = self.segments[segment_name]
        if (segment.faults is None) != (faults is None):
            self._faulty_segments += 1 if faults is not None else -1
        segment.faults = faults

    # -- routing --------------------------------------------------------------

    def route(self, src_node: str, dst_node: str) -> List[Segment]:
        """Ordered segments a transfer crosses from ``src`` to ``dst``.

        Raises :class:`SimulationError` when no path exists (partition).
        """
        return self._hops(src_node, dst_node)[0]

    def _hops(self, src_node: str, dst_node: str) -> Tuple[List[Segment], List[Tuple[Segment, Optional[Bridge]]]]:
        """Cached ``(segments, (segment, inbound bridge) pairs)`` for a route."""
        src_seg = self.interfaces[src_node].segment
        dst_seg = self.interfaces[dst_node].segment
        key = (src_seg.name, dst_seg.name)
        cached = self._route_cache.get(key)
        if cached is not None:
            self.route_hits += 1
            return cached
        self.route_misses += 1
        hops = self._shortest_path(src_seg, dst_seg)
        if hops is None:
            raise SimulationError(
                f"no route from {src_node} ({src_seg.name}) to {dst_node} ({dst_seg.name})"
            )
        entry = ([segment for segment, _bridge in hops], hops)
        self._route_cache[key] = entry
        return entry

    def _shortest_path(self, src: Segment, dst: Segment) -> Optional[List[Tuple[Segment, Optional[Bridge]]]]:
        if src is dst:
            # A partition is a bridge failure: traffic that never leaves the
            # segment still flows (the cut-off cluster keeps its own server).
            return [(src, None)]
        partitioned = self.partitioned
        if src.name in partitioned or dst.name in partitioned:
            return None
        adjacency = self._adjacency
        # Parent-pointer BFS over the precomputed adjacency map; visits
        # neighbors in bridge insertion order, matching the old full scan.
        prev: Dict[str, Tuple[Optional[Segment], Bridge]] = {}
        frontier = deque([src])
        visited = {src.name}
        while frontier:
            tail = frontier.popleft()
            for nxt, bridge in adjacency.get(tail.name, ()):
                if nxt.name in visited or nxt.name in partitioned:
                    continue
                prev[nxt.name] = (tail, bridge)
                if nxt is dst:
                    hops: List[Tuple[Segment, Optional[Bridge]]] = [(nxt, bridge)]
                    while tail is not src:
                        parent, via = prev[tail.name]
                        hops.append((tail, via))
                        tail = parent
                    hops.append((src, None))
                    hops.reverse()
                    return hops
                visited.add(nxt.name)
                frontier.append(nxt)
        return None

    def bridge_between(self, seg_a: Segment, seg_b: Segment) -> Bridge:
        """The bridge joining two adjacent segments."""
        for nxt, bridge in self._adjacency.get(seg_a.name, ()):
            if nxt is seg_b:
                return bridge
        raise SimulationError(f"no bridge between {seg_a.name} and {seg_b.name}")

    def hop_count(self, src_node: str, dst_node: str) -> int:
        """Number of segments crossed (1 = same cluster)."""
        return len(self.route(src_node, dst_node))

    # -- transfer ---------------------------------------------------------------

    def send(
        self, datagram: Datagram, kind: str = "data", deliver: bool = True
    ) -> Generator[Any, Any, None]:
        """Carry ``datagram`` to its destination and deposit it in the inbox.

        A generator to be driven by a simulation process; completes when the
        datagram has been delivered.  Crossing each segment serializes on
        that segment's medium; each bridge adds its forwarding delay.
        ``deliver=False`` models a datagram lost in flight: it occupies the
        wire but never reaches the destination inbox.
        """
        _segments, hops = self._hops(datagram.source, datagram.destination)
        payload_bytes = datagram.payload_bytes
        timeout = self.sim.timeout
        router = self.shard_router
        if router is None:
            for segment, bridge in hops:
                if bridge is not None:
                    bridge.transfers_forwarded += 1
                    yield timeout(bridge.forwarding_delay)
                yield from segment.transmit(payload_bytes, kind=kind)
        else:
            owned = router.owned
            for index, (segment, bridge) in enumerate(hops):
                if segment.name not in owned:
                    # Crossing a shard boundary: the owning shard resumes
                    # this route at the same hop and virtual instant; the
                    # sender's part of the transfer is complete.
                    router.handoff(datagram, kind, deliver, index,
                                   segment.name, bridge)
                    return
                if bridge is not None:
                    bridge.transfers_forwarded += 1
                    yield timeout(bridge.forwarding_delay)
                yield from segment.transmit(payload_bytes, kind=kind)
        datagram.hops = len(hops)
        copies = 1
        if self._faulty_segments and deliver:
            # Each faulty segment crossed judges the transfer independently;
            # a loss anywhere ends it, corruption and duplication compose
            # (the duplicate of a corrupted transfer is also corrupted, as
            # a bridge re-forwards the damaged frame it received).
            corrupted = False
            for segment, _bridge in hops:
                faults = segment.faults
                if faults is None:
                    continue
                fate = faults.judge()
                if fate == "lost":
                    deliver = False
                    break
                if fate == "corrupted":
                    if not corrupted:
                        damaged = corrupted_datagram(datagram, faults.rng)
                        if damaged is not None:
                            datagram = damaged
                            corrupted = True
                elif fate == "duplicated":
                    copies += 1
        if deliver:
            inbox = self.interfaces[datagram.destination].inbox
            for _ in range(copies):
                inbox.put(datagram)

    def total_bytes_on(self, segment_name: str) -> int:
        """Wire bytes carried by a segment so far (for traffic experiments)."""
        return self.segments[segment_name].bytes_carried
