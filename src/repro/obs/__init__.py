"""Observability: causal request tracing and the unified metrics registry.

The §3.6 "monitoring tools" subsystem.  Two halves:

* :mod:`repro.obs.trace` — span-based causal tracing threaded from Venus
  through the RPC fabric into Vice and down to disk I/O; exports JSONL and
  Chrome-trace (Perfetto-loadable) files.  Off by default and zero-cost
  when off.
* :mod:`repro.obs.registry` — named, typed instruments (counter / gauge /
  histogram / utilization) registered per component; one campus-wide
  ``snapshot()`` is the read surface for dashboards and benchmarks.

Every :class:`~repro.sim.kernel.Simulator` carries both: ``sim.tracer``
(the shared null recorder until tracing is enabled) and ``sim.metrics``
(always live — instruments are cheap).  Enable tracing with::

    from repro.obs import TraceRecorder
    recorder = TraceRecorder(campus.sim)      # attaches as campus.sim.tracer
    ... run the workload ...
    recorder.write_chrome_trace("trace.json")  # open in Perfetto

See ``docs/observability.md`` for the span model and metric name scheme.
"""

from repro.obs.availability import AvailabilityTracker, OutageEpisode
from repro.obs.live import OpsEventStream, RollingAggregator, SimulationController
from repro.obs.registry import Instrument, MetricsRegistry
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    TraceRecorder,
    chrome_trace,
    validate_coverage,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "AvailabilityTracker",
    "Instrument",
    "MetricsRegistry",
    "OpsEventStream",
    "OutageEpisode",
    "RollingAggregator",
    "SimulationController",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "chrome_trace",
    "validate_coverage",
    "write_chrome_trace",
    "write_jsonl",
]
