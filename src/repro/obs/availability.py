"""Availability accounting: outages, MTTR and recovery latency.

The paper's operational sections promise that a workstation "with a small
number of files cached" can keep working through Vice outages, and that a
crashed custodian returns to service after a salvage pass.  This module
makes those claims measurable.  An :class:`AvailabilityTracker` receives
every user-visible operation outcome plus every injected fault and
recovery (from :mod:`repro.faults`), and derives:

* **availability** — the fraction of attempted operations that succeeded,
  campus-wide and per user;
* **outage episodes** — per user, an episode opens at the first failed
  operation and closes at the next success; episode durations feed the
  MTTR (mean-time-to-repair as the *user* experiences it) distribution;
* **time to first success** — for each recovery event, how long until any
  user's next successful operation;
* **a timeline** — every fault, recovery and outage episode with its
  virtual timestamp, exportable as JSON next to the Chrome trace.

The tracker is pure bookkeeping: it never yields, draws randomness or
advances virtual time, so recording outcomes cannot perturb a run.  It is
created only when a fault plan is installed (``ITCSystem.install_faults``);
unfaulted campuses carry ``availability = None`` and skip even the method
calls.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.sim.metrics import Samples

__all__ = ["AvailabilityTracker", "OutageEpisode"]


class OutageEpisode:
    """One user's contiguous run of failed operations."""

    __slots__ = ("user", "start", "end", "failures")

    def __init__(self, user: str, start: float):
        self.user = user
        self.start = start
        self.end: Optional[float] = None  # None while still open
        self.failures = 1

    @property
    def duration(self) -> Optional[float]:
        """Seconds from first failure to next success (None while open)."""
        return None if self.end is None else self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        return {
            "user": self.user,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "failures": self.failures,
        }


class AvailabilityTracker:
    """Campus-wide operation availability and repair-time bookkeeping."""

    def __init__(self, sim):
        self.sim = sim
        self.attempts = 0
        self.successes = 0
        self.failures = 0
        self._per_user: Dict[str, Dict[str, int]] = {}
        self._open: Dict[str, OutageEpisode] = {}
        self.episodes: List[OutageEpisode] = []
        self.mttr = Samples("availability-mttr")
        self.ttfs = Samples("availability-ttfs")
        # Recovery instants still waiting for their first campus success.
        self._awaiting_success: List[float] = []
        # Injection/repair counters maintained by the fault scheduler.
        self.counters: Dict[str, int] = {
            "faults_injected": 0,
            "recoveries": 0,
            "salvages": 0,
        }
        self._events: List[Dict[str, Any]] = []
        # Optional live subscriber (repro.obs.live.OpsEventStream): called
        # with one dict per fault/recovery/salvage event and per outage
        # begin/end.  None (the default) costs one attribute test per
        # event, zero per ordinary successful operation.
        self.listener: Optional[Any] = None

        metrics = sim.metrics
        metrics.counter("availability.ops", lambda: {
            "success": self.successes, "failure": self.failures,
        })
        metrics.gauge("availability.ratio", lambda: self.availability)
        metrics.gauge("availability.outages", lambda: len(self.episodes))
        metrics.gauge("availability.open_outages", lambda: len(self._open))
        metrics.counter("availability.events", lambda: dict(self.counters))
        metrics.histogram("availability.mttr", self.mttr)
        metrics.histogram("availability.ttfs", self.ttfs)

    # -- operation outcomes ------------------------------------------------

    def record_op(self, user: str, ok: bool, now: Optional[float] = None) -> None:
        """One user-visible operation attempt and its outcome."""
        if now is None:
            now = self.sim.now
        self.attempts += 1
        stats = self._per_user.get(user)
        if stats is None:
            stats = self._per_user[user] = {"attempts": 0, "successes": 0,
                                            "failures": 0}
        stats["attempts"] += 1
        if ok:
            self.successes += 1
            stats["successes"] += 1
            episode = self._open.pop(user, None)
            if episode is not None:
                episode.end = now
                self.episodes.append(episode)
                self.mttr.add(episode.duration)
                self._events.append({"t": episode.start, "event": "outage",
                                     **episode.as_dict()})
                if self.listener is not None:
                    self.listener({"t": now, "event": "outage_end",
                                   "user": user, "start": episode.start,
                                   "duration": episode.duration,
                                   "failures": episode.failures})
            if self._awaiting_success:
                for recovered_at in self._awaiting_success:
                    self.ttfs.add(now - recovered_at)
                self._awaiting_success.clear()
        else:
            self.failures += 1
            stats["failures"] += 1
            episode = self._open.get(user)
            if episode is None:
                self._open[user] = OutageEpisode(user, now)
                if self.listener is not None:
                    self.listener({"t": now, "event": "outage_begin",
                                   "user": user})
            else:
                episode.failures += 1

    # -- fault/recovery events (from the scheduler) ------------------------

    def record_fault(self, kind: str, target: str,
                     now: Optional[float] = None, **detail) -> None:
        """An injected fault took effect."""
        if now is None:
            now = self.sim.now
        self.counters["faults_injected"] += 1
        record = {"t": now, "event": "fault", "kind": kind,
                  "target": target, **detail}
        self._events.append(record)
        if self.listener is not None:
            self.listener(record)

    def record_recovery(self, kind: str, target: str,
                        now: Optional[float] = None, **detail) -> None:
        """An injected fault was reverted; starts a time-to-first-success
        clock that the next successful operation stops."""
        if now is None:
            now = self.sim.now
        self.counters["recoveries"] += 1
        self._awaiting_success.append(now)
        record = {"t": now, "event": "recovery", "kind": kind,
                  "target": target, **detail}
        self._events.append(record)
        if self.listener is not None:
            self.listener(record)

    def record_failover(self, volume_id: str, old_primary: str,
                        new_primary: str, now: Optional[float] = None) -> None:
        """The replication controller promoted a new primary for a volume.

        The ``failovers`` counter key is created lazily so campuses that
        never fail over (every pre-replication run) keep the exact
        ``events`` dict they always had.
        """
        if now is None:
            now = self.sim.now
        self.counters["failovers"] = self.counters.get("failovers", 0) + 1
        record = {"t": now, "event": "failover", "volume": volume_id,
                  "old_primary": old_primary, "new_primary": new_primary}
        self._events.append(record)
        if self.listener is not None:
            self.listener(record)

    def record_salvage(self, target: str, volumes: int,
                       now: Optional[float] = None) -> None:
        """A post-crash salvage pass completed on a server."""
        if now is None:
            now = self.sim.now
        self.counters["salvages"] += 1
        record = {"t": now, "event": "salvage", "target": target,
                  "volumes": volumes}
        self._events.append(record)
        if self.listener is not None:
            self.listener(record)

    # -- reading -----------------------------------------------------------

    @property
    def availability(self) -> float:
        """Fraction of attempted operations that succeeded (1.0 when idle)."""
        return self.successes / self.attempts if self.attempts else 1.0

    def open_episodes(self) -> List[OutageEpisode]:
        """Outage episodes still open (no success yet), by user order."""
        return list(self._open.values())

    def per_user(self) -> Dict[str, Dict[str, Any]]:
        """Per-user attempts/successes/failures plus derived availability."""
        out = {}
        for user, stats in sorted(self._per_user.items()):
            attempts = stats["attempts"]
            out[user] = dict(stats, availability=(
                stats["successes"] / attempts if attempts else 1.0
            ))
        return out

    def summary(self, now: Optional[float] = None) -> Dict[str, Any]:
        """One JSON-ready report of everything the tracker knows."""
        if now is None:
            now = self.sim.now
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "failures": self.failures,
            "availability": self.availability,
            "outages": len(self.episodes),
            "open_outages": len(self._open),
            "mttr": {
                "count": len(self.mttr),
                "mean": self.mttr.mean,
                "p50": self.mttr.percentile(0.50),
                "p90": self.mttr.percentile(0.90),
                "max": self.mttr.maximum,
            },
            "ttfs": {
                "count": len(self.ttfs),
                "mean": self.ttfs.mean,
                "p90": self.ttfs.percentile(0.90),
            },
            "events": dict(self.counters),
            "per_user_worst": min(
                (u["availability"] for u in self.per_user().values()),
                default=1.0,
            ),
        }

    def timeline(self) -> List[Dict[str, Any]]:
        """Every fault, recovery, salvage and outage episode, time-ordered.

        Open episodes are included with ``end: null`` so a timeline written
        mid-outage is honest about it.
        """
        events = list(self._events)
        for episode in self._open.values():
            events.append({"t": episode.start, "event": "outage",
                           **episode.as_dict()})
        events.sort(key=lambda e: (e["t"], e["event"]))
        return events

    def write_timeline(self, path: str) -> int:
        """Write the outage/fault timeline as JSON; returns event count."""
        events = self.timeline()
        with open(path, "w") as fh:
            json.dump({"events": events, "summary": self.summary()}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        return len(events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AvailabilityTracker ops={self.attempts} "
                f"availability={self.availability:.3f}>")
