"""Live operations: run control, rolling metrics and the ops-event stream.

The dashboard and the metrics registry answer "what happened?" after a run
finishes; this module answers "what is happening *now*?", which is how the
paper's Vice was actually kept alive — §5.2's response to overload and
failure is operational (watch the servers, move volumes, restart machines).
Three pieces, all pure observers of a running campus:

* :class:`SimulationController` — wraps the kernel's run loop from the
  *outside* with pause/resume, single-event and fixed-virtual-time
  stepping, virtual-time breakpoints and a wall-clock pacing throttle.
  It never touches :class:`~repro.sim.kernel.Simulator` internals beyond
  calling ``run(until=...)``/``step()``, so a campus driven through a
  controller replays byte-identically to one driven directly.
* :class:`RollingAggregator` — turns successive
  :class:`~repro.obs.registry.MetricsRegistry` readings into *windows*:
  ring buffers of counter deltas (→ rates), windowed histogram
  percentiles (p50/p99 over the samples added this window, not since
  boot), windowed per-host CPU/disk utilization, and top-K hot
  volumes/users/servers.  Sampling is read-only and its own wall cost is
  measured (``overhead_us``) so observability overhead is a tracked
  number, not a hope.
* :class:`OpsEventStream` — a structured JSONL event stream: fault /
  recovery / salvage events and outage begin/end straight from the
  :class:`~repro.obs.availability.AvailabilityTracker` hooks, plus
  derived events (callback-break storms, cache pressure) detected from
  aggregator windows, plus operator actions from the console.

None of the three exists unless explicitly constructed, so unobserved
campuses pay nothing — the same zero-cost-when-off contract as the tracer
and the fault subsystem.
"""

from __future__ import annotations

import json
import time
from bisect import insort
from collections import deque
from typing import Any, Callable, Dict, IO, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.metrics import Samples, UtilizationTracker

__all__ = ["OpsEventStream", "RollingAggregator", "SimulationController"]


class SimulationController:
    """Interactive run control for one :class:`~repro.sim.kernel.Simulator`.

    The controller is a *driver*, not a kernel hook: it advances the
    simulation in bounded ``run(until=...)`` slices and makes its control
    decisions between slices.  Virtual outcomes are therefore identical to
    an uncontrolled run — events still fire in (time, sequence) order, the
    clock still parks exactly at each requested horizon.

    ``pacing`` is the wall-clock throttle: at most ``pacing`` virtual
    seconds may elapse per wall second (None = unthrottled).  The console
    uses it to play a campus day at watchable speed; the soak driver leaves
    it off.
    """

    def __init__(self, sim, pacing: Optional[float] = None):
        self.sim = sim
        self.pacing = pacing
        self.paused = False
        self._breakpoints: List[float] = []
        self.last_breakpoint: Optional[float] = None
        self.events_stepped = 0

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        return "paused" if self.paused else "running"

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def toggle(self) -> bool:
        """Flip paused/running; returns True when now paused."""
        self.paused = not self.paused
        return self.paused

    # -- breakpoints -------------------------------------------------------

    @property
    def breakpoints(self) -> Tuple[float, ...]:
        return tuple(self._breakpoints)

    def add_breakpoint(self, when: float) -> None:
        """Auto-pause when the clock reaches virtual time ``when``."""
        if when <= self.sim.now:
            raise SimulationError(
                f"breakpoint at t={when} is not in the future (now={self.sim.now})"
            )
        if when not in self._breakpoints:
            insort(self._breakpoints, when)

    def clear_breakpoints(self) -> None:
        del self._breakpoints[:]

    def _next_breakpoint(self, until: float) -> Optional[float]:
        now = self.sim.now
        for when in self._breakpoints:
            if when > now:
                return when if when <= until else None
        return None

    # -- stepping (works while paused) -------------------------------------

    def step_event(self, count: int = 1) -> int:
        """Process up to ``count`` single events; returns how many ran."""
        done = 0
        for _ in range(count):
            try:
                self.sim.step()
            except IndexError:
                break
            done += 1
        self.events_stepped += done
        return done

    def step_time(self, delta: float) -> float:
        """Advance exactly ``delta`` virtual seconds, even while paused."""
        if delta < 0:
            raise SimulationError(f"cannot step backwards ({delta!r})")
        target = self.sim.now + delta
        self.sim.run(until=target)
        return self.sim.now

    # -- continuous advance ------------------------------------------------

    def advance(self, until: float) -> float:
        """Run toward ``until``; honours pause state and breakpoints.

        Returns the clock after the slice.  If a breakpoint lies in
        ``(now, until]`` the run stops exactly there and the controller
        pauses itself (``last_breakpoint`` records which one fired).
        """
        if self.paused:
            return self.sim.now
        breakpoint_at = self._next_breakpoint(until)
        if breakpoint_at is not None:
            self.sim.run(until=breakpoint_at)
            self._breakpoints.remove(breakpoint_at)
            self.last_breakpoint = breakpoint_at
            self.paused = True
        else:
            self.sim.run(until=until)
        return self.sim.now

    def tick(self, wall_elapsed: float, horizon: Optional[float] = None) -> float:
        """One frame of a paced loop: advance per the pacing budget.

        ``wall_elapsed`` is the wall seconds since the previous tick; with
        ``pacing`` set, at most ``pacing * wall_elapsed`` virtual seconds
        elapse.  Returns virtual seconds actually advanced.
        """
        if self.paused:
            return 0.0
        start = self.sim.now
        target = horizon
        if self.pacing is not None:
            budget = start + self.pacing * max(0.0, wall_elapsed)
            target = budget if target is None else min(target, budget)
        if target is None:
            raise SimulationError("tick() without pacing needs a horizon")
        if target > start:
            self.advance(target)
        return self.sim.now - start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimulationController {self.state} t={self.sim.now:.1f} "
                f"pacing={self.pacing}>")


# Campus-wide counters the aggregator tracks by instrument-name suffix.
_CAMPUS_COUNTERS = {
    "opens": ".opens",
    "fetches": ".fetches",
    "stores": ".stores",
    "validations": ".validations",
    "cache_hits": ".cache.hits",
    "cache_misses": ".cache.misses",
    "evictions": ".cache.evictions",
    "callback_breaks": ".callback_breaks_received",
    "disk_ops": ".disk.operations",
}


class RollingAggregator:
    """Rolling windows of deltas, rates and top-K over a metrics registry.

    Each :meth:`sample` reads the registry once, diffs against the previous
    reading, and appends one *window* dict to a bounded ring buffer.  A
    window carries:

    * ``counters`` / ``rates`` — campus-wide deltas (opens, fetches,
      stores, validations, cache hits/misses, evictions, callback breaks,
      disk ops, RPC calls, kernel events) and their per-second rates;
    * ``hit_ratio`` — the *windowed* cache hit ratio (this window's hits
      over this window's lookups);
    * ``latency`` — p50/p99/mean over the RPC latency samples recorded in
      this window only;
    * ``hosts`` — per-host windowed CPU/disk utilization and RPC call
      deltas;
    * ``volumes`` / ``users`` / ``servers`` — traffic deltas for top-K
      ranking (:meth:`top`);
    * ``availability`` — failure/success deltas and active-fault gauges,
      when a fault plan is installed;
    * ``overhead_us`` — the wall-clock microseconds this very sample cost.

    Reads are fault-tolerant: an instrument whose provider raises (its
    component crashed or was replaced mid-run) is skipped for that window,
    matching :meth:`MetricsRegistry.snapshot`'s hardening.
    """

    def __init__(self, metrics, maxlen: int = 256):
        self.metrics = metrics
        self.windows: deque = deque(maxlen=maxlen)
        self._prev_totals: Dict[str, float] = {}
        self._prev_t: Optional[float] = None
        self._hist_cursor: Dict[str, int] = {}
        self._classified = -1
        self._buckets: Dict[str, List[str]] = {}
        self.samples_taken = 0
        self.overhead_us = Samples("aggregator-overhead-us")
        self._sampler_installed = False

    # -- classification ----------------------------------------------------

    def _classify(self) -> None:
        """Map instrument names to read buckets; refreshed when the
        instrument set changes (components appear on crash/recover)."""
        buckets: Dict[str, List[str]] = {key: [] for key in _CAMPUS_COUNTERS}
        buckets.update(rpc_calls=[], volume_traffic=[], usage_by_user=[],
                       latency=[], host_util=[], availability=[])
        for name in self.metrics.names():
            if ".latency." in name:
                buckets["latency"].append(name)
                continue
            if name.startswith("host.") and (name.endswith(".cpu")
                                             or name.endswith(".disk")):
                buckets["host_util"].append(name)
                continue
            if name.endswith(".volume_traffic"):
                buckets["volume_traffic"].append(name)
                continue
            if name.endswith(".usage_by_user"):
                buckets["usage_by_user"].append(name)
                continue
            if name.startswith("rpc.") and name.endswith(".calls_received"):
                buckets["rpc_calls"].append(name)
                continue
            if name.startswith("availability.") or name.startswith("faults."):
                buckets["availability"].append(name)
                continue
            for key, suffix in _CAMPUS_COUNTERS.items():
                if name.endswith(suffix):
                    buckets[key].append(name)
                    break
        self._buckets = buckets
        self._classified = len(self.metrics)

    # -- reading helpers ---------------------------------------------------

    def _read(self, name: str) -> Any:
        """An instrument's raw provider value, or None when unavailable."""
        instrument = self.metrics.get(name)
        if instrument is None:
            return None
        try:
            return instrument.provider()
        except Exception:
            return None

    def _total_of(self, value: Any) -> float:
        if value is None:
            return 0.0
        if hasattr(value, "as_dict"):  # sim.metrics.Counter
            return float(sum(value.as_dict().values()))
        if isinstance(value, dict):
            return float(sum(value.values()))
        return float(value)

    def _delta(self, name: str, total: float) -> float:
        previous = self._prev_totals.get(name, 0.0)
        self._prev_totals[name] = total
        # Counter resets (end of warm-up) would read as negative deltas;
        # clamp so a reset window reports zero instead of nonsense.
        return max(0.0, total - previous)

    # -- sampling ----------------------------------------------------------

    def sample(self, now: float) -> Dict[str, Any]:
        """Take one window reading at virtual time ``now``."""
        wall_start = time.perf_counter()
        if self._classified != len(self.metrics):
            self._classify()
        buckets = self._buckets
        prev_t = self._prev_t if self._prev_t is not None else now
        dt = max(now - prev_t, 0.0)
        safe_dt = dt if dt > 0 else 1.0

        counters: Dict[str, float] = {}
        for key in _CAMPUS_COUNTERS:
            total = 0.0
            for name in buckets[key]:
                total += self._delta(name, self._total_of(self._read(name)))
            counters[key] = total

        # Per-host RPC call deltas (servers dominate; the console filters).
        servers: Dict[str, float] = {}
        rpc_total = 0.0
        for name in buckets["rpc_calls"]:
            delta = self._delta(name, self._total_of(self._read(name)))
            host = name.split(".")[1]
            servers[host] = servers.get(host, 0.0) + delta
            rpc_total += delta
        counters["rpc_calls"] = rpc_total

        # Kernel events come straight off the registry too.
        events_delta = self._delta(
            "sim.kernel.events", self._total_of(self._read("sim.kernel.events"))
        )

        # Labelled traffic deltas: volumes aggregate over "volume|segment"
        # labels, users over usernames.
        volumes = self._labelled_deltas(buckets["volume_traffic"],
                                        split_label=True)
        users = self._labelled_deltas(buckets["usage_by_user"])

        # Windowed latency percentiles over this window's new samples only.
        latency_values: List[float] = []
        for name in buckets["latency"]:
            bag = self._read(name)
            if not isinstance(bag, Samples):
                continue
            cursor = self._hist_cursor.get(name, 0)
            fresh = bag.since(cursor)
            self._hist_cursor[name] = cursor + len(fresh)
            latency_values.extend(fresh)
        latency = _distribution(latency_values)

        # Windowed per-host utilization from the trackers themselves.
        hosts: Dict[str, Dict[str, float]] = {}
        for name in buckets["host_util"]:
            tracker = self._read(name)
            if not isinstance(tracker, UtilizationTracker):
                continue
            _, host, resource = name.split(".", 2)
            entry = hosts.setdefault(host, {})
            try:
                entry[resource] = tracker.mean_utilization(start=prev_t, end=now)
            except Exception:  # a crashed host's clock can be mid-replacement
                entry[resource] = 0.0
        for host, calls in servers.items():
            hosts.setdefault(host, {})["calls"] = calls

        window: Dict[str, Any] = {
            "t": now,
            "dt": dt,
            "events": events_delta,
            "events_per_s": events_delta / safe_dt,
            "counters": counters,
            "rates": {key: value / safe_dt for key, value in counters.items()},
            "hit_ratio": _ratio(counters["cache_hits"],
                                counters["cache_hits"] + counters["cache_misses"]),
            "latency": latency,
            "hosts": hosts,
            "volumes": volumes,
            "users": users,
            "servers": servers,
        }
        if buckets["availability"]:
            window["availability"] = self._availability_window()
        self._prev_t = now
        self.samples_taken += 1
        overhead = (time.perf_counter() - wall_start) * 1e6
        window["overhead_us"] = overhead
        self.overhead_us.add(overhead)
        self.windows.append(window)
        return window

    def _labelled_deltas(self, names: List[str],
                         split_label: bool = False) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name in names:
            value = self._read(name)
            counts = (value.as_dict() if hasattr(value, "as_dict")
                      else value if isinstance(value, dict) else None)
            if counts is None:
                continue
            for label, count in counts.items():
                key = label.partition("|")[0] if split_label else label
                cursor_key = f"{name}|{label}"
                delta = self._delta(cursor_key, float(count))
                if delta:
                    out[key] = out.get(key, 0.0) + delta
        return out

    def _availability_window(self) -> Dict[str, float]:
        ops = self._read("availability.ops")
        ops = ops if isinstance(ops, dict) else {}
        failures = self._delta("availability.ops|failure",
                               float(ops.get("failure", 0)))
        successes = self._delta("availability.ops|success",
                                float(ops.get("success", 0)))
        events = self._read("availability.events")
        events = events if isinstance(events, dict) else {}
        faults_delta = self._delta("availability.events|faults_injected",
                                   float(events.get("faults_injected", 0)))
        recoveries_delta = self._delta("availability.events|recoveries",
                                       float(events.get("recoveries", 0)))
        return {
            "failures": failures,
            "successes": successes,
            "faults_injected": faults_delta,
            "recoveries": recoveries_delta,
            "open_outages": self._total_of(self._read("availability.open_outages")),
            "active_faults": self._total_of(self._read("faults.active")),
        }

    # -- optional kernel-driven sampling -----------------------------------

    def install_sampler(self, sim, every: float) -> None:
        """Spawn a kernel process that samples every ``every`` virtual
        seconds.  The process only reads — it draws no randomness and
        charges no simulated resources — so other events' relative order
        and every seeded draw are unchanged.  Used by the ``--window``
        CLI flags; the console and soak drivers sample from *outside* the
        kernel instead and need no process at all.
        """
        if self._sampler_installed:
            raise SimulationError("aggregator sampler already installed")
        if every <= 0:
            raise SimulationError(f"sampler interval {every!r} must be positive")
        self._sampler_installed = True

        def loop():
            while True:
                yield sim.timeout(every)
                self.sample(sim.now)

        sim.process(loop(), name="obs:rolling-sampler")

    # -- reading -----------------------------------------------------------

    @property
    def last(self) -> Optional[Dict[str, Any]]:
        """The most recent window (None before the first sample)."""
        return self.windows[-1] if self.windows else None

    def top(self, field: str, k: int = 5,
            cumulative: bool = True) -> List[Tuple[str, float]]:
        """Top-``k`` (name, delta) for ``field`` in {volumes, users, servers}.

        ``cumulative`` sums over every retained window; otherwise only the
        most recent window counts.
        """
        totals: Dict[str, float] = {}
        windows = list(self.windows) if cumulative else list(self.windows)[-1:]
        for window in windows:
            for name, delta in window.get(field, {}).items():
                totals[name] = totals.get(name, 0.0) + delta
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def series(self, key: str, n: Optional[int] = None) -> List[float]:
        """The trend of one ``rates`` entry (or ``hit_ratio`` /
        ``events_per_s``) across retained windows, oldest first."""
        windows = list(self.windows)
        if n is not None:
            windows = windows[-n:]
        out = []
        for window in windows:
            if key in window:
                out.append(window[key])
            else:
                out.append(window["rates"].get(key, 0.0))
        return out

    def peak(self, key: str) -> float:
        """The highest per-window value of a rate/series key."""
        values = self.series(key)
        return max(values) if values else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RollingAggregator windows={len(self.windows)} "
                f"instruments={len(self.metrics)}>")


def _ratio(part: float, whole: float) -> float:
    return part / whole if whole else 0.0


def _distribution(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0}
    ordered = sorted(values)
    count = len(ordered)

    def pct(q: float) -> float:
        rank = min(count - 1, max(0, int(q * count + 0.999999) - 1))
        return ordered[rank]

    return {
        "count": count,
        "mean": sum(ordered) / count,
        "p50": pct(0.50),
        "p99": pct(0.99),
    }


class OpsEventStream:
    """Structured operational events, buffered and optionally JSONL-streamed.

    Event records are flat JSON objects with at least ``t`` (virtual
    seconds) and ``event`` (the type).  Types emitted today:

    ``fault`` / ``recovery`` / ``salvage``
        straight from the fault scheduler via the availability tracker's
        listener hook, with ``kind``/``target`` and injector detail;
    ``outage_begin`` / ``outage_end``
        a user's first failed operation / the next success (``outage_end``
        carries ``duration`` and ``failures``);
    ``callback_break_storm`` / ``cache_pressure``
        derived from an aggregator window by :meth:`scan` when the break
        or eviction rate crosses its threshold;
    ``operator``
        console actions (crash/partition/chaos requests), so an exported
        stream records *why* a fault appeared;
    ``soak``
        soak-driver lifecycle marks (window boundaries, violations).

    The in-memory buffer is a bounded deque; with ``path`` (or an open
    ``stream``) each event is also written immediately as one JSON line.
    """

    def __init__(self, sim, path: Optional[str] = None,
                 stream: Optional[IO[str]] = None, maxlen: int = 4096,
                 break_storm_rate: float = 10.0,
                 eviction_rate: float = 5.0):
        self.sim = sim
        self.events: deque = deque(maxlen=maxlen)
        self.emitted = 0
        self.break_storm_rate = break_storm_rate
        self.eviction_rate = eviction_rate
        self._handle: Optional[IO[str]] = stream
        self._owns_handle = False
        if path:
            self._handle = open(path, "w")
            self._owns_handle = True
        self._tracker = None

    # -- emission ----------------------------------------------------------

    def emit(self, event: str, **fields) -> Dict[str, Any]:
        """Record one event; ``t`` defaults to the current virtual time."""
        record = {"t": fields.pop("t", self.sim.now), "event": event}
        record.update(fields)
        self.events.append(record)
        self.emitted += 1
        if self._handle is not None:
            json.dump(record, self._handle, sort_keys=True)
            self._handle.write("\n")
        return record

    def tail(self, n: int = 10) -> List[Dict[str, Any]]:
        """The most recent ``n`` events, oldest first."""
        return list(self.events)[-n:]

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()
            self._handle = None

    # -- availability hook -------------------------------------------------

    def attach_availability(self, tracker) -> None:
        """Subscribe to a tracker's fault/recovery/outage hooks."""
        self._tracker = tracker
        tracker.listener = self._on_availability_event

    def _on_availability_event(self, record: Dict[str, Any]) -> None:
        record = dict(record)
        event = record.pop("event")
        self.emit(event, **record)

    # -- derived events ----------------------------------------------------

    def scan(self, window: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Derive threshold events from one aggregator window."""
        derived = []
        rates = window.get("rates", {})
        if rates.get("callback_breaks", 0.0) > self.break_storm_rate:
            derived.append(self.emit(
                "callback_break_storm", t=window["t"],
                rate_per_s=round(rates["callback_breaks"], 3),
                threshold=self.break_storm_rate,
            ))
        if rates.get("evictions", 0.0) > self.eviction_rate:
            derived.append(self.emit(
                "cache_pressure", t=window["t"],
                evictions_per_s=round(rates["evictions"], 3),
                threshold=self.eviction_rate,
            ))
        return derived

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OpsEventStream buffered={len(self.events)} emitted={self.emitted}>"
