"""A unified, named metrics registry for every campus component.

Before this module existed, reading the campus meant attribute spelunking:
``venus.cache.hits`` here, ``server.node.calls_received.total`` there, a
``volume_traffic`` counter somewhere else.  The registry replaces that with
**named, typed instruments** registered by each component at construction
time and read through one campus-wide :meth:`MetricsRegistry.snapshot`.

Instrument kinds (each built on an existing :mod:`repro.sim.metrics`
primitive):

* **counter** — monotonically increasing event counts, possibly labelled
  (wraps :class:`~repro.sim.metrics.Counter` or a plain integer);
* **gauge** — a point-in-time value read at snapshot time;
* **histogram** — a latency/size distribution with percentiles (wraps
  :class:`~repro.sim.metrics.Samples`);
* **utilization** — mean/peak busy fractions (wraps
  :class:`~repro.sim.metrics.UtilizationTracker`).

Every instrument is registered against a *provider*: a zero-argument
callable returning the live object or value.  Providers are closures over
the owning component (``lambda: self.cache.hits``), so instruments survive
counter resets and object replacement (``ITCSystem.reset_counters``,
post-crash registry rebuilds) without re-registration.

Naming scheme: ``<component>.<instance>.<metric>[.<sub>]`` with dot-joined
lowercase segments, e.g. ``venus.ws0-0.cache.hits``,
``rpc.server0.latency.FetchByFid``, ``vice.server0.callbacks.held``.  See
``docs/observability.md`` for the full catalogue.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro.sim.metrics import Counter, Samples, UtilizationTracker

__all__ = ["Instrument", "MetricsRegistry"]

Provider = Callable[[], Any]


class Instrument:
    """One named, typed metric: a kind plus a live-value provider."""

    __slots__ = ("name", "kind", "provider")

    def __init__(self, name: str, kind: str, provider: Provider):
        self.name = name
        self.kind = kind
        self.provider = provider

    def read(self) -> Dict[str, Any]:
        """The instrument's current value as a JSON-ready dict."""
        value = self.provider()
        if self.kind == "counter":
            if isinstance(value, Counter):
                counts = value.as_dict()
                return {"type": "counter", "total": sum(counts.values()),
                        "counts": counts}
            if isinstance(value, dict):
                return {"type": "counter", "total": sum(value.values()),
                        "counts": dict(value)}
            return {"type": "counter", "total": int(value)}
        if self.kind == "gauge":
            return {"type": "gauge", "value": value}
        if self.kind == "histogram":
            samples: Samples = value
            return {
                "type": "histogram",
                "count": len(samples),
                "total": samples.total,
                "mean": samples.mean,
                "min": samples.minimum,
                "max": samples.maximum,
                "p50": samples.percentile(0.50),
                "p90": samples.percentile(0.90),
                "p99": samples.percentile(0.99),
            }
        if self.kind == "utilization":
            tracker: UtilizationTracker = value
            return {
                "type": "utilization",
                "mean": tracker.mean_utilization(),
                "peak": tracker.peak_utilization(),
            }
        raise ValueError(f"unknown instrument kind {self.kind!r}")

    def read_safe(self) -> Dict[str, Any]:
        """Like :meth:`read`, but a dead provider reads as unavailable.

        Providers are closures over live components; after a host crash or
        a component replacement a closure can dangle (AttributeError on a
        torn-down object, KeyError on a dropped volume...).  A snapshot of
        the *whole* campus must not be held hostage by one dead instrument,
        so the failure is recorded in-band instead of propagating.
        """
        try:
            return self.read()
        except Exception:
            return {"type": self.kind, "unavailable": True}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instrument {self.kind} {self.name}>"


def _provider_for(source: Any) -> Provider:
    return source if callable(source) else (lambda: source)


class MetricsRegistry:
    """All instruments of one simulated campus, under one namespace."""

    def __init__(self):
        self._instruments: Dict[str, Instrument] = {}

    # -- registration ------------------------------------------------------

    def _register(self, name: str, kind: str, provider: Provider) -> Instrument:
        # Re-registration replaces: a component rebuilt on the same host
        # (tests, crash/recover cycles) owns its name.
        instrument = Instrument(name, kind, provider)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, source: Union[Counter, int, Provider]) -> Instrument:
        """Register a counter; ``source`` is a Counter, int, or callable."""
        return self._register(name, "counter", _provider_for(source))

    def gauge(self, name: str, source: Union[Provider, float]) -> Instrument:
        """Register a gauge; ``source`` is usually a closure over live state."""
        return self._register(name, "gauge", _provider_for(source))

    def histogram(self, name: str, samples: Optional[Samples] = None) -> Samples:
        """Register (or fetch) a histogram; returns its ``Samples`` bag.

        Calling twice with the same name returns the existing bag, so
        call sites can create distributions lazily (per RPC procedure).
        """
        existing = self._instruments.get(name)
        if existing is not None and existing.kind == "histogram":
            bag = existing.provider()
            if isinstance(bag, Samples):
                return bag
        bag = samples if samples is not None else Samples(name)
        self._register(name, "histogram", lambda: bag)
        return bag

    def utilization(self, name: str,
                    source: Union[UtilizationTracker, Provider]) -> Instrument:
        """Register a utilization tracker (mean + peak at snapshot)."""
        return self._register(name, "utilization", _provider_for(source))

    def unregister(self, prefix: str) -> int:
        """Drop every instrument whose name starts with ``prefix``."""
        doomed = [name for name in self._instruments if name.startswith(prefix)]
        for name in doomed:
            del self._instruments[name]
        return len(doomed)

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def names(self, prefix: str = "") -> List[str]:
        """Sorted instrument names, optionally filtered by prefix."""
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def value(self, name: str) -> Dict[str, Any]:
        """One instrument's current reading (raises KeyError if absent)."""
        return self._instruments[name].read()

    def histograms(self, prefix: str = "") -> Dict[str, Samples]:
        """The live ``Samples`` bags under a prefix (for aggregation)."""
        found = {}
        for name in self.names(prefix):
            instrument = self._instruments[name]
            if instrument.kind == "histogram":
                bag = instrument.provider()
                if isinstance(bag, Samples):
                    found[name] = bag
        return found

    def snapshot(self, prefix: str = "") -> Dict[str, Dict[str, Any]]:
        """Every instrument's current reading, as one JSON-ready dict.

        This is the single read surface the dashboard, the CLI's
        ``--metrics-json`` flag, and the benchmark harness use.  An
        instrument whose provider raises (dead closure after a host crash
        or component replacement) is reported as
        ``{"type": <kind>, "unavailable": True}`` rather than poisoning
        the whole snapshot.
        """
        return {name: self._instruments[name].read_safe()
                for name in self.names(prefix)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry instruments={len(self._instruments)}>"
