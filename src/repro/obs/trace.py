"""Causal request tracing for the simulated campus.

The paper's §3.6 asks for "monitoring tools ... to ease day-to-day
operations"; this module is the causal half of that answer.  A
:class:`TraceRecorder` collects **spans** — named intervals of virtual time
with parent/child links — threaded from the Venus syscall surface, through
the RPC fabric (the trace context rides on the :class:`~repro.rpc.messages.
Envelope`, exactly like a trace header on a real wire), into the Vice
server's operation handlers and down to individual disk accesses.  The
result is a tree per user-visible operation::

    venus.open /vice/usr/u/f
      rpc.call:FetchByFid  ws0-0 -> server0
        rpc.serve:FetchByFid  server0
          vice.fetch  fid=u-u:7
            disk.access  12288 B

Three design rules keep the instrument honest:

* **Zero cost when off.**  The default recorder on every simulator is the
  shared :data:`NULL_RECORDER`; its ``span()`` returns one preallocated
  no-op context manager, so untraced runs allocate nothing.  Hot paths may
  additionally guard on ``tracer.enabled``.
* **Virtual time is never perturbed.**  Recording only *reads* the clock
  (``sim.now`` plus a wall clock); it schedules no events, charges no CPU
  and draws no randomness, so every EXP table is byte-identical with
  tracing on or off.
* **Correct parentage under interleaving.**  Simulation processes
  interleave at every ``yield``, so a single global span stack would
  mis-attribute children.  The recorder keeps one stack per simulation
  process (the kernel exposes :attr:`Simulator.active_process`), and
  cross-process edges — an RPC hop, a spawned callback break — carry the
  parent explicitly.

Spans export as JSONL (one span per line) or as a Chrome-trace file that
loads directly in ``chrome://tracing`` and Perfetto.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "chrome_trace",
    "validate_coverage",
    "write_chrome_trace",
    "write_jsonl",
]


class Span:
    """One named interval of virtual time within a trace tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "component",
        "host",
        "start",
        "end",
        "wall_elapsed",
        "attrs",
        "error",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        component: str,
        host: str,
        start: float,
        attrs: Dict[str, Any],
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.component = component
        self.host = host
        self.start = start
        self.end = start
        # Wall seconds elapsed while the span was open.  In a discrete-event
        # simulation this includes interleaved work by other processes; it is
        # a cost attribution aid, not an exclusive-time measurement.
        self.wall_elapsed = 0.0
        self.attrs = attrs
        self.error = ""

    @property
    def duration(self) -> float:
        """Virtual seconds covered by the span."""
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-ready record of the span."""
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "host": self.host,
            "start": self.start,
            "duration": self.duration,
            "wall_elapsed": self.wall_elapsed,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.error:
            record["error"] = self.error
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} id={self.span_id} parent={self.parent_id}"
            f" t={self.start:.6f}+{self.duration:.6f}>"
        )


class _NullSpan:
    """The shared do-nothing span context (and span) of the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, **attrs) -> None:
        """Ignore attributes."""

    def rename(self, name: str) -> None:
        """Ignore renames."""


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: tracing off, every operation a no-op.

    ``span()`` always returns the same preallocated context manager, so an
    untraced simulation pays one method call per instrumented site and
    allocates nothing — the overhead guard in the test suite pins this.
    """

    enabled = False
    spans: Tuple = ()

    __slots__ = ()

    def span(self, name: str, component: str = "", host: str = "",
             parent=None, **attrs) -> _NullSpan:
        """A no-op span context."""
        return _NULL_SPAN

    def current(self) -> None:
        """There is never a current span."""
        return None

    def context(self) -> None:
        """There is never a propagable context."""
        return None

    def attach(self, sim) -> "NullRecorder":
        """Install this recorder on ``sim`` (idempotent for the null)."""
        sim.tracer = self
        return self


NULL_RECORDER = NullRecorder()


class _LiveSpan:
    """Context manager driving one real span on a :class:`TraceRecorder`."""

    __slots__ = ("_recorder", "_span", "_stack", "_wall_start")

    def __init__(self, recorder: "TraceRecorder", name: str, component: str,
                 host: str, parent, attrs: Dict[str, Any]):
        recorder._ids += 1
        span_id = recorder._ids
        if parent is None:
            parent = recorder.current()
        if parent is None:
            recorder._traces += 1
            trace_id, parent_id = recorder._traces, None
        elif isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:  # a propagated (trace_id, span_id) context, e.g. off an Envelope
            trace_id, parent_id = parent
        self._recorder = recorder
        self._span = Span(trace_id, span_id, parent_id, name, component, host,
                          recorder.sim.now, attrs)
        stack = recorder._stack()
        stack.append(self._span)
        self._stack = stack
        self._wall_start = recorder._wall()

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        recorder = self._recorder
        span = self._span
        span.end = recorder.sim.now
        span.wall_elapsed = recorder._wall() - self._wall_start
        if exc is not None:
            span.error = f"{type(exc).__name__}: {exc}"
        try:
            self._stack.remove(span)
        except ValueError:  # pragma: no cover - defensive: double exit
            pass
        recorder.spans.append(span)
        recorder._drop_if_empty(self._stack)
        return False

    def add(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. hit vs miss)."""
        self._span.attrs.update(attrs)

    def rename(self, name: str) -> None:
        """Refine the span name once it is known (e.g. after RPC decode)."""
        self._span.name = name

    @property
    def span(self) -> Span:
        """The underlying span record."""
        return self._span


class TraceRecorder:
    """Collects spans from one simulation (attach with ``sim.tracer = r``)."""

    enabled = True

    def __init__(self, sim, wall_clock=time.perf_counter):
        self.sim = sim
        self.spans: List[Span] = []
        self._wall = wall_clock
        self._ids = 0
        self._traces = 0
        # One span stack per simulation process; ``None`` keys spans opened
        # outside any process (setup code, tests driving generators by hand).
        self._stacks: Dict[Any, List[Span]] = {}
        sim.tracer = self

    def attach(self, sim) -> "TraceRecorder":
        """Move the recorder to another simulator (multi-run trace files).

        Span and trace ids keep counting up, so spans from successive
        simulations coexist in one export without id collisions.
        """
        self.sim = sim
        sim.tracer = self
        return self

    # -- context -----------------------------------------------------------

    def _stack(self) -> List[Span]:
        key = getattr(self.sim, "active_process", None)
        stack = self._stacks.get(key)
        if stack is None:
            stack = self._stacks[key] = []
        return stack

    def _drop_if_empty(self, stack: List[Span]) -> None:
        if not stack:
            for key, value in list(self._stacks.items()):
                if value is stack:
                    del self._stacks[key]
                    break

    def current(self) -> Optional[Span]:
        """The innermost open span of the currently running process."""
        stack = self._stacks.get(getattr(self.sim, "active_process", None))
        return stack[-1] if stack else None

    def context(self) -> Optional[Tuple[int, int]]:
        """The ``(trace_id, span_id)`` pair to propagate across a hop."""
        span = self.current()
        return (span.trace_id, span.span_id) if span is not None else None

    def span(self, name: str, component: str = "", host: str = "",
             parent=None, **attrs) -> _LiveSpan:
        """Open a span; use as ``with tracer.span(...) as span:``.

        ``parent`` overrides the ambient (per-process) parent: pass a
        :class:`Span` when handing work to a spawned process, or a
        ``(trace_id, span_id)`` tuple received from a peer.
        """
        return _LiveSpan(self, name, component, host, parent, attrs)

    # -- export ------------------------------------------------------------

    def write_jsonl(self, path: str) -> None:
        """One span per line, JSON, in completion order."""
        write_jsonl(self.spans, path)

    def write_chrome_trace(self, path: str) -> None:
        """A ``chrome://tracing`` / Perfetto-loadable trace file."""
        write_chrome_trace(self.spans, path)


# ---------------------------------------------------------------------------
# export formats
# ---------------------------------------------------------------------------


def write_jsonl(spans: Iterable[Span], path: str) -> None:
    """Write spans as JSON Lines."""
    with open(path, "w") as handle:
        for span in spans:
            handle.write(json.dumps(span.as_dict(), sort_keys=True))
            handle.write("\n")


def chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Spans as a Chrome-trace object (``{"traceEvents": [...]}``).

    Components map to trace "processes" and hosts to "threads", named via
    metadata events, so Perfetto renders one swim-lane per host grouped by
    layer.  Timestamps are virtual microseconds.
    """
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    for span in spans:
        component = span.component or "misc"
        host = span.host or "-"
        pid = pids.get(component)
        if pid is None:
            pid = pids[component] = len(pids) + 1
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": component}})
        tid = tids.get((component, host))
        if tid is None:
            tid = tids[(component, host)] = len(tids) + 1
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": host}})
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "wall_ms": round(span.wall_elapsed * 1000.0, 3),
        }
        args.update(span.attrs)
        if span.error:
            args["error"] = span.error
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": component,
            "pid": pid,
            "tid": tid,
            "ts": round(span.start * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path: str) -> None:
    """Write the Chrome-trace JSON for ``spans`` to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(spans), handle)
        handle.write("\n")


# ---------------------------------------------------------------------------
# coverage validation (used by ``make trace-smoke`` and the tests)
# ---------------------------------------------------------------------------

_FETCH_SERVES = {"rpc.serve:Fetch", "rpc.serve:FetchByFid"}
_STORE_SERVES = {"rpc.serve:Store", "rpc.serve:StoreByFid", "rpc.serve:CreateByFid"}


def _ancestry(span: Span, by_id: Dict[int, Span]) -> List[Span]:
    chain = []
    cursor: Optional[Span] = span
    seen = set()
    while cursor is not None and cursor.span_id not in seen:
        seen.add(cursor.span_id)
        chain.append(cursor)
        cursor = by_id.get(cursor.parent_id) if cursor.parent_id else None
    return chain


def _covers(spans: List[Span], serve_names: set, client_root: str) -> bool:
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        if span.name != "disk.access":
            continue
        names = [ancestor.name for ancestor in _ancestry(span, by_id)]
        if (
            any(name in serve_names for name in names)
            and any(name.startswith("rpc.call:") for name in names)
            and any(name.startswith(client_root) for name in names)
        ):
            return True
    return False


def validate_coverage(spans: Iterable[Span]) -> List[str]:
    """Check a trace covers open→RPC→server→disk for a fetch and a store.

    Returns a list of failure messages (empty means the trace is complete).
    """
    spans = list(spans)
    problems = []
    if not spans:
        return ["trace contains no spans"]
    if not _covers(spans, _FETCH_SERVES, "venus.open"):
        problems.append(
            "no Fetch chain: need disk.access under rpc.serve:Fetch* under "
            "rpc.call:* under venus.open"
        )
    if not _covers(spans, _STORE_SERVES, "venus."):
        problems.append(
            "no Store chain: need disk.access under rpc.serve:Store*/Create* "
            "under rpc.call:* under a venus span"
        )
    return problems
