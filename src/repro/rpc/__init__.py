"""RPC package: authenticated, encrypted calls with whole-file side effects."""

from repro.rpc.connection import Connection
from repro.rpc.costs import EncryptionMode, RpcCosts
from repro.rpc.messages import Envelope, Kind
from repro.rpc.node import RpcNode

__all__ = [
    "Connection",
    "EncryptionMode",
    "Envelope",
    "Kind",
    "RpcCosts",
    "RpcNode",
]
