"""Connection state shared by the two ends of an authenticated RPC channel.

"After mutual authentication Vice and Virtue communicate only via encrypted
messages" — a :class:`Connection` holds the session key produced by the
handshake and one :class:`~repro.crypto.cipher.SessionCipher` per direction.
Connections are *bidirectional*: Venus calls Vice for fetch/store, and Vice
calls back over the same channel to break callbacks in the revised design.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.cipher import SessionCipher, open_sealed
from repro.errors import NotAuthenticated
from repro.rpc.costs import EncryptionMode

__all__ = ["Connection"]


class Connection:
    """One authenticated channel between a client node and a server node."""

    def __init__(
        self,
        connection_id: str,
        client_name: str,
        server_name: str,
        username: str,
        encryption: str,
    ):
        self.connection_id = connection_id
        self.client_name = client_name
        self.server_name = server_name
        self.username = username
        self.encryption = encryption
        self.session_key: Optional[bytes] = None
        self._ciphers = {}
        self.established = False
        self.closed = False
        self.calls_made = 0

    def peer_of(self, node_name: str) -> str:
        """The other endpoint's node name."""
        return self.server_name if node_name == self.client_name else self.client_name

    def establish(self, session_key: bytes) -> None:
        """Install the session key negotiated by the handshake."""
        self.session_key = session_key
        self._ciphers = {
            self.client_name: SessionCipher(session_key, direction=0),
            self.server_name: SessionCipher(session_key, direction=1),
        }
        self.established = True

    def encrypt(self, sender_name: str, plaintext: bytes, fast: bool = False) -> bytes:
        """Seal bytes for the wire (identity when encryption is off).

        With ``fast`` the result is a plaintext-remembering
        :class:`~repro.crypto.cipher.SealedPayload` (wire-identical bytes),
        so an in-process receiver's :meth:`decrypt` verifies the tag without
        re-deriving the keystream.
        """
        if self.encryption == EncryptionMode.NONE:
            return plaintext
        if not self.established:
            raise NotAuthenticated(f"connection {self.connection_id} not established")
        cipher = self._ciphers[sender_name]
        if fast:
            return cipher.seal_payload(plaintext)
        return cipher.encrypt(plaintext)

    def decrypt(self, sealed: bytes) -> bytes:
        """Open bytes from the wire (identity when encryption is off).

        Fast-path aware: always verifies the authentication tag."""
        if self.encryption == EncryptionMode.NONE:
            return sealed
        if not self.established:
            raise NotAuthenticated(f"connection {self.connection_id} not established")
        return open_sealed(self.session_key, sealed)

    def encrypt_payload(self, sender_name: str, payload: bytes, fast: bool = False) -> bytes:
        """Seal a whole-file payload for the wire.

        With ``fast`` the sealed buffer is a
        :class:`~repro.crypto.cipher.SealedPayload` that remembers its
        plaintext, so the receiving end of an in-process transfer verifies
        the tag without re-deriving the keystream.  The wire bytes are
        identical either way.
        """
        if self.encryption == EncryptionMode.NONE:
            return payload
        if not self.established:
            raise NotAuthenticated(f"connection {self.connection_id} not established")
        cipher = self._ciphers[sender_name]
        if fast:
            return cipher.seal_payload(payload)
        return cipher.encrypt(payload)

    def decrypt_payload(self, sealed: bytes) -> bytes:
        """Open a whole-file payload (fast-path aware, always verifies)."""
        if self.encryption == EncryptionMode.NONE:
            return sealed
        if not self.established:
            raise NotAuthenticated(f"connection {self.connection_id} not established")
        return open_sealed(self.session_key, sealed)

    def close(self) -> None:
        """Tear the connection down; further calls are rejected."""
        self.closed = True
        self.established = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "established" if self.established else "pending"
        return (
            f"<Connection {self.connection_id} {self.client_name}->"
            f"{self.server_name} user={self.username} {state}>"
        )
