"""Cost model for the RPC package.

These constants are the calibration surface of the whole reproduction: they
encode the relative prices of CPU, wire and crypto work that the paper's
measurements imply.  ``repro.system.calibration`` documents how the defaults
were fitted to the paper's absolute anchors (a ~1000 s local benchmark, 80 %
remote penalty, 40 % busiest-server CPU).

All times are seconds of work on a reference 1-unit CPU (see
:class:`repro.hosts.Host`); rates are bytes per second on the same scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["EncryptionMode", "RpcCosts"]


class EncryptionMode:
    """How connection traffic is protected, and at what CPU price."""

    NONE = "none"  # insecure: measurement baseline only
    SOFTWARE = "software"  # "software encryption is too slow to be viable"
    HARDWARE = "hardware"  # the VLSI chips the paper is waiting for


def _default_encrypt_rates() -> Dict[str, float]:
    return {
        EncryptionMode.NONE: float("inf"),
        EncryptionMode.SOFTWARE: 75_000.0,  # bytes/s: era software DES
        EncryptionMode.HARDWARE: 4_000_000.0,  # bytes/s: era DES chip
    }


@dataclass(frozen=True)
class RpcCosts:
    """Prices charged by the RPC layer (see module docstring)."""

    # Wire overhead of one RPC envelope beyond the marshalled body/payload.
    envelope_bytes: int = 96
    # CPU to build/parse one call at the client (stub, syscall crossing).
    client_stub_cpu: float = 0.003
    # CPU to demultiplex + dispatch one call at the server.
    server_dispatch_cpu: float = 0.004
    # One Unix context switch (prototype per-client process server).
    context_switch_cpu: float = 0.004
    # Switches per served call in the prototype (in to worker, out of worker).
    switches_per_call: int = 2
    # Connection establishment beyond the handshake messages themselves.
    stream_setup_cpu: float = 0.030  # kernel socket + per-connection state
    datagram_setup_cpu: float = 0.006
    # Per-user-key handshake crypto work (3 small sealed messages).
    handshake_cpu: float = 0.010
    # Encryption throughput per mode.
    encrypt_rates: Dict[str, float] = field(default_factory=_default_encrypt_rates)
    # Datagram loss and recovery.
    loss_probability: float = 0.0
    retransmit_timeout: float = 2.0
    max_retries: int = 3
    # Exponential backoff between retransmissions: attempt k waits
    # base * backoff**k, scattered by +/- jitter (a fraction) drawn from
    # the node's seeded generator so replays stay byte-identical.  The
    # defaults (1.0, 0.0) reproduce the original fixed per-attempt
    # timeout exactly and draw no randomness at all; replicated
    # topologies turn backoff on (see repro.system.topology).
    retransmit_backoff: float = 1.0
    retransmit_jitter: float = 0.0

    def encrypt_seconds(self, mode: str, nbytes: int) -> float:
        """CPU seconds to encrypt or decrypt ``nbytes`` under ``mode``."""
        rate = self.encrypt_rates[mode]
        if rate == float("inf") or nbytes <= 0:
            return 0.0
        return nbytes / rate

    def with_(self, **changes) -> "RpcCosts":
        """A copy with selected fields replaced (for ablation benches)."""
        return replace(self, **changes)

    @classmethod
    def prototype(cls) -> "RpcCosts":
        """The prototype's RPC: byte streams over heavyweight Unix processes.

        Per-call costs are an order of magnitude above the revised path —
        this is the measured reality of §5.2, where a modest user community
        drove server CPUs to 98 % peaks and the benchmark ran 80 % slower
        remote than local.
        """
        return cls(
            client_stub_cpu=0.115,
            server_dispatch_cpu=0.260,
            context_switch_cpu=0.072,
            switches_per_call=4,
            stream_setup_cpu=0.500,
            handshake_cpu=0.150,
        )

    @classmethod
    def revised(cls) -> "RpcCosts":
        """The revised RPC: datagrams + LWPs in one server process."""
        return cls()
