"""A small self-describing binary marshalling format (the system's "XDR").

RPC arguments and results really are serialized to bytes and parsed back —
the encrypted connection carries these bytes, so tests can demonstrate that
an eavesdropper on the LAN sees only ciphertext while the endpoints see
structured values.

Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
``list``, ``tuple`` (decoded as list) and ``dict`` with ``str`` keys.  Each
value is a one-byte tag followed by a fixed or length-prefixed body.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from repro.errors import ReproError

__all__ = ["MarshalError", "dumps", "loads", "wire_size"]

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"

# Integer forms of the tags for the decoder (data[i] yields an int) and
# pre-compiled structs; both avoid per-value parsing work on the hot path.
_ORD_NONE, _ORD_TRUE, _ORD_FALSE = _TAG_NONE[0], _TAG_TRUE[0], _TAG_FALSE[0]
_ORD_INT, _ORD_FLOAT, _ORD_STR = _TAG_INT[0], _TAG_FLOAT[0], _TAG_STR[0]
_ORD_BYTES, _ORD_LIST, _ORD_DICT = _TAG_BYTES[0], _TAG_LIST[0], _TAG_DICT[0]
_PACK_Q = struct.Struct(">q").pack
_PACK_D = struct.Struct(">d").pack
_PACK_I = struct.Struct(">I").pack
_UNPACK_Q = struct.Struct(">q").unpack_from
_UNPACK_D = struct.Struct(">d").unpack_from
_UNPACK_I = struct.Struct(">I").unpack_from


class MarshalError(ReproError):
    """Unsupported type or corrupt buffer."""


def dumps(value: Any) -> bytes:
    """Serialize ``value`` to bytes."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def _encode(value: Any, out: bytearray) -> None:
    # Exact-type dispatch ordered by hot-path frequency (RPC records are
    # dicts of strings and ints); subclasses fall through to the original
    # isinstance chain in _encode_slow.  ``type(True) is bool``, so the
    # ``is int`` arm cannot mis-tag booleans.
    kind = type(value)
    if kind is str:
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += _PACK_I(len(raw))
        out += raw
    elif kind is int:
        out += _TAG_INT
        out += _PACK_Q(value)
    elif kind is dict:
        out += _TAG_DICT
        out += _PACK_I(len(value))
        for key, item in value.items():
            if type(key) is not str and not isinstance(key, str):
                raise MarshalError(f"dict keys must be str, got {type(key).__name__}")
            raw = key.encode("utf-8")
            out += _TAG_STR
            out += _PACK_I(len(raw))
            out += raw
            _encode(item, out)
    elif kind is bool:
        out += _TAG_TRUE if value else _TAG_FALSE
    elif value is None:
        out += _TAG_NONE
    elif kind is float:
        out += _TAG_FLOAT
        out += _PACK_D(value)
    elif kind is bytes or kind is bytearray:
        out += _TAG_BYTES
        out += _PACK_I(len(value))
        out += value
    elif kind is list or kind is tuple:
        out += _TAG_LIST
        out += _PACK_I(len(value))
        for item in value:
            _encode(item, out)
    else:
        _encode_slow(value, out)


def _encode_slow(value: Any, out: bytearray) -> None:
    """Subclass-tolerant fallback (the original isinstance chain)."""
    if isinstance(value, int):
        out += _TAG_INT
        out += _PACK_Q(value)
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += _PACK_D(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += _PACK_I(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        out += _PACK_I(len(value))
        out += value
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += _PACK_I(len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT
        out += _PACK_I(len(value))
        for key in value:
            if not isinstance(key, str):
                raise MarshalError(f"dict keys must be str, got {type(key).__name__}")
            _encode(key, out)
            _encode(value[key], out)
    else:
        raise MarshalError(f"cannot marshal {type(value).__name__}")


def loads(data: bytes) -> Any:
    """Parse bytes produced by :func:`dumps` back into a value."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise MarshalError(f"{len(data) - offset} trailing bytes after value")
    return value


def _decode(data: bytes, offset: int) -> Tuple[Any, int]:
    size = len(data)
    if offset >= size:
        raise MarshalError("truncated buffer")
    tag = data[offset]
    offset += 1
    if tag == _ORD_STR:
        _check(data, offset, 4)
        length = _UNPACK_I(data, offset)[0]
        offset += 4
        _check(data, offset, length)
        return data[offset:offset + length].decode("utf-8"), offset + length
    if tag == _ORD_INT:
        _check(data, offset, 8)
        return _UNPACK_Q(data, offset)[0], offset + 8
    if tag == _ORD_DICT:
        _check(data, offset, 4)
        length = _UNPACK_I(data, offset)[0]
        offset += 4
        result = {}
        for _ in range(length):
            key, offset = _decode(data, offset)
            if not isinstance(key, str):
                raise MarshalError("corrupt dict key")
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    if tag == _ORD_NONE:
        return None, offset
    if tag == _ORD_TRUE:
        return True, offset
    if tag == _ORD_FALSE:
        return False, offset
    if tag == _ORD_FLOAT:
        _check(data, offset, 8)
        return _UNPACK_D(data, offset)[0], offset + 8
    if tag == _ORD_BYTES:
        _check(data, offset, 4)
        length = _UNPACK_I(data, offset)[0]
        offset += 4
        _check(data, offset, length)
        return data[offset:offset + length], offset + length
    if tag == _ORD_LIST:
        _check(data, offset, 4)
        length = _UNPACK_I(data, offset)[0]
        offset += 4
        items = []
        for _ in range(length):
            item, offset = _decode(data, offset)
            items.append(item)
        return items, offset
    raise MarshalError(f"unknown tag {bytes((tag,))!r}")


def _check(data: bytes, offset: int, length: int) -> None:
    if offset + length > len(data):
        raise MarshalError("truncated buffer")


def wire_size(value: Any) -> int:
    """Marshalled size in bytes without materialising the buffer twice."""
    return len(dumps(value))
