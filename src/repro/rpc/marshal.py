"""A small self-describing binary marshalling format (the system's "XDR").

RPC arguments and results really are serialized to bytes and parsed back —
the encrypted connection carries these bytes, so tests can demonstrate that
an eavesdropper on the LAN sees only ciphertext while the endpoints see
structured values.

Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
``list``, ``tuple`` (decoded as list) and ``dict`` with ``str`` keys.  Each
value is a one-byte tag followed by a fixed or length-prefixed body.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from repro.errors import ReproError

__all__ = ["MarshalError", "dumps", "loads", "wire_size"]

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


class MarshalError(ReproError):
    """Unsupported type or corrupt buffer."""


def dumps(value: Any) -> bytes:
    """Serialize ``value`` to bytes."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        out += _TAG_INT
        out += struct.pack(">q", value)
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        out += struct.pack(">I", len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += struct.pack(">I", len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT
        out += struct.pack(">I", len(value))
        for key in value:
            if not isinstance(key, str):
                raise MarshalError(f"dict keys must be str, got {type(key).__name__}")
            _encode(key, out)
            _encode(value[key], out)
    else:
        raise MarshalError(f"cannot marshal {type(value).__name__}")


def loads(data: bytes) -> Any:
    """Parse bytes produced by :func:`dumps` back into a value."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise MarshalError(f"{len(data) - offset} trailing bytes after value")
    return value


def _decode(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise MarshalError("truncated buffer")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        return _unpack(">q", data, offset, 8)
    if tag == _TAG_FLOAT:
        return _unpack(">d", data, offset, 8)
    if tag == _TAG_STR:
        length, offset = _unpack(">I", data, offset, 4)
        _check(data, offset, length)
        return data[offset:offset + length].decode("utf-8"), offset + length
    if tag == _TAG_BYTES:
        length, offset = _unpack(">I", data, offset, 4)
        _check(data, offset, length)
        return data[offset:offset + length], offset + length
    if tag == _TAG_LIST:
        length, offset = _unpack(">I", data, offset, 4)
        items = []
        for _ in range(length):
            item, offset = _decode(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        length, offset = _unpack(">I", data, offset, 4)
        result = {}
        for _ in range(length):
            key, offset = _decode(data, offset)
            if not isinstance(key, str):
                raise MarshalError("corrupt dict key")
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    raise MarshalError(f"unknown tag {tag!r}")


def _unpack(fmt: str, data: bytes, offset: int, size: int):
    _check(data, offset, size)
    return struct.unpack_from(fmt, data, offset)[0], offset + size


def _check(data: bytes, offset: int, length: int) -> None:
    if offset + length > len(data):
        raise MarshalError("truncated buffer")


def wire_size(value: Any) -> int:
    """Marshalled size in bytes without materialising the buffer twice."""
    return len(dumps(value))
