"""RPC wire messages.

An :class:`Envelope` is what actually crosses the network inside a
:class:`repro.net.packet.Datagram`.  The ``body`` (procedure name, arguments
or results, marshalled by :mod:`repro.rpc.marshal`) is sealed under the
connection's session key; the ``payload`` carries whole-file data — the
paper's "whole-file transfer is a particular kind of side-effect" — and is
likewise protected.

Errors travel as marshalled dictionaries with an ``__error__`` tag and are
re-raised as the proper exception class on the caller's side, so Vice
referrals like :class:`~repro.errors.NotCustodian` work transparently
across the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro import errors
from repro.rpc import marshal

__all__ = ["Envelope", "Kind", "encode_error", "decode_error", "maybe_raise"]


class Kind:
    """Envelope discriminators."""

    HS_HELLO = "hs1"  # client -> server: username + sealed client nonce
    HS_CHALLENGE = "hs2"  # server -> client: sealed nonce echo + server nonce
    HS_CONFIRM = "hs3"  # client -> server: sealed server-nonce echo
    HS_OK = "hs_ok"  # server -> client: connection accepted
    HS_FAIL = "hs_fail"  # server -> client: authentication refused
    CALL = "call"
    REPLY = "reply"
    BUSY = "busy"  # server is still executing this (conn, seq): keep waiting


@dataclass
class Envelope:
    """One RPC-layer message."""

    kind: str
    connection_id: str
    seq: int = 0
    body: bytes = b""
    payload: bytes = b""
    # Cleartext fields used before a session key exists (handshake only).
    username: str = ""
    note: str = ""
    # Causal-trace context (trace_id, span_id) propagated client -> server.
    # Pure observability metadata: excluded from wire_bytes so the simulated
    # byte counts — and therefore virtual time — are identical traced or not.
    trace: Any = None

    def wire_bytes(self, envelope_overhead: int) -> int:
        """Size on the wire: headers + body + payload."""
        return (
            envelope_overhead
            + len(self.body)
            + len(self.payload)
            + len(self.username)
            + len(self.note)
        )


# -- error transport ----------------------------------------------------------

_RAISABLE = {
    name: cls
    for name, cls in vars(errors).items()
    if isinstance(cls, type) and issubclass(cls, errors.ReproError)
}


def encode_error(exc: Exception) -> Dict[str, Any]:
    """Marshalable record of a library exception."""
    record: Dict[str, Any] = {
        "__error__": type(exc).__name__,
        "message": str(exc),
    }
    hint = getattr(exc, "custodian_hint", None)
    if hint is not None:
        record["custodian_hint"] = hint
    return record


def decode_error(record: Dict[str, Any]) -> Exception:
    """Reconstruct the exception a server handler raised."""
    name = record.get("__error__", "ViceError")
    cls = _RAISABLE.get(name, errors.ViceError)
    if name == "NotCustodian":
        return errors.NotCustodian(record.get("custodian_hint"))
    return cls(record.get("message", ""))


def maybe_raise(result: Any) -> Any:
    """Raise if ``result`` is an error record; otherwise pass it through."""
    if isinstance(result, dict) and "__error__" in result:
        raise decode_error(result)
    return result


def encode_body(procedure: str, args: Dict[str, Any]) -> bytes:
    """Marshal a call body."""
    return marshal.dumps({"proc": procedure, "args": args})


def decode_body(body: bytes) -> Any:
    """Unmarshal a call or reply body."""
    return marshal.loads(body)
