"""RPC wire messages.

An :class:`Envelope` is what actually crosses the network inside a
:class:`repro.net.packet.Datagram`.  The ``body`` (procedure name, arguments
or results, marshalled by :mod:`repro.rpc.marshal`) is sealed under the
connection's session key; the ``payload`` carries whole-file data — the
paper's "whole-file transfer is a particular kind of side-effect" — and is
likewise protected.

Errors travel as marshalled dictionaries with an ``__error__`` tag and are
re-raised as the proper exception class on the caller's side, so Vice
referrals like :class:`~repro.errors.NotCustodian` work transparently
across the wire.
"""

from __future__ import annotations

from typing import Any, Dict

from repro import errors
from repro.rpc import marshal

__all__ = ["Envelope", "Kind", "encode_error", "decode_error", "maybe_raise"]


class Kind:
    """Envelope discriminators."""

    HS_HELLO = "hs1"  # client -> server: username + sealed client nonce
    HS_CHALLENGE = "hs2"  # server -> client: sealed nonce echo + server nonce
    HS_CONFIRM = "hs3"  # client -> server: sealed server-nonce echo
    HS_OK = "hs_ok"  # server -> client: connection accepted
    HS_FAIL = "hs_fail"  # server -> client: authentication refused
    CALL = "call"
    REPLY = "reply"
    BUSY = "busy"  # server is still executing this (conn, seq): keep waiting


class Envelope:
    """One RPC-layer message.

    A ``__slots__`` class rather than a dataclass: two envelopes are
    allocated per RPC, making the per-instance ``__dict__`` one of the
    hottest allocations in a campus run.
    """

    __slots__ = ("kind", "connection_id", "seq", "body", "payload",
                 "username", "note", "trace", "decoded")

    def __init__(self, kind: str, connection_id: str, seq: int = 0,
                 body: bytes = b"", payload: bytes = b"", username: str = "",
                 note: str = "", trace: Any = None, decoded: Any = None):
        self.kind = kind
        self.connection_id = connection_id
        self.seq = seq
        self.body = body
        self.payload = payload
        # Cleartext fields used before a session key exists (handshake only).
        self.username = username
        self.note = note
        # Causal-trace context (trace_id, span_id) propagated client -> server.
        # Pure observability metadata: excluded from wire_bytes so the simulated
        # byte counts — and therefore virtual time — are identical traced or not.
        self.trace = trace
        # In-process fast path: the structured body this envelope's ``body``
        # marshals.  The sealed wire bytes (and their costs) are unchanged; a
        # receiver in the same process may skip the unmarshal round-trip.
        # Like ``trace``, excluded from wire_bytes.
        self.decoded = decoded

    def wire_bytes(self, envelope_overhead: int) -> int:
        """Size on the wire: headers + body + payload."""
        return (
            envelope_overhead
            + len(self.body)
            + len(self.payload)
            + len(self.username)
            + len(self.note)
        )

    def corrupted_copy(self, rng: Any) -> "Envelope | None":
        """This envelope as it would arrive after in-flight bit corruption.

        A real datagram is one sealed unit on the wire, so flipping any bit
        fails the whole message's MAC check at the receiver; we model that
        by flipping one byte of the sealed ``body``.  Only data-carrying
        CALL/REPLY envelopes are corruptible — handshake messages carry
        their own tamper evidence by construction, and BUSY acks have no
        body — so other kinds return ``None`` (deliver unchanged).  The
        ``decoded`` in-process shortcut is dropped: a corrupted wire message
        cannot carry a plaintext side channel, and the receiver must detect
        the damage from the bytes alone.
        """
        if self.kind not in (Kind.CALL, Kind.REPLY) or not self.body:
            return None
        body = bytearray(self.body)
        position = rng.randint(0, len(body) - 1)
        body[position] ^= rng.randint(1, 255)
        return Envelope(
            self.kind, self.connection_id, self.seq, bytes(body), self.payload,
            username=self.username, note=self.note, trace=self.trace,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Envelope(kind={self.kind!r}, connection_id={self.connection_id!r}, "
                f"seq={self.seq}, body={len(self.body)}B, payload={len(self.payload)}B)")


# -- error transport ----------------------------------------------------------

_RAISABLE = {
    name: cls
    for name, cls in vars(errors).items()
    if isinstance(cls, type) and issubclass(cls, errors.ReproError)
}


def encode_error(exc: Exception) -> Dict[str, Any]:
    """Marshalable record of a library exception."""
    record: Dict[str, Any] = {
        "__error__": type(exc).__name__,
        "message": str(exc),
    }
    hint = getattr(exc, "custodian_hint", None)
    if hint is not None:
        record["custodian_hint"] = hint
    return record


def decode_error(record: Dict[str, Any]) -> Exception:
    """Reconstruct the exception a server handler raised."""
    name = record.get("__error__", "ViceError")
    cls = _RAISABLE.get(name, errors.ViceError)
    if name == "NotCustodian":
        return errors.NotCustodian(record.get("custodian_hint"))
    return cls(record.get("message", ""))


def maybe_raise(result: Any) -> Any:
    """Raise if ``result`` is an error record; otherwise pass it through."""
    if isinstance(result, dict) and "__error__" in result:
        raise decode_error(result)
    return result


def encode_body(procedure: str, args: Dict[str, Any]) -> bytes:
    """Marshal a call body."""
    return marshal.dumps({"proc": procedure, "args": args})


def decode_body(body: bytes) -> Any:
    """Unmarshal a call or reply body."""
    return marshal.loads(body)
