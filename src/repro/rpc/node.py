"""The RPC endpoint: connection establishment, calls, and server structure.

One :class:`RpcNode` sits on every host.  It provides:

* **Mutual authentication** at connect time (§3.4): the three-message
  handshake from :mod:`repro.crypto.handshake`, driven over the simulated
  network with CPU charged for the crypto.
* **Encrypted calls** with whole-file transfer as a side effect (§3.5.3):
  the marshalled body and the file payload are sealed under the session key
  and carried in one logical transfer.
* **At-most-once semantics**: servers deduplicate retransmitted calls by
  (connection, sequence) and replay the cached reply, so datagram loss and
  client retries never double-execute a store.
* **Both server structures** from the paper: ``server_mode="process"``
  models the prototype's one-Unix-process-per-client-connection design
  (serial per connection, a context-switch tax per call, a hard cap on
  processes — the Unix resource limit that capped client/server ratios);
  ``server_mode="lwp"`` models the revised single-process server with
  lightweight threads (no switch tax, no cap, shared state).

Handlers are **generator functions** ``handler(connection, args, payload)``
returning ``(result, reply_payload)``; they charge their own CPU/disk time
by yielding, e.g. ``yield from host.compute(...)``.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.crypto.handshake import ClientHandshake, ServerHandshake
from repro.errors import (
    AuthenticationFailure,
    IntegrityError,
    NotAuthenticated,
    ReproError,
    ServerUnavailable,
)
from repro.hosts import Host
from repro.net.packet import Datagram
from repro.rpc import marshal
from repro.rpc.connection import Connection
from repro.rpc.costs import EncryptionMode, RpcCosts
from repro.rpc.messages import (
    Envelope,
    Kind,
    decode_body,
    encode_error,
    maybe_raise,
)
from repro.obs.trace import _NULL_SPAN
from repro.sim.kernel import Event
from repro.sim.metrics import Counter
from repro.sim.rand import WorkloadRandom
from repro.sim.resources import Store

__all__ = ["RpcNode", "Handler"]

Handler = Callable[..., Generator]

_REPLY_CACHE_LIMIT = 128
_IN_PROGRESS = object()

# Completed replies retained per connection for duplicate suppression; see
# the eviction note in _serve_call.  128 covers any duplicate that can
# still be in flight by orders of magnitude while keeping per-connection
# memory constant over arbitrarily long soak runs.
_REPLY_CACHE_WINDOW = 128


class RpcNode:
    """The RPC endpoint living on one host."""

    def __init__(
        self,
        host: Host,
        costs: Optional[RpcCosts] = None,
        transport: str = "datagram",
        server_mode: str = "lwp",
        encryption: str = EncryptionMode.HARDWARE,
        auth_key_lookup: Optional[Callable[[str], bytes]] = None,
        max_server_processes: Optional[int] = None,
        functional_payload_crypto: bool = True,
        payload_fast_path: bool = True,
        rng: Optional[WorkloadRandom] = None,
    ):
        if transport not in ("datagram", "stream"):
            raise ValueError(f"unknown transport {transport!r}")
        if server_mode not in ("lwp", "process"):
            raise ValueError(f"unknown server_mode {server_mode!r}")
        self.host = host
        self.sim = host.sim
        self.costs = costs or RpcCosts()
        self.transport = transport
        self.server_mode = server_mode
        self.encryption = encryption
        self.auth_key_lookup = auth_key_lookup
        self.max_server_processes = max_server_processes
        self.functional_payload_crypto = functional_payload_crypto
        self.payload_fast_path = payload_fast_path
        self.rng = rng or WorkloadRandom(zlib.crc32(host.name.encode()))

        self.services: Dict[str, Handler] = {}
        self.connections: Dict[str, Connection] = {}
        self._pending: Dict[Tuple[str, int], Event] = {}
        self._hs_pending: Dict[Tuple[str, str], Event] = {}
        self._server_handshakes: Dict[str, Tuple[ServerHandshake, str, Envelope, str]] = {}
        self._worker_queues: Dict[str, Store] = {}
        self._reply_cache: Dict[str, Dict[int, Any]] = {}
        self._conn_counter = 0

        self.calls_received = Counter(f"calls-rx:{host.name}")
        self.calls_sent = Counter(f"calls-tx:{host.name}")
        self.handshakes_completed = 0
        self.retransmissions = 0
        self.retransmits = Counter(f"retransmits:{host.name}")  # by destination
        self.corrupt_rejected = 0  # messages whose MAC/unmarshal check failed

        # Registry instruments: providers are closures over self, so they
        # keep reading the live objects across counter resets.
        metrics = self.sim.metrics
        prefix = f"rpc.{host.name}"
        metrics.counter(f"{prefix}.calls_received", lambda: self.calls_received)
        metrics.counter(f"{prefix}.calls_sent", lambda: self.calls_sent)
        metrics.gauge(f"{prefix}.handshakes_completed",
                      lambda: self.handshakes_completed)
        metrics.gauge(f"{prefix}.retransmissions", lambda: self.retransmissions)
        metrics.counter(f"{prefix}.retransmits", lambda: self.retransmits)
        metrics.gauge(f"{prefix}.corrupt_rejected", lambda: self.corrupt_rejected)
        metrics.gauge(f"{prefix}.connections", lambda: len(self.connections))
        # Per-procedure round-trip latency distributions, created lazily on
        # first call and registered as rpc.<host>.latency.<procedure>.
        self._latency_bags: Dict[str, Any] = {}

        self.sim.process(self._dispatch_loop(), name=f"rpc:{host.name}")

    # ------------------------------------------------------------------
    # service registration
    # ------------------------------------------------------------------

    def register(self, procedure: str, handler: Handler) -> None:
        """Expose ``handler`` under ``procedure``; see module docstring."""
        self.services[procedure] = handler

    # ------------------------------------------------------------------
    # client side: connect and call
    # ------------------------------------------------------------------

    def connect(
        self, server_name: str, username: str, user_key: bytes
    ) -> Generator[Any, Any, Connection]:
        """Establish a mutually authenticated connection (a generator).

        Raises :class:`AuthenticationFailure` when either side fails the
        handshake and :class:`ServerUnavailable` when the server is down,
        unreachable or out of per-client processes.
        """
        self._conn_counter += 1
        conn_id = f"{self.host.name}>{server_name}#{self._conn_counter}"
        conn = Connection(conn_id, self.host.name, server_name, username, self.encryption)

        setup_cpu = (
            self.costs.stream_setup_cpu
            if self.transport == "stream"
            else self.costs.datagram_setup_cpu
        ) + self.costs.handshake_cpu
        yield from self.host.compute(setup_cpu)

        entropy = f"{self.host.name}|{conn_id}|{self.sim.now!r}".encode()
        handshake = ClientHandshake(username, user_key, entropy)

        hello_user, hello = handshake.hello()
        reply = yield from self._handshake_exchange(
            conn_id,
            server_name,
            # The note carries the requested per-connection encryption mode.
            Envelope(Kind.HS_HELLO, conn_id, body=hello, username=hello_user,
                     note=self.encryption),
            phase="1",
        )
        if reply.kind == Kind.HS_FAIL:
            raise self._refusal(reply)
        confirm = handshake.verify_server(reply.body)

        reply = yield from self._handshake_exchange(
            conn_id,
            server_name,
            Envelope(Kind.HS_CONFIRM, conn_id, body=confirm),
            phase="2",
        )
        if reply.kind == Kind.HS_FAIL:
            raise self._refusal(reply)

        conn.establish(handshake.session_key)
        self.connections[conn_id] = conn
        self.handshakes_completed += 1
        return conn

    @staticmethod
    def _refusal(reply: Envelope) -> Exception:
        if reply.note == "full":
            return ServerUnavailable("server out of per-client processes")
        return AuthenticationFailure("authentication failed")

    def _handshake_exchange(
        self, conn_id: str, server_name: str, envelope: Envelope, phase: str
    ) -> Generator[Any, Any, Envelope]:
        key = (conn_id, phase)
        event = self.sim.event()
        self._hs_pending[key] = event
        try:
            reply = yield from self._send_and_wait(
                envelope, server_name, event, expect_bytes=256
            )
        finally:
            self._hs_pending.pop(key, None)
        return reply

    def call(
        self,
        conn: Connection,
        procedure: str,
        args: Optional[Dict[str, Any]] = None,
        payload: bytes = b"",
        expect_bytes: int = 0,
    ) -> Generator[Any, Any, Tuple[Any, bytes]]:
        """Invoke ``procedure`` on the connection's peer (a generator).

        Returns ``(result, reply_payload)``.  ``payload`` rides out with the
        call (whole-file store); the reply payload rides back (whole-file
        fetch).  ``expect_bytes`` extends the retransmission timeout for
        calls known to return large payloads.
        """
        if conn.closed or not conn.established:
            raise NotAuthenticated(f"connection {conn.connection_id} unusable")
        seq = conn.calls_made
        conn.calls_made += 1
        my_name = self.host.name
        peer = conn.peer_of(my_name)

        tracer = self.sim.tracer
        traced = tracer.enabled
        start = self.sim.now
        with (tracer.span(f"rpc.call:{procedure}", component="rpc",
                          host=my_name, peer=peer)
              if traced else _NULL_SPAN):
            fast = self.payload_fast_path
            record = {"proc": procedure, "args": args if args is not None else {}}
            body = marshal.dumps(record)
            wire_body = conn.encrypt(my_name, body, fast=fast)
            wire_payload = self._protect_payload(conn, my_name, payload)
            crypto_cpu = self.costs.encrypt_seconds(
                conn.encryption, len(body) + len(payload)
            )
            yield from self.host.compute(self.costs.client_stub_cpu + crypto_cpu)

            envelope = Envelope(
                Kind.CALL, conn.connection_id, seq, wire_body, wire_payload,
                # In-process shortcut past the unmarshal (wire bytes and
                # costs unchanged); disabled with payload_fast_path.
                decoded=record if fast else None,
            )
            if traced:
                envelope.trace = tracer.context()
            self.calls_sent.add(procedure)

            key = (conn.connection_id, seq)
            while True:
                event = self.sim.event()
                self._pending[key] = event
                try:
                    reply = yield from self._send_and_wait(
                        envelope, peer, event, expect_bytes=expect_bytes
                    )
                finally:
                    self._pending.pop(key, None)

                crypto_cpu = self.costs.encrypt_seconds(
                    conn.encryption, len(reply.body) + len(reply.payload)
                )
                yield from self.host.compute(crypto_cpu)
                decoded = reply.decoded
                try:
                    if decoded is not None:
                        conn.decrypt(reply.body)  # tag check against the wire bytes
                    else:
                        decoded = decode_body(conn.decrypt(reply.body))
                    reply_payload = self._unprotect_payload(conn, reply.payload)
                except (IntegrityError, marshal.MarshalError):
                    # The reply arrived damaged (in-flight corruption): never
                    # accept it.  Re-ask — the server replays its cached,
                    # intact reply without re-executing the call.
                    self.corrupt_rejected += 1
                    continue
                # Outside the except: a *server-raised* error travelling in a
                # clean reply must propagate to the caller, not trigger retry.
                result = maybe_raise(decoded)
                break
        bag = self._latency_bags.get(procedure)
        if bag is None:
            bag = self._latency_bags[procedure] = self.sim.metrics.histogram(
                f"rpc.{my_name}.latency.{procedure}"
            )
        bag.add(self.sim.now - start)
        return result.get("value"), reply_payload

    def _protect_payload(self, conn: Connection, sender: str, payload: bytes) -> bytes:
        if not payload:
            return b""
        if self.functional_payload_crypto and conn.encryption != EncryptionMode.NONE:
            return conn.encrypt_payload(sender, payload, fast=self.payload_fast_path)
        return payload

    def _unprotect_payload(self, conn: Connection, payload: bytes) -> bytes:
        if not payload:
            return b""
        if self.functional_payload_crypto and conn.encryption != EncryptionMode.NONE:
            return conn.decrypt_payload(payload)
        return payload

    # ------------------------------------------------------------------
    # transmission with loss, retransmission and timeout
    # ------------------------------------------------------------------

    def _send_and_wait(
        self, envelope: Envelope, destination: str, event: Event, expect_bytes: int
    ) -> Generator[Any, Any, Envelope]:
        wire = envelope.wire_bytes(self.costs.envelope_bytes)
        # Generous per-attempt timeout: base plus time to move the larger of
        # the outbound message and the expected reply at ~50 KB/s worst case.
        base_attempt = self.costs.retransmit_timeout + max(wire, expect_bytes) / 50_000.0
        per_attempt = base_attempt
        backoff = self.costs.retransmit_backoff
        jitter = self.costs.retransmit_jitter
        attempts = 0
        while True:
            attempts += 1
            lost = self.costs.loss_probability > 0 and self.rng.chance(
                self.costs.loss_probability
            )
            datagram = Datagram(self.host.name, destination, envelope, wire)
            yield from self.host.network.send(datagram, kind="rpc", deliver=not lost)
            attempt_timeout = self.sim.timeout(per_attempt)
            yield self.sim.any_of([event, attempt_timeout])
            if event.triggered:
                # The reply won the race: the pending retransmit timer is
                # dead weight in the heap — cancel it so the kernel discards
                # it on pop instead of walking its stale callbacks.
                attempt_timeout.cancel()
                reply = event.value
                if reply.kind != Kind.BUSY:
                    return reply
                # The server acknowledged it is still working on this call
                # (e.g. mid callback-break): stay patient, re-arm and re-ask.
                attempts = 0
                per_attempt = base_attempt
                event = self.sim.event()
                self._rearm(envelope, event)
                continue
            if attempts > self.costs.max_retries:
                raise ServerUnavailable(
                    f"no response from {destination} after {attempts} attempts"
                )
            self.retransmissions += 1
            self.retransmits.add(destination)
            # Exponential backoff with seeded jitter for the next attempt.
            # With the defaults (backoff 1.0, jitter 0) this branch keeps
            # the historical fixed timeout and, crucially, draws nothing
            # from the generator, so unconfigured runs replay byte-for-byte.
            if backoff != 1.0 or jitter != 0.0:
                per_attempt = base_attempt * (backoff ** attempts)
                if jitter != 0.0:
                    per_attempt *= 1.0 + jitter * self.rng.uniform(-1.0, 1.0)

    def _rearm(self, envelope: Envelope, event: Event) -> None:
        """Re-register a pending slot consumed by a BUSY acknowledgement."""
        if envelope.kind == Kind.CALL:
            self._pending[(envelope.connection_id, envelope.seq)] = event
        else:
            self._hs_pending[(envelope.connection_id, str(envelope.seq or 1))] = event

    # ------------------------------------------------------------------
    # inbound dispatch
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> Generator:
        while True:
            datagram = yield self.host.nic.receive()
            if not self.host.up:
                continue  # a dead host drops traffic on the floor
            envelope: Envelope = datagram.payload
            if envelope.kind == Kind.CALL:
                self._admit_call(envelope, datagram.source)
            elif envelope.kind in (Kind.REPLY, Kind.BUSY):
                self._resolve(self._pending, (envelope.connection_id, envelope.seq), envelope)
            elif envelope.kind == Kind.HS_HELLO:
                self.sim.process(self._serve_hello(envelope, datagram.source))
            elif envelope.kind == Kind.HS_CONFIRM:
                self.sim.process(self._serve_confirm(envelope, datagram.source))
            elif envelope.kind in (Kind.HS_CHALLENGE, Kind.HS_OK, Kind.HS_FAIL):
                # Handshake replies carry the phase they answer in `seq`.
                phase = str(envelope.seq)
                self._resolve(self._hs_pending, (envelope.connection_id, phase), envelope)

    @staticmethod
    def _resolve(table: Dict, key, envelope: Envelope) -> None:
        event = table.pop(key, None)
        if event is not None and not event.triggered:
            event.succeed(envelope)

    # ------------------------------------------------------------------
    # server side: handshake
    # ------------------------------------------------------------------

    def _serve_hello(self, envelope: Envelope, client_name: str) -> Generator:
        conn_id = envelope.connection_id
        if self.auth_key_lookup is None:
            yield from self._send_reply(
                Envelope(Kind.HS_FAIL, conn_id, seq=1), client_name
            )
            return
        if (
            self.server_mode == "process"
            and self.max_server_processes is not None
            and len(self._worker_queues) >= self.max_server_processes
        ):
            yield from self._send_reply(
                Envelope(Kind.HS_FAIL, conn_id, seq=1, note="full"), client_name
            )
            return
        existing = self._server_handshakes.get(conn_id)
        if existing is not None:
            # A retransmitted hello (the challenge was lost or slow):
            # resend the same challenge rather than restarting the
            # handshake, or the client's confirm would verify against the
            # wrong nonce.
            yield from self._send_reply(existing[2], client_name)
            return
        yield from self.host.compute(self.costs.handshake_cpu)
        entropy = f"{self.host.name}|{conn_id}|{self.sim.now!r}".encode()
        handshake = ServerHandshake(self.auth_key_lookup, entropy)
        try:
            challenge = handshake.respond(envelope.username, envelope.body)
        except AuthenticationFailure:
            yield from self._send_reply(
                Envelope(Kind.HS_FAIL, conn_id, seq=1), client_name
            )
            return
        reply = Envelope(Kind.HS_CHALLENGE, conn_id, seq=1, body=challenge)
        encryption = envelope.note or self.encryption
        self._server_handshakes[conn_id] = (handshake, client_name, reply, encryption)
        yield from self._send_reply(reply, client_name)

    def _serve_confirm(self, envelope: Envelope, client_name: str) -> Generator:
        conn_id = envelope.connection_id
        state = self._server_handshakes.pop(conn_id, None)
        if state is None:
            if conn_id in self.connections:
                # Retransmitted confirm for an already-open connection.
                yield from self._send_reply(
                    Envelope(Kind.HS_OK, conn_id, seq=2), client_name
                )
            else:
                yield from self._send_reply(
                    Envelope(Kind.HS_FAIL, conn_id, seq=2), client_name
                )
            return
        handshake, expected_client, _challenge, encryption = state
        try:
            handshake.verify_client(envelope.body)
        except AuthenticationFailure:
            yield from self._send_reply(Envelope(Kind.HS_FAIL, conn_id, seq=2), client_name)
            return
        conn = Connection(
            conn_id, expected_client, self.host.name, handshake.username, encryption
        )
        conn.establish(handshake.session_key)
        self.connections[conn_id] = conn
        if self.server_mode == "process":
            queue = Store(self.sim, name=f"worker:{conn_id}")
            self._worker_queues[conn_id] = queue
            self.sim.process(self._worker_loop(conn, queue), name=f"worker:{conn_id}")
        self.handshakes_completed += 1
        yield from self._send_reply(Envelope(Kind.HS_OK, conn_id, seq=2), client_name)

    # ------------------------------------------------------------------
    # server side: calls
    # ------------------------------------------------------------------

    def _admit_call(self, envelope: Envelope, source: str) -> None:
        conn = self.connections.get(envelope.connection_id)
        if conn is None:
            return  # unknown connection: drop (client will time out)
        cache = self._reply_cache.setdefault(envelope.connection_id, {})
        if envelope.seq in cache:
            cached = cache[envelope.seq]
            if cached is _IN_PROGRESS:
                busy = Envelope(Kind.BUSY, envelope.connection_id, envelope.seq)
                self.sim.process(self._send_reply(busy, source))
            else:
                self.sim.process(self._send_reply(cached, source))
            return  # retransmission: busy-ack or replay the finished reply
        cache[envelope.seq] = _IN_PROGRESS
        # Evict oldest finished replies first.  Sequence numbers are admitted
        # in increasing order per connection, so dict insertion order is seq
        # order and a front-of-dict scan replaces the old per-call sort.
        while len(cache) > _REPLY_CACHE_LIMIT:
            for old_seq in cache:
                if cache[old_seq] is not _IN_PROGRESS:
                    del cache[old_seq]
                    break
            else:
                break  # every entry still in progress: over-limit but live
        if self.server_mode == "process":
            queue = self._worker_queues.get(envelope.connection_id)
            if queue is None:  # connection raced its worker teardown
                return
            queue.put((envelope, source))
        else:
            self.sim.process(self._serve_call(conn, envelope, source, switch_tax=False))

    def _worker_loop(self, conn: Connection, queue: Store) -> Generator:
        while True:
            envelope, source = yield queue.get()
            yield from self._serve_call(conn, envelope, source, switch_tax=True)

    def _serve_call(
        self, conn: Connection, envelope: Envelope, source: str, switch_tax: bool
    ) -> Generator:
        # The span parent is the client's call span, carried on the envelope;
        # the name is refined once the body is decrypted and decoded.
        tracer = self.sim.tracer
        with (tracer.span("rpc.serve", component="rpc", host=self.host.name,
                          parent=envelope.trace)
              if tracer.enabled else _NULL_SPAN) as span:
            dispatch_cpu = self.costs.server_dispatch_cpu
            if switch_tax:
                dispatch_cpu += self.costs.context_switch_cpu * self.costs.switches_per_call
            crypto_cpu = self.costs.encrypt_seconds(
                conn.encryption, len(envelope.body) + len(envelope.payload)
            )
            yield from self.host.compute(dispatch_cpu + crypto_cpu)

            decoded = envelope.decoded
            try:
                if decoded is not None:
                    conn.decrypt(envelope.body)  # tag check against the wire bytes
                else:
                    decoded = decode_body(conn.decrypt(envelope.body))
            except (IntegrityError, marshal.MarshalError):
                # The call arrived damaged (in-flight corruption): reject it
                # without executing anything, and free the reply-cache slot so
                # the client's retransmission is admitted as a fresh copy
                # rather than busy-acked against a call that will never run.
                self.corrupt_rejected += 1
                cache = self._reply_cache.get(envelope.connection_id)
                if cache is not None and cache.get(envelope.seq) is _IN_PROGRESS:
                    del cache[envelope.seq]
                return
            procedure = decoded.get("proc", "?")
            span.rename(f"rpc.serve:{procedure}")
            self.calls_received.add(procedure)
            payload = self._unprotect_payload(conn, envelope.payload)

            handler = self.services.get(procedure)
            reply_payload = b""
            if handler is None:
                record: Dict[str, Any] = encode_error(
                    ReproError(f"no such procedure {procedure!r}")
                )
            else:
                try:
                    result, reply_payload = yield from handler(conn, decoded.get("args", {}), payload)
                    record = {"value": result}
                except ReproError as exc:
                    record = encode_error(exc)
                    reply_payload = b""

            fast = self.payload_fast_path
            body = marshal.dumps(record)
            wire_body = conn.encrypt(self.host.name, body, fast=fast)
            wire_payload = self._protect_payload(conn, self.host.name, reply_payload)
            crypto_cpu = self.costs.encrypt_seconds(conn.encryption, len(body) + len(reply_payload))
            yield from self.host.compute(crypto_cpu)

            reply = Envelope(Kind.REPLY, envelope.connection_id, envelope.seq, wire_body, wire_payload,
                             decoded=record if fast else None)
        cache = self._reply_cache[envelope.connection_id]
        cache[envelope.seq] = reply
        # At-most-once needs the cached reply only while a duplicate of this
        # call can still be in flight — link duplicates arrive within a
        # handful of datagram latencies, i.e. well inside the next
        # _REPLY_CACHE_WINDOW calls on the connection.  Evicting completed
        # replies beyond that window keeps long-lived connections (a soak
        # run's whole virtual week on one session) bounded instead of
        # accumulating one envelope per call forever.  In-progress markers
        # are never evicted; their calls still need duplicate suppression.
        if len(cache) > _REPLY_CACHE_WINDOW:
            completed = sorted(
                seq for seq, entry in cache.items() if entry is not _IN_PROGRESS
            )
            for seq in completed[: len(cache) - _REPLY_CACHE_WINDOW]:
                del cache[seq]
        yield from self._send_reply(reply, source)

    def _send_reply(self, envelope: Envelope, destination: str) -> Generator:
        wire = envelope.wire_bytes(self.costs.envelope_bytes)
        lost = self.costs.loss_probability > 0 and self.rng.chance(self.costs.loss_probability)
        datagram = Datagram(self.host.name, destination, envelope, wire)
        yield from self.host.network.send(datagram, kind="rpc", deliver=not lost)

    # ------------------------------------------------------------------

    def close_connection(self, conn: Connection) -> None:
        """Drop a connection's local state (the peer discovers via timeout)."""
        conn.close()
        self.connections.pop(conn.connection_id, None)
        self._worker_queues.pop(conn.connection_id, None)
        self._reply_cache.pop(conn.connection_id, None)

    @property
    def active_connections(self) -> int:
        """Number of live connections this node knows about."""
        return len(self.connections)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RpcNode {self.host.name} mode={self.server_mode} conns={len(self.connections)}>"
