"""Discrete-event simulation substrate (clock, processes, resources, metrics)."""

from repro.sim.kernel import Condition, Event, Process, Simulator, Timeout
from repro.sim.metrics import Counter, Samples, UtilizationTracker
from repro.sim.rand import WorkloadRandom
from repro.sim.resources import Request, Resource, Store

__all__ = [
    "Condition",
    "Counter",
    "Event",
    "Process",
    "Request",
    "Resource",
    "Samples",
    "Simulator",
    "Store",
    "Timeout",
    "UtilizationTracker",
    "WorkloadRandom",
]
