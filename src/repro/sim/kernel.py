"""Discrete-event simulation kernel.

The whole reproduction runs on this kernel: Venus, the Vice servers, the
network and the synthetic users are all :class:`Process` instances advancing
a shared virtual clock.  The design is deliberately close to SimPy's proven
generator-process model, specialised to what the ITC system needs:

* :class:`Event` — a one-shot occurrence that processes can wait on.
* :class:`Timeout` — an event that fires after a virtual delay.
* :class:`Process` — a Python generator driven by the kernel; ``yield``\\ ing
  an event suspends the process until the event fires.
* :class:`Condition` — conjunction/disjunction of events (``all_of`` /
  ``any_of``).
* :class:`Simulator` — the event heap and clock.

Virtual time is a ``float`` in **seconds**; the paper's quantities (a 1000 s
benchmark, 8-hour utilization windows) are all naturally expressed in it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import Interrupt, SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Simulator",
]


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which the kernel runs its
    callbacks (typically resuming waiting processes) at the current instant.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value, or raises the failure exception."""
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exc`` thrown in."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._schedule(self, 0.0)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as handled even if no process waits on the event."""
        self._defused = True
        return self

    # -- internal ---------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks; called by the kernel when the event fires."""
        callbacks, self.callbacks = self.callbacks, None
        if self._exc is not None and not callbacks and not self._defused:
            self.sim._orphan_failures.append(self)
        for callback in callbacks or ():
            self._defused = True
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds of virtual time from creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class _Initialize(Event):
    """Internal event that starts a process at the instant it was created."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._triggered = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, 0.0)


class Process(Event):
    """A generator-based simulated process.

    A process is itself an event that fires when the generator finishes;
    the event's value is the generator's return value.  Processes may be
    interrupted, which raises :class:`~repro.errors.Interrupt` inside the
    generator at its current yield point.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        interrupt_event = Event(self.sim)
        interrupt_event.callbacks.append(self._resume)
        interrupt_event.fail(Interrupt(cause))

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # a stale wakeup after an interrupt already finished us
        self._waiting_on = None
        try:
            while True:
                if event._exc is not None:
                    target = self.generator.throw(event._exc)
                else:
                    target = self.generator.send(event._value)
                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    )
                if target.sim is not self.sim:
                    raise SimulationError(
                        f"process {self.name!r} yielded event from another simulator"
                    )
                if target.callbacks is None:
                    # Already processed: deliver its outcome synchronously.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._waiting_on = target
                return
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:
            self.fail(exc)


class Condition(Event):
    """Waits for a quorum of ``events``; ``count=len`` is all-of, 1 is any-of.

    Succeeds with the list of already-triggered constituent events, in their
    original order.  Fails as soon as any constituent fails.
    """

    __slots__ = ("events", "_needed")

    def __init__(self, sim: "Simulator", events: Iterable[Event], count: Optional[int] = None):
        super().__init__(sim)
        self.events = list(events)
        if count is None:
            count = len(self.events)
        if count > len(self.events):
            raise SimulationError("condition requires more events than supplied")
        self._needed = count
        if self._needed == 0:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._needed -= 1
        if self._needed == 0:
            self.succeed([e for e in self.events if e._triggered])


class Simulator:
    """The event heap, virtual clock and process factory."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List = []
        self._sequence = 0
        self._orphan_failures: List[Event] = []

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """Create a pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a process; returns its completion event."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that fires when every event in ``events`` has fired."""
        return Condition(self, events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event that fires when at least one event in ``events`` has fired."""
        return Condition(self, events, count=1)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def step(self) -> None:
        """Process the single next event; raises orphaned process failures."""
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        event._process()
        if self._orphan_failures:
            orphan = self._orphan_failures.pop()
            self._orphan_failures.clear()
            raise orphan._exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap empties or the clock passes ``until``."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None and self.now < until:
            self.now = until

    def run_until_complete(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` fires; returns its value or raises its failure.

        This is the synchronous facade used by examples and tests: wrap one
        foreground operation in a process and drive the world until it is
        done.  ``limit`` bounds runaway simulations.
        """
        event.defuse()
        while not event.processed:
            if not self._heap:
                raise SimulationError(
                    f"event heap drained at t={self.now} before event fired"
                )
            if self._heap[0][0] > limit:
                raise SimulationError(f"simulation exceeded time limit {limit}")
            self.step()
        return event.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} pending={len(self._heap)}>"
