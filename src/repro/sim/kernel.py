"""Discrete-event simulation kernel.

The whole reproduction runs on this kernel: Venus, the Vice servers, the
network and the synthetic users are all :class:`Process` instances advancing
a shared virtual clock.  The design is deliberately close to SimPy's proven
generator-process model, specialised to what the ITC system needs:

* :class:`Event` — a one-shot occurrence that processes can wait on.
* :class:`Timeout` — an event that fires after a virtual delay.
* :class:`Process` — a Python generator driven by the kernel; ``yield``\\ ing
  an event suspends the process until the event fires.
* :class:`Condition` — conjunction/disjunction of events (``all_of`` /
  ``any_of``).
* :class:`Simulator` — the event heap and clock.

Virtual time is a ``float`` in **seconds**; the paper's quantities (a 1000 s
benchmark, 8-hour utilization windows) are all naturally expressed in it.

The kernel is the simulation's hottest code: every RPC, disk transfer and
user think-time passes through :meth:`Simulator.step`.  The implementation
therefore trades a little uniformity for allocation- and lookup-light hot
paths (processes schedule their own start instead of allocating a separate
init event, ``run`` drives an inlined loop, timeouts skip the generic event
constructor) without changing any observable ordering: events still fire in
(time, creation-sequence) order, so seeded runs are byte-identical to the
original kernel's.

Two structures hold pending events:

* the **cascade deque** (``_nq``) — events due at exactly the current
  instant: every ``succeed``/``fail``, process start and zero-delay
  timeout.  Same-instant cascades (an RPC reply waking a process that
  immediately claims a resource that immediately grants...) append and pop
  in FIFO order at deque speed, never touching the time-ordered queue.
  Creation order *is* sequence order, so the FIFO tie-break is preserved.
* the **scheduler** (:mod:`repro.sim.schedulers`) — events strictly in the
  future, ordered by ``(time, sequence)``.  Pluggable via
  ``Simulator(scheduler=...)``: ``calendar`` (the default, a self-resizing
  bucketed time wheel) or ``heap`` (the original binary heap, kept as the
  reference oracle).  When the clock advances to a timestamp, the whole
  cohort at that timestamp is drained into the cascade deque in one batch
  and dispatched without re-touching the queue.
"""

from __future__ import annotations

import logging
from collections import deque
from functools import partial
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import Interrupt, SimulationError
from repro.sim.schedulers import make_scheduler

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Simulator",
]

_log = logging.getLogger("repro.sim")


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which the kernel runs its
    callbacks (typically resuming waiting processes) at the current instant.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_defused",
                 "_cancelled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._defused = False
        self._cancelled = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value, or raises the failure exception."""
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        sim._sequence += 1
        sim._nq.append(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exc`` thrown in."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        sim = self.sim
        sim._sequence += 1
        sim._nq.append(self)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as handled even if no process waits on the event."""
        self._defused = True
        return self

    def cancel(self) -> "Event":
        """Discard a scheduled firing: the kernel skips this event on pop.

        Only valid for events whose outcome nobody still observes (e.g. the
        losing branch of an ``any_of`` race).  The queue entry stays where
        it is — sequence numbers, and therefore same-instant ordering of
        every other event, are untouched — but its callbacks never run.
        The scheduler counts the corpse and compacts itself once enough
        accumulate, so cancel-heavy workloads (retransmit timers that
        almost always lose their race) keep the queue bounded.
        """
        self._cancelled = True
        self.sim._queue.note_cancel()
        return self

    # -- internal ---------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks; called by the kernel when the event fires."""
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            self._defused = True
            for callback in callbacks:
                callback(self)
        elif self._exc is not None and not self._defused:
            self.sim._orphan_failures.append(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds of virtual time from creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__: timeouts are the most-allocated event kind.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exc = None
        self._triggered = True
        self._defused = False
        self._cancelled = False
        self.delay = delay
        sim._sequence += 1
        now = sim.now
        when = now + delay
        if when > now:
            sim._qpush(when, sim._sequence, self)
        else:
            # Zero (or underflowing) delay: due this very instant, so it
            # joins the cascade deque in creation order.
            sim._nq.append(self)


class _InitSignal:
    """Shared pseudo-event delivered to a process's first resume."""

    _exc: Optional[BaseException] = None
    _value: Any = None
    _defused = True


_INIT = _InitSignal()


class Process(Event):
    """A generator-based simulated process.

    A process is itself an event that fires when the generator finishes;
    the event's value is the generator's return value.  Processes may be
    interrupted, which raises :class:`~repro.errors.Interrupt` inside the
    generator at its current yield point.
    """

    __slots__ = ("generator", "_waiting_on", "name", "_started")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._started = False
        # Schedule ourselves for the start resume; no separate init event.
        sim._sequence += 1
        sim._nq.append(self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            else:
                if not target.callbacks:
                    # Nobody else waits on the abandoned event; if it later
                    # fails, that failure was handled here by the interrupt.
                    target._defused = True
        self._waiting_on = None
        interrupt_event = Event(self.sim)
        # A stale delivery (the target finished first) must not surface as
        # an orphaned failure.
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        interrupt_event.fail(Interrupt(cause))

    # -- internal ---------------------------------------------------------

    def _process(self) -> None:
        if self._started:
            Event._process(self)
        else:
            self._started = True
            self._resume(_INIT)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            # A stale wakeup after an interrupt already finished us; its
            # outcome (even a failure) is moot.
            event._defused = True
            return
        self._waiting_on = None
        generator = self.generator
        sim = self.sim
        # Expose which process is executing: per-process observability state
        # (the tracer's span stacks) keys off this.  Resumes never nest, but
        # save/restore keeps the attribute honest regardless.
        prev_active = sim.active_process
        sim.active_process = self
        try:
            while True:
                if event._exc is None:
                    target = generator.send(event._value)
                else:
                    target = generator.throw(event._exc)
                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    )
                if target.sim is not sim:
                    raise SimulationError(
                        f"process {self.name!r} yielded event from another simulator"
                    )
                callbacks = target.callbacks
                if callbacks is None:
                    # Already processed: deliver its outcome synchronously.
                    event = target
                    continue
                callbacks.append(self._resume)
                self._waiting_on = target
                return
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:
            self.fail(exc)
        finally:
            sim.active_process = prev_active


class Condition(Event):
    """Waits for a quorum of ``events``; ``count=len`` is all-of, 1 is any-of.

    Succeeds with the list of already-triggered constituent events, in their
    original order.  Fails as soon as any constituent fails.
    """

    __slots__ = ("events", "_needed", "_all")

    def __init__(self, sim: "Simulator", events: Iterable[Event], count: Optional[int] = None):
        super().__init__(sim)
        self.events = list(events)
        total = len(self.events)
        if count is None:
            count = total
        if count > total:
            raise SimulationError("condition requires more events than supplied")
        self._needed = count
        self._all = count == total
        if count == 0:
            self.succeed([])
            return
        check = self._check
        for event in self.events:
            event.add_callback(check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._needed -= 1
        if self._needed == 0:
            if self._all:
                # Every constituent has fired: no need to re-scan the list.
                self.succeed(list(self.events))
            else:
                self.succeed([e for e in self.events if e._triggered])


class Simulator:
    """The event queue, virtual clock and process factory."""

    def __init__(self, scheduler: str = "calendar"):
        self.now: float = 0.0
        self._sequence = 0
        # Future events, ordered by (time, sequence); pluggable structure.
        self._queue = make_scheduler(scheduler)
        self._qpush = self._queue.push
        # Shadow the `timeout` method with a bound constructor: timeouts
        # are the most-created event kind and the factory-call frame is
        # measurable at campus scale.  Signature is unchanged.
        self.timeout = partial(Timeout, self)
        # Events due at exactly `now`: same-timestamp cascades dispatch
        # FIFO from this deque without touching the time-ordered queue.
        self._nq: deque = deque()
        self._orphan_failures: List[Event] = []
        self.active_process: Optional[Process] = None
        # Observability hooks (deferred import: obs builds on sim).  The
        # tracer is the shared zero-cost null recorder until a
        # TraceRecorder is attached; the metrics registry is always live.
        from repro.obs.registry import MetricsRegistry
        from repro.obs.trace import NULL_RECORDER

        self.tracer = NULL_RECORDER
        self.metrics = MetricsRegistry()
        self.metrics.counter("sim.kernel.events", lambda: self._sequence)
        self.metrics.counter(
            "sim.kernel.cascade_events",
            lambda: self._sequence - self._queue.pushes,
        )
        self.metrics.gauge("sim.kernel.pending", lambda: self.pending)
        self.metrics.gauge("sim.kernel.queue", self._queue.stats)

    @property
    def pending(self) -> int:
        """Events waiting to fire (scheduled plus same-instant cascade)."""
        return len(self._queue) + len(self._nq)

    @property
    def scheduler_stats(self) -> dict:
        """The live scheduler's occupancy/resize/dead-event statistics."""
        stats = dict(self._queue.stats())
        stats["cascade_events"] = self._sequence - self._queue.pushes
        stats["events"] = self._sequence
        return stats

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """Create a pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a process; returns its completion event."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that fires when every event in ``events`` has fired."""
        return Condition(self, events)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event that fires when at least one event in ``events`` has fired."""
        return Condition(self, events, count=1)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        self._sequence += 1
        when = self.now + delay
        if when > self.now:
            self._qpush(when, self._sequence, event)
        else:
            self._nq.append(event)

    def _raise_orphans(self) -> None:
        """Raise the first orphaned failure; never silently drop the rest."""
        orphans = self._orphan_failures
        first = orphans[0]
        rest = orphans[1:]
        del orphans[:]
        exc = first._exc
        for extra in rest:
            _log.warning(
                "additional orphaned process failure at t=%s suppressed behind %r: %r",
                self.now, exc, extra._exc,
            )
            if hasattr(exc, "add_note"):  # pragma: no branch - py3.11+
                exc.add_note(f"additional orphaned failure at t={self.now}: {extra._exc!r}")
        raise exc

    def step(self) -> None:
        """Process the single next event; raises orphaned process failures."""
        nq = self._nq
        if nq:
            event = nq.popleft()
        else:
            entry = self._queue.pop_due(None, nq)
            if entry is None:
                raise IndexError("step() on an empty event queue")
            self.now = entry[0]
            event = entry[2]
        if not event._cancelled:
            event._process()
        if self._orphan_failures:
            self._raise_orphans()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or the clock passes ``until``."""
        nq = self._nq
        popleft = nq.popleft
        pop_due = self._queue.pop_due
        orphans = self._orphan_failures
        while True:
            while nq:
                event = popleft()
                if event._cancelled:
                    continue
                event._process()
                if orphans:
                    self._raise_orphans()
            entry = pop_due(until, nq)
            if entry is None:
                break
            self.now = entry[0]
            event = entry[2]
            if event._cancelled:
                continue
            event._process()
            if orphans:
                self._raise_orphans()
        if until is not None and self.now < until:
            # Queue empty or next event past the horizon (it stays
            # scheduled, sequence intact): park the clock exactly at the
            # horizon either way.
            self.now = until

    def run_until_complete(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` fires; returns its value or raises its failure.

        This is the synchronous facade used by examples and tests: wrap one
        foreground operation in a process and drive the world until it is
        done.  ``limit`` bounds runaway simulations.
        """
        event.defuse()
        nq = self._nq
        popleft = nq.popleft
        pop_due = self._queue.pop_due
        orphans = self._orphan_failures
        while event.callbacks is not None:
            if nq:
                popped = popleft()
            else:
                entry = pop_due(limit, nq)
                if entry is None:
                    if len(self._queue):
                        # The next event is past the limit; it stays queued.
                        raise SimulationError(
                            f"simulation exceeded time limit {limit}"
                        )
                    raise SimulationError(
                        f"event heap drained at t={self.now} before event fired"
                    )
                self.now = entry[0]
                popped = entry[2]
            if popped._cancelled:
                continue
            popped._process()
            if orphans:
                self._raise_orphans()
        return event.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} pending={self.pending}>"
