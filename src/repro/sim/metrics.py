"""Measurement instruments for simulation experiments.

The paper's evaluation is built from four kinds of numbers, and each has a
matching instrument here:

* call-mix histograms (65 % validate / 27 % status / ...) — :class:`Counter`;
* mean utilizations over an 8-hour window (CPU 40 %, disk 14 %) —
  :class:`UtilizationTracker` integrates busy-capacity over time;
* short-term peaks ("sometimes peaking at 98 %") — the tracker also bins
  busy time into fixed windows so a peak series can be reported;
* latency distributions (benchmark phase times) — :class:`Samples`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Samples", "UtilizationTracker"]


class Counter:
    """Labelled event counts, reported as a histogram with shares."""

    def __init__(self, name: str = ""):
        self.name = name
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, label: str, amount: int = 1) -> None:
        """Count ``amount`` occurrences of ``label``."""
        self._counts[label] += amount

    def count(self, label: str) -> int:
        """Occurrences of ``label`` so far (0 if never seen)."""
        return self._counts.get(label, 0)

    @property
    def total(self) -> int:
        """Sum of all counts."""
        return sum(self._counts.values())

    def shares(self) -> Dict[str, float]:
        """Fraction of the total contributed by each label."""
        total = self.total
        if total == 0:
            return {}
        return {label: count / total for label, count in sorted(self._counts.items())}

    def as_dict(self) -> Dict[str, int]:
        """Plain dict snapshot of the counts."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name} {dict(self._counts)}>"


class Samples:
    """A bag of numeric observations with summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self._values: List[float] = []

    def add(self, value: float) -> None:
        """Record one observation."""
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        """The raw observations, in insertion order."""
        return list(self._values)

    def since(self, start: int) -> List[float]:
        """Observations added at index ``start`` or later (windowed reads).

        The rolling-window aggregator keeps a cursor per bag and reads only
        the samples added since its last visit, so sampling cost tracks the
        window's traffic rather than the whole run's history.
        """
        return self._values[start:]

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return sum(self._values)

    @property
    def maximum(self) -> float:
        """Largest observation (0.0 when empty)."""
        return max(self._values) if self._values else 0.0

    @property
    def minimum(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return min(self._values) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) by nearest-rank; 0.0 when empty."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 for fewer than 2 samples)."""
        n = len(self._values)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self._values) / n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Samples {self.name} n={len(self)} mean={self.mean:.4f}>"


class UtilizationTracker:
    """Integrates resource busyness over virtual time.

    ``record(level)`` is called by :class:`~repro.sim.resources.Resource`
    whenever the number of busy units changes.  The tracker keeps

    * the running busy-time integral (for mean utilization), and
    * per-window busy time in ``window`` second buckets (for peak series).
    """

    def __init__(self, sim, capacity: int = 1, name: str = "", window: float = 10.0):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.window = window
        self._level = 0
        self._last_change = sim.now
        self._busy_integral = 0.0
        self._window_busy: Dict[int, float] = defaultdict(float)

    @property
    def level(self) -> int:
        """The currently recorded busy level."""
        return self._level

    def record(self, level: int) -> None:
        """Note that the busy level changed to ``level`` at the current time."""
        # Inlined _accumulate: this is called on every resource grant and
        # release, making it one of the hottest non-kernel functions.
        now = self.sim.now
        last = self._last_change
        span = now - last
        old_level = self._level
        if span > 0 and old_level > 0:
            self._busy_integral += span * old_level
            index = int(last // self.window)
            if now <= (index + 1) * self.window:
                self._window_busy[index] += span * old_level
            else:
                self._spread_over_windows(last, now, old_level)
        self._last_change = now
        self._level = level

    def _accumulate(self, now: float) -> None:
        last = self._last_change
        span = now - last
        level = self._level
        if span > 0 and level > 0:
            self._busy_integral += span * level
            index = int(last // self.window)
            if now <= (index + 1) * self.window:
                # Fast path: the whole span lies in one window (the common
                # case — service times are much shorter than the window).
                self._window_busy[index] += span * level
            else:
                self._spread_over_windows(last, now, level)
        self._last_change = now

    def _spread_over_windows(self, start: float, end: float, level: float) -> None:
        index = int(start // self.window)
        cursor = start
        while cursor < end:
            boundary = (index + 1) * self.window
            chunk_end = min(end, boundary)
            self._window_busy[index] += (chunk_end - cursor) * level
            cursor = chunk_end
            index += 1

    def mean_utilization(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean fraction of capacity busy over ``[start, end]``.

        ``end`` defaults to the current simulation time.  ``start`` supports
        the paper's "averages over an 8-hour period" style of reporting by
        excluding warm-up.
        """
        self._accumulate(self.sim.now)
        if end is None:
            end = self.sim.now
        span = end - start
        if span <= 0:
            return 0.0
        busy = 0.0
        for index, amount in self._window_busy.items():
            w_start = index * self.window
            w_end = w_start + self.window
            if w_end <= start or w_start >= end:
                continue
            overlap = min(w_end, end) - max(w_start, start)
            busy += amount * (overlap / self.window)
        return busy / (span * self.capacity)

    def window_series(self) -> List[Tuple[float, float]]:
        """Per-window utilization as ``(window_start_time, fraction)`` pairs."""
        self._accumulate(self.sim.now)
        series = []
        for index in sorted(self._window_busy):
            fraction = self._window_busy[index] / (self.window * self.capacity)
            series.append((index * self.window, min(1.0, fraction)))
        return series

    def peak_utilization(self) -> float:
        """The busiest single window's utilization (0.0 if nothing recorded)."""
        series = self.window_series()
        if not series:
            return 0.0
        return max(fraction for _start, fraction in series)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UtilizationTracker {self.name} mean={self.mean_utilization():.3f}>"
