"""Seeded random distributions for workload generation.

All stochastic behaviour in the reproduction flows through a
:class:`WorkloadRandom` so that every experiment is reproducible from a single
integer seed.  The distributions here are the ones the file-system
measurement literature of the period (refs [12], [13] of the paper) says
matter: heavy-tailed file sizes, Zipf-like popularity, and exponential
think/inter-arrival times.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["WorkloadRandom"]


class WorkloadRandom:
    """A seeded random source with the distributions the workloads need."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, salt: int) -> "WorkloadRandom":
        """Derive an independent stream (per user, per phase...)."""
        return WorkloadRandom(hash((self.seed, salt)) & 0x7FFFFFFF)

    # -- uniform building blocks -------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]``."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(items)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """``k`` distinct items chosen uniformly."""
        return self._rng.sample(items, k)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._rng.random() < probability

    # -- timing ---------------------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (think/inter-arrival times)."""
        return self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    # -- sizes ------------------------------------------------------------------

    def lognormal_size(self, median: float, sigma: float, cap: float = float("inf")) -> int:
        """Heavy-tailed file size in bytes, capped.

        Satyanarayanan's SOSP'81 file-size study found sizes approximately
        lognormal with a long tail; ``median`` sets the scale.
        """
        size = self._rng.lognormvariate(math.log(median), sigma)
        return max(1, int(min(size, cap)))

    def bounded_pareto(self, low: float, high: float, alpha: float = 1.1) -> float:
        """Bounded Pareto variate — an alternative heavy-tail for burst sizes."""
        u = self._rng.random()
        la = low ** alpha
        ha = high ** alpha
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)

    # -- popularity ----------------------------------------------------------

    def zipf_index(self, n: int, skew: float = 0.9) -> int:
        """An index in ``[0, n)`` with Zipf(skew) popularity (0 most popular).

        Uses the rejection-free inverse-CDF over precomputed weights for small
        ``n`` and an approximation for large ``n``; exactness is unnecessary,
        only the shape (a few hot files, a long cold tail) matters.
        """
        if n <= 0:
            raise ValueError("zipf_index requires n >= 1")
        if n == 1:
            return 0
        # Inverse-transform on the continuous Zipf approximation.
        u = self._rng.random()
        if abs(skew - 1.0) < 1e-9:
            harmonic = math.log(n)
            return min(n - 1, int(math.exp(u * harmonic)) - 1)
        exponent = 1.0 - skew
        norm = (n ** exponent - 1.0) / exponent
        value = (u * norm * exponent + 1.0) ** (1.0 / exponent)
        return min(n - 1, max(0, int(value) - 1))

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choice with explicit weights."""
        return self._rng.choices(list(items), weights=list(weights), k=1)[0]
