"""Contended resources for the simulation kernel.

Two primitives cover every queueing point in the ITC system:

* :class:`Resource` — a FIFO server pool with fixed capacity.  Server CPUs,
  disks and network links are ``Resource(capacity=1)``; the utilization
  integral each resource keeps is exactly what the paper's §5.2 utilization
  figures measure.
* :class:`Store` — an unbounded producer/consumer queue, used for NIC input
  queues and for handing requests to server worker processes.

Both integrate with :mod:`repro.sim.metrics` so benches can report mean and
windowed (short-term peak) utilization without extra plumbing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator
from repro.sim.metrics import UtilizationTracker

__all__ = ["Request", "Resource", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when capacity is granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        # Inlined Event.__init__ (hot path: one Request per CPU/disk claim).
        self.sim = resource.sim
        self.callbacks = []
        self._value = None
        self._exc = None
        self._triggered = False
        self._defused = False
        self._cancelled = False
        self.resource = resource


class Resource:
    """A fixed-capacity FIFO resource (CPU, disk arm, link, lock...).

    Usage from inside a process::

        request = resource.request()
        yield request
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(request)

    or, for the common acquire-hold-release pattern::

        yield from resource.use(service_time)
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._queue: Deque[Request] = deque()
        self._users: List[Request] = []
        # Claims granted through the handle-free fast path (try_claim);
        # counted, not stored — there is no Request object to remember.
        self._anon = 0
        # Invariant: _in_use == len(_users) + _anon.  Maintained
        # incrementally because claim/release is the hottest non-kernel
        # path in a campus run (~1M len() calls otherwise).
        self._in_use = 0
        self.utilization = UtilizationTracker(sim, capacity=capacity, name=name)
        self.total_requests = 0

    @property
    def in_use(self) -> int:
        """Number of currently granted claims."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of claims waiting for capacity."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim one unit of capacity; the returned event fires when granted.

        An uncontended claim is granted *synchronously*: the returned event
        is already processed, so a waiting process resumes inline without a
        trip through the event heap.  Contended claims queue and are granted
        through the normal scheduled path when capacity frees up.
        """
        self.total_requests += 1
        request = Request(self)
        if self._in_use < self.capacity:
            # Fast path: mark the event triggered-and-processed in place.
            request._triggered = True
            request._value = self
            request.callbacks = None
            self._users.append(request)
            self._in_use += 1
            self.utilization.record(self._in_use)
        else:
            self._queue.append(request)
        return request

    def try_claim(self) -> bool:
        """Handle-free synchronous claim; True if capacity was free.

        The hottest acquire-hold-release paths (CPU compute, medium bursts)
        never inspect their claim, so when the resource is uncontended the
        Request event object is pure allocation churn.  A successful
        try_claim MUST be paired with :meth:`release_anon`.
        """
        in_use = self._in_use
        if in_use >= self.capacity:
            return False
        self.total_requests += 1
        self._anon += 1
        self._in_use = in_use + 1
        self.utilization.record(in_use + 1)
        return True

    def release_anon(self) -> None:
        """Return a :meth:`try_claim` claim and wake the next waiter."""
        self._anon -= 1
        self._in_use -= 1
        self.utilization.record(self._in_use)
        while self._queue and self._in_use < self.capacity:
            self._grant(self._queue.popleft())

    def release(self, request: Request) -> None:
        """Return a previously granted claim and wake the next waiter."""
        try:
            self._users.remove(request)
        except ValueError:
            # A cancelled (never-granted) request may be withdrawn instead.
            try:
                self._queue.remove(request)
                return
            except ValueError:
                raise SimulationError("release of a request this resource never granted")
        self._in_use -= 1
        self.utilization.record(self._in_use)
        while self._queue and self._in_use < self.capacity:
            self._grant(self._queue.popleft())

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Acquire, hold for ``duration`` seconds of virtual time, release."""
        if self.try_claim():
            try:
                yield self.sim.timeout(duration)
            finally:
                self.release_anon()
            return
        request = self.request()
        if request.callbacks is not None:
            # Contended: wait for the grant (synchronous grants are already
            # processed, so the yield would be an immediate no-op resume).
            yield request
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(request)

    def _grant(self, request: Request) -> None:
        self._users.append(request)
        self._in_use += 1
        self.utilization.record(self._in_use)
        request.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name or id(self)} {self.in_use}/{self.capacity}"
            f" queued={self.queue_length}>"
        )


class Store:
    """An unbounded FIFO handoff queue between producer and consumer processes."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting consumer, if any."""
        self.total_put += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if one is queued)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Store {self.name or id(self)} items={len(self._items)} waiters={len(self._getters)}>"
