"""Pluggable event queues for the simulation kernel.

The kernel orders events by ``(time, creation-sequence)``.  How that order
is *stored* is a pluggable choice, selected through
``Simulator(scheduler=...)`` / ``SystemConfig.scheduler``:

* :class:`HeapScheduler` — the original single binary heap (``heapq``).
  Kept as the reference oracle: its behavior is trivially correct, so the
  equivalence suite runs every workload against it.
* :class:`CalendarQueue` — a self-resizing bucketed time wheel (Brown's
  calendar queue).  Insert and extract are O(1) amortized when event times
  are roughly uniform — the textbook profile of a discrete-event campus,
  where service times cluster around a handful of cost constants.

Both speak the same narrow interface, shaped by the kernel's hot loop:

* ``push(when, seq, event)`` — schedule; ``when`` is strictly greater than
  the clock (at-now events bypass the queue entirely via the kernel's
  cascade deque).
* ``pop()`` — remove and return the least ``(when, seq, event)`` entry, or
  ``None`` when empty.
* ``pop_batch(when, out)`` — drain every remaining entry at exactly
  ``when`` (the timestamp just popped) into ``out`` in sequence order.
  This is the same-timestamp cohort the kernel dispatches without
  re-touching the queue.
* ``pop_due(until, out)`` — the fused hot-loop form: pop the earliest
  entry *if* it is due by ``until`` (``None`` = no horizon), drain its
  same-timestamp cohort into ``out``, and return the entry.  Returns
  ``None`` when the queue is empty or the next entry is past the horizon
  (in which case it stays queued, sequence intact) — one Python call per
  dispatched timestamp instead of three.
* ``requeue(entry)`` — put back the entry just popped (the ``run(until=)``
  horizon overshoot path); sequence numbers are preserved.
* ``note_cancel()`` — a queued event was lazily cancelled; once enough
  dead entries accumulate the queue compacts itself so cancel-heavy
  workloads (RPC retransmit timers) stay bounded.

Entries are ``(when, seq, event)`` tuples in both implementations, so the
orderings — and therefore every seeded virtual output — are identical.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush, nsmallest
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["HeapScheduler", "CalendarQueue", "make_scheduler", "SCHEDULERS"]

Entry = Tuple[float, int, Any]

# Compact once at least this many cancelled entries linger *and* they are
# at least half the queue: small queues tolerate a few corpses, churny
# ones (a retransmit timer per RPC, almost always cancelled) stay bounded.
_COMPACT_MIN_DEAD = 64


class HeapScheduler:
    """The reference scheduler: one binary heap of ``(when, seq, event)``."""

    name = "heap"

    __slots__ = ("_heap", "pushes", "dead", "compactions")

    def __init__(self):
        self._heap: List[Entry] = []
        self.pushes = 0
        self.dead = 0
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """The next entry's timestamp, or None when empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def push(self, when: float, seq: int, event: Any) -> None:
        self.pushes += 1
        heappush(self._heap, (when, seq, event))

    def requeue(self, entry: Entry) -> None:
        heappush(self._heap, entry)

    def pop(self) -> Optional[Entry]:
        heap = self._heap
        if not heap:
            return None
        return heappop(heap)

    def pop_batch(self, when: float, out) -> None:
        heap = self._heap
        while heap and heap[0][0] == when:
            out.append(heappop(heap)[2])

    def pop_due(self, until: Optional[float], out) -> Optional[Entry]:
        heap = self._heap
        if not heap:
            return None
        entry = heap[0]
        when = entry[0]
        if until is not None and when > until:
            return None
        heappop(heap)
        while heap and heap[0][0] == when:
            out.append(heappop(heap)[2])
        return entry

    def note_cancel(self) -> None:
        self.dead += 1
        if self.dead >= _COMPACT_MIN_DEAD and self.dead * 2 >= len(self._heap):
            self.compact()

    def compact(self) -> None:
        """Drop lazily-cancelled entries and re-heapify."""
        self._heap = [e for e in self._heap if not e[2]._cancelled]
        heapify(self._heap)
        self.dead = 0
        self.compactions += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "scheduler": self.name,
            "pending": len(self._heap),
            "pushes": self.pushes,
            "dead": self.dead,
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HeapScheduler pending={len(self._heap)} dead={self.dead}>"


class CalendarQueue:
    """A self-resizing calendar queue (bucketed time wheel).

    Design notes (see ``docs/performance.md`` for the operator's view):

    * Time is quantized into *virtual buckets* of ``width`` seconds; an
      entry's virtual bucket is ``evb = int(when * inv_width)``, and it
      lives in slot ``evb & mask`` of a power-of-two bucket array.  All
      ordering decisions compare integer virtual-bucket numbers computed
      by that same expression, so float rounding at bucket boundaries can
      never disagree between insert and extract.
    * A scan cursor ``_vb`` walks virtual buckets; ``pop`` returns the
      minimum entry of the first slot whose minimum is due
      (``evb <= _vb``).  Every pending entry satisfies ``evb >= _vb``
      because pushed times are strictly in the future, so the first due
      slot holds the global minimum.
    * Entries more than one wheel revolution ahead go to an *overflow
      heap* instead of a slot, keeping near-term scans lean even when the
      event-time distribution is bimodal (millisecond service times next
      to minute-scale user think timers).  The scan migrates overflow into
      the wheel lazily — popping only the entries that became due-soon —
      when the cursor reaches the earliest overflow bucket.  If a full
      revolution finds nothing due (a big idle gap), the queue realigns on
      the global minimum instead of spinning.
    * The wheel resizes (doubling/halving the slot array and re-deriving
      ``width`` from the inter-event gaps of the *soonest* pending entries,
      the region the scan actually walks) when the population outgrows or
      vacates it; resizes are counted and surfaced through ``stats()``.
    """

    name = "calendar"

    MIN_BUCKETS = 32

    __slots__ = ("_width", "_inv_width", "_nbuckets", "_mask", "_buckets",
                 "_count", "_vb", "_overflow", "_overflow_min_vb",
                 "_horizon_vb", "_grow_at", "_shrink_at",
                 "pushes", "dead", "compactions", "resizes")

    def __init__(self, width: float = 0.005):
        self._nbuckets = self.MIN_BUCKETS
        self._mask = self._nbuckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: List[List[Entry]] = [[] for _ in range(self._nbuckets)]
        self._count = 0
        self._vb = 0                      # scan cursor, in virtual buckets
        self._overflow: List[Entry] = []  # heap of entries beyond _horizon_vb
        self._overflow_min_vb = -1        # evb of the overflow top (-1: empty)
        self._horizon_vb = self._nbuckets
        self._grow_at = self._nbuckets * 2
        self._shrink_at = -1              # never shrink below MIN_BUCKETS
        self.pushes = 0
        self.dead = 0
        self.compactions = 0
        self.resizes = 0

    def __len__(self) -> int:
        return self._count + len(self._overflow)

    # -- insert -----------------------------------------------------------

    def push(self, when: float, seq: int, event: Any) -> None:
        # _insert, hand-inlined: push runs a couple hundred thousand times
        # per campus run and the extra call frame is measurable.
        self.pushes += 1
        evb = int(when * self._inv_width)
        if evb >= self._horizon_vb:
            heappush(self._overflow, (when, seq, event))
            if self._overflow_min_vb < 0 or evb < self._overflow_min_vb:
                self._overflow_min_vb = evb
            return
        self._buckets[evb & self._mask].append((when, seq, event))
        self._count += 1
        if evb < self._vb:
            self._vb = evb
        if self._count > self._grow_at:
            self._resize(self._nbuckets * 2)

    def requeue(self, entry: Entry) -> None:
        self._insert(entry)

    def _insert(self, entry: Entry) -> None:
        evb = int(entry[0] * self._inv_width)
        if evb >= self._horizon_vb:
            heappush(self._overflow, entry)
            if self._overflow_min_vb < 0 or evb < self._overflow_min_vb:
                self._overflow_min_vb = evb
            return
        self._buckets[evb & self._mask].append(entry)
        self._count += 1
        if evb < self._vb:
            # Due earlier than the scan cursor (a short delay pushed right
            # after the cursor coasted past empty slots): rewind, cheaply.
            self._vb = evb
        if self._count > self._grow_at:
            self._resize(self._nbuckets * 2)

    # -- extract ----------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """The next entry's timestamp, or None when empty (O(n) scan)."""
        entry = self.pop()
        if entry is None:
            return None
        self.requeue(entry)
        return entry[0]

    def pop(self) -> Optional[Entry]:
        if not self._count:
            if not self._overflow:
                return None
            self._realign()
        while True:
            # Maintenance (migrate/realign) can resize the wheel, which
            # invalidates every cached local — the outer loop re-reads them.
            buckets = self._buckets
            mask = self._mask
            inv_width = self._inv_width
            overflow_min = self._overflow_min_vb
            nbuckets = self._nbuckets
            vb = self._vb
            scanned = 0
            while True:
                if overflow_min >= 0 and vb >= overflow_min:
                    # The cursor reached the earliest overflow bucket: pull
                    # the next revolution's worth of overflow into the wheel.
                    self._vb = vb
                    self._migrate(vb + nbuckets)
                    break
                slot = buckets[vb & mask]
                if slot:
                    best = min(slot)
                    if int(best[0] * inv_width) <= vb:
                        slot.remove(best)
                        self._count -= 1
                        self._vb = vb
                        if self._count < self._shrink_at:
                            self._resize(self._nbuckets // 2)
                        return best
                vb += 1
                scanned += 1
                if scanned > nbuckets:
                    # A full revolution with nothing due: the next event is
                    # a year+ away.  Jump straight to the global minimum.
                    self._realign()
                    break

    def pop_batch(self, when: float, out) -> None:
        """Drain the rest of the ``when`` cohort in sequence order.

        The caller just popped an entry at ``when``, so its bucket is fully
        migrated; every remaining same-timestamp entry shares its virtual
        bucket (the slot is recomputed from ``when`` — the cursor may have
        moved if that pop triggered a resize)."""
        slot = self._buckets[int(when * self._inv_width) & self._mask]
        while slot:
            best = min(slot)
            if best[0] != when:
                return
            slot.remove(best)
            self._count -= 1
            out.append(best[2])

    def pop_due(self, until: Optional[float], out) -> Optional[Entry]:
        # The fused hot path: one frame for scan + horizon check + cohort
        # drain.  Mirrors pop(), but the same-timestamp cohort comes out of
        # the slot already in hand, and a not-yet-due minimum is simply
        # left in place (the cursor parks on its bucket) instead of the
        # pop-then-requeue dance.
        if not self._count:
            if not self._overflow:
                return None
            self._realign()
        while True:
            buckets = self._buckets
            mask = self._mask
            inv_width = self._inv_width
            overflow_min = self._overflow_min_vb
            nbuckets = self._nbuckets
            vb = self._vb
            scanned = 0
            while True:
                if overflow_min >= 0 and vb >= overflow_min:
                    self._vb = vb
                    self._migrate(vb + nbuckets)
                    break
                slot = buckets[vb & mask]
                if slot:
                    best = min(slot)
                    when = best[0]
                    if int(when * inv_width) <= vb:
                        self._vb = vb
                        if until is not None and when > until:
                            return None
                        slot.remove(best)
                        count = self._count - 1
                        while slot:
                            nxt = min(slot)
                            if nxt[0] != when:
                                break
                            slot.remove(nxt)
                            count -= 1
                            out.append(nxt[2])
                        self._count = count
                        if count < self._shrink_at:
                            self._resize(self._nbuckets // 2)
                        return best
                vb += 1
                scanned += 1
                if scanned > nbuckets:
                    self._realign()
                    break

    # -- maintenance ------------------------------------------------------

    def _migrate(self, horizon_vb: int) -> None:
        """Move overflow entries with ``evb < horizon_vb`` into the wheel.

        The overflow is a heap ordered by ``(when, seq)``, so only the
        entries that actually became due-soon are popped — the far tail is
        never rescanned."""
        self._horizon_vb = horizon_vb
        overflow = self._overflow
        buckets = self._buckets
        mask = self._mask
        inv_width = self._inv_width
        moved = 0
        while overflow:
            evb = int(overflow[0][0] * inv_width)
            if evb >= horizon_vb:
                break
            buckets[evb & mask].append(heappop(overflow))
            moved += 1
        self._overflow_min_vb = (
            int(overflow[0][0] * inv_width) if overflow else -1
        )
        self._count += moved
        if self._count > self._grow_at:
            self._resize(self._nbuckets * 2)

    def _realign(self) -> None:
        """Jump the cursor to the global minimum entry's bucket."""
        best_vb = self._overflow_min_vb if self._overflow else -1
        inv_width = self._inv_width
        for slot in self._buckets:
            if slot:
                evb = int(min(slot)[0] * inv_width)
                if best_vb < 0 or evb < best_vb:
                    best_vb = evb
        if best_vb < 0:
            return
        self._vb = best_vb
        self._migrate(best_vb + self._nbuckets)

    def _entries(self) -> List[Entry]:
        flat: List[Entry] = []
        for slot in self._buckets:
            flat.extend(slot)
        flat.extend(self._overflow)
        return flat

    def _resize(self, nbuckets: int) -> None:
        entries = self._entries()
        self.resizes += 1
        self._rebuild(entries, max(self.MIN_BUCKETS, nbuckets))

    def _rebuild(self, entries: List[Entry], nbuckets: int) -> None:
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._grow_at = nbuckets * 2
        self._shrink_at = nbuckets // 8 if nbuckets > self.MIN_BUCKETS else -1
        self._width = self._pick_width(entries)
        self._inv_width = 1.0 / self._width
        self._buckets = [[] for _ in range(nbuckets)]
        self._count = 0
        self._overflow = []
        self._overflow_min_vb = -1
        if entries:
            inv_width = self._inv_width
            self._vb = min(int(e[0] * inv_width) for e in entries)
        self._horizon_vb = self._vb + nbuckets
        for entry in entries:
            self._insert(entry)

    def _pick_width(self, entries: List[Entry]) -> float:
        """Bucket width from the observed event-time distribution.

        Brown's heuristic, deterministic, applied where it matters: the
        scan only ever walks the *soonest* region of the timeline (far
        entries wait in the overflow heap), so the width comes from the
        mean inter-event gap of the soonest pending timestamps.  Sampling
        the whole population instead would blend millisecond service
        events with minute-scale user think timers and produce buckets so
        wide every pop degenerates to a linear scan of one giant slot.
        Falls back to the current width when the sample is degenerate
        (all one timestamp, near-empty queue).
        """
        if len(entries) < 2:
            return self._width
        sample = [e[0] for e in nsmallest(64, entries)]
        gaps = [b - a for a, b in zip(sample, sample[1:]) if b > a]
        if not gaps:
            return self._width
        width = 2.0 * (sum(gaps) / len(gaps))
        # Clamp to something sane: sub-nanosecond widths make evb overflow
        # useful ranges; day-long widths degenerate to one bucket.
        return min(max(width, 1e-9), 86_400.0)

    def note_cancel(self) -> None:
        self.dead += 1
        if self.dead >= _COMPACT_MIN_DEAD and self.dead * 2 >= len(self):
            self.compact()

    def compact(self) -> None:
        """Drop lazily-cancelled entries wherever they sit."""
        entries = [e for e in self._entries() if not e[2]._cancelled]
        self._rebuild(entries, self._nbuckets)
        self.dead = 0
        self.compactions += 1

    def stats(self) -> Dict[str, Any]:
        occupied = sum(1 for slot in self._buckets if slot)
        return {
            "scheduler": self.name,
            "pending": len(self),
            "pushes": self.pushes,
            "buckets": self._nbuckets,
            "bucket_width": self._width,
            "occupied_buckets": occupied,
            "overflow": len(self._overflow),
            "resizes": self.resizes,
            "dead": self.dead,
            "compactions": self.compactions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CalendarQueue pending={len(self)} buckets={self._nbuckets}"
                f" width={self._width:.6g} overflow={len(self._overflow)}>")


SCHEDULERS = {
    "heap": HeapScheduler,
    "calendar": CalendarQueue,
}


def make_scheduler(name: str):
    """Instantiate a scheduler by config name ('calendar' or 'heap')."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
