"""Sharded parallel simulation: per-cluster event loops with conservative
bridge lookahead.

The campus topology (Fig. 2-2) hands the simulator its partition for free:
clusters are semi-autonomous islands whose only mutual coupling is traffic
crossing a bridge onto the backbone, and a bridge adds a *known minimum*
forwarding delay.  That delay is exactly the lookahead a conservative
(Chandy-Misra-Bryant style) parallel discrete-event simulation needs: a
shard may freely execute events up to ``min(neighbor granted horizon) +
bridge latency`` because no neighbor can affect it sooner.

Execution model — *replicated campus, partitioned activity*:

* The coordinator builds the whole campus once (the normal, deterministic
  setup path), then forks one worker per shard.  Every worker therefore
  holds a bit-identical replica of the full campus; copy-on-write keeps
  this cheap.
* Each worker *owns* a subset of cluster segments.  Shard 0 (the "hub")
  additionally owns the backbone and every bridge, so all cross-shard
  carriage is hub-mediated: spoke -> hub -> spoke.  Ownership is enforced
  purely at the network layer — only owned users are launched, and
  :meth:`repro.net.topology.Network.send` hands a transfer off to the
  owning shard the moment it reaches a non-owned segment.  Replica objects
  for non-owned hosts simply never see an event.
* A handoff is a timestamped packet ``(time, src shard, seq, hop index,
  kind, deliver, datagram)`` over an OS pipe.  The receiving shard resumes
  the route *exactly* where the sender stopped: the entry bridge's
  forwarding delay is scheduled at the absolute instant ``time +
  forwarding_delay`` — the same float the single-process kernel would have
  computed — so merged virtual outputs are byte-identical to the
  single-process run (deterministic ``(time, shard, seq)`` injection
  order breaks cross-shard ties).

Synchronization — synchronized conservative windows (bounded-lag family):

* Execution proceeds in lockstep windows.  At window ``j`` every worker
  reads the same double-buffered shared-memory snapshot and computes the
  same global lower bound on any future event anywhere::

      LBTS = min over workers of min(next queued event,
                                     earliest in-flight packet resume)

  Each worker then executes strictly below ``LBTS + la`` (``la`` = the
  minimum bridge delay charged to packets *entering* it): every event
  executed anywhere this window has a timestamp at or after LBTS, so
  every emission resumes at or after ``LBTS + la`` — nothing can land
  inside a window being executed.  Idle think-time gaps in the workload
  cost one window regardless of length, because LBTS leaps straight to
  the next queued event.
* One spin barrier (per-worker monotone round counters) separates
  windows.  State is double-buffered by window parity: window ``j``
  writes slot ``j & 1`` and reads slot ``(j - 1) & 1``; the barrier
  gates slot reuse, so readers never race writers and every worker
  provably computes the identical LBTS each round — the engine is
  deterministic by construction.
* A safe cap stops the windows from overrunning the (not yet known)
  campus end: ``cap = max over workers of`` a lower bound on each
  worker's next execution (its completion instant once done).  The cap
  is provably within ``[LBTS, T_end]``, so nothing the single-process
  run would have left queued gets executed, while the worker owning
  LBTS always advances (liveness).
* Termination: each worker publishes the instant its last owned user
  finished; once every flag is set, ``T_end = max`` of those instants —
  bit-for-bit the moment ``run_campus_day``'s ``all_of`` would have
  fired — and everyone parks exactly there once LBTS clears it.

Scope: the standard campus topology only (``cluster<i>`` segments bridged
to one backbone), no fault plans, no replication, and the on-close write
policy.  Anything else transparently degrades to the single-process
kernel with a warning metric (see :func:`plan_shards`).  This module is
imported lazily — an unsharded run never touches it.
"""

from __future__ import annotations

import math
import time as _wall
import warnings
from collections import deque as _deque
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = [
    "ShardConfig",
    "ShardPlan",
    "plan_shards",
    "ShardRouter",
    "run_sharded_campus_day",
]

_INF = math.inf


@dataclass(frozen=True)
class ShardConfig:
    """Selects and tunes sharded execution (``SystemConfig(sharding=...)``).

    ``workers`` is clamped to the cluster count.  ``spin`` busy-loop
    iterations are tried before the sync loop starts sleeping
    ``poll_sleep`` seconds (doubling up to ``max_sleep``) — spin high on
    dedicated multicore hosts, low on shared or single-core ones.
    ``audit`` keeps per-worker lookahead-violation counters (every packet
    resume and window bound checked against the granted horizon).
    ``assignment`` optionally maps each cluster index to a shard id;
    default is round-robin (cluster ``i`` -> shard ``i % workers``).
    """

    workers: int = 2
    spin: int = 200
    poll_sleep: float = 0.0002
    max_sleep: float = 0.002
    audit: bool = False
    assignment: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class ShardPlan:
    """A validated partition of the campus onto event-loop workers."""

    workers: int
    clusters: int
    assignment: Tuple[int, ...]             # cluster index -> shard id
    owned_segments: Tuple[FrozenSet[str], ...]
    lookahead: Tuple[float, ...]            # per-shard arrival lookahead

    @property
    def hub(self) -> int:
        """The shard owning the backbone and every bridge."""
        return 0

    def clusters_of(self, shard: int) -> List[int]:
        """Cluster indices assigned to ``shard``."""
        return [c for c, s in enumerate(self.assignment) if s == shard]


def plan_shards(config, network, sharding: Optional[ShardConfig] = None):
    """Partition the campus, or explain why it cannot be partitioned.

    Returns ``(plan, None)`` on success or ``(None, reason)`` when the
    configuration must fall back to the single-process kernel: a single
    cluster, a zero-lookahead bridge, fault plans, replication, the
    deferred write policy (its flush daemon would run past the campus end
    time), a non-standard topology, or a platform without ``fork``.
    """
    sharding = sharding if sharding is not None else config.sharding
    if sharding is None:
        return None, "sharding not configured"
    if sharding.workers < 1:
        return None, f"workers must be >= 1, got {sharding.workers}"
    if config.clusters < 2:
        return None, "single-cluster campus: nothing to shard"
    if config.replication is not None:
        return None, "replication is not supported under sharding"
    if getattr(config, "erasure", None) is not None:
        return None, "erasure coding is not supported under sharding"
    if config.fault_plan is not None:
        return None, "fault plans are not supported under sharding"
    if config.write_policy != "on-close":
        return None, f"write policy {config.write_policy!r} is not supported under sharding"
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return None, "platform lacks fork(); sharding requires copy-on-write workers"

    # The standard campus shape: cluster<i> segments joined to one backbone
    # by one bridge each, every bridge with a positive forwarding delay
    # (that delay *is* the lookahead; zero would mean zero-width windows).
    expected = {f"cluster{i}" for i in range(config.clusters)} | {"backbone"}
    if set(network.segments) != expected:
        return None, "non-standard topology: sharding needs cluster<i> segments plus a backbone"
    cluster_delay: Dict[int, float] = {}
    for bridge in network.bridges:
        sides = {bridge.side_a.name, bridge.side_b.name}
        if "backbone" not in sides or len(sides) != 2:
            return None, f"non-standard bridge {bridge.name!r}: sharding needs cluster<->backbone bridges"
        cluster_seg = (sides - {"backbone"}).pop()
        index = int(cluster_seg.removeprefix("cluster"))
        if bridge.forwarding_delay <= 0.0:
            return None, f"bridge {bridge.name!r} has zero lookahead (forwarding_delay <= 0)"
        delay = cluster_delay.get(index)
        cluster_delay[index] = bridge.forwarding_delay if delay is None else min(delay, bridge.forwarding_delay)
    if set(cluster_delay) != set(range(config.clusters)):
        return None, "non-standard topology: every cluster needs a backbone bridge"
    if network._faulty_segments:
        return None, "link faults installed: sharding requires a clean network"

    workers = min(sharding.workers, config.clusters)
    if sharding.assignment is not None:
        assignment = tuple(sharding.assignment)
        if len(assignment) != config.clusters or not all(0 <= s < workers for s in assignment):
            return None, "invalid explicit shard assignment"
        if not all(s in set(assignment) for s in range(workers)):
            return None, "explicit shard assignment leaves a worker empty"
    else:
        assignment = tuple(c % workers for c in range(config.clusters))

    # Arrival lookahead: the minimum delay charged to a packet *entering*
    # the shard.  A spoke receives across its own clusters' bridges; the
    # hub receives across the *sender's* bridge (a spoke hands off the
    # moment the route reaches the backbone), so its lookahead is the
    # minimum over spoke-owned clusters.
    owned: List[FrozenSet[str]] = []
    lookahead: List[float] = []
    for shard in range(workers):
        segs = {f"cluster{c}" for c, s in enumerate(assignment) if s == shard}
        if shard == 0:
            segs.add("backbone")
        owned.append(frozenset(segs))
        if workers == 1:
            las = list(cluster_delay.values())     # degenerate: unused
        elif shard == 0:
            las = [cluster_delay[c] for c, s in enumerate(assignment) if s != 0]
        else:
            las = [cluster_delay[c] for c, s in enumerate(assignment) if s == shard]
        lookahead.append(min(las))
    plan = ShardPlan(
        workers=workers,
        clusters=config.clusters,
        assignment=assignment,
        owned_segments=tuple(owned),
        lookahead=tuple(lookahead),
    )
    return plan, None


def _at_time(sim, when: float):
    """A pre-triggered event popped at the absolute instant ``when``.

    The cross-shard twin of :class:`~repro.sim.kernel.Timeout`: the sender
    recorded the handoff instant ``t``; scheduling the resume at the exact
    float ``t + forwarding_delay`` reproduces the arithmetic the
    single-process ``send`` would have performed at ``now == t``.
    """
    from repro.sim.kernel import Event

    event = Event(sim)
    event._triggered = True
    sim._sequence += 1
    if when > sim.now:
        sim._qpush(when, sim._sequence, event)
    else:
        sim._nq.append(event)
    return event


class ShardRouter:
    """Per-worker network hook: hands transfers off at shard boundaries.

    Installed as ``network.shard_router``; :meth:`Network.send` consults it
    per hop.  Outbound handoffs accumulate in per-destination outboxes the
    worker flushes between windows; inbound packets are injected as
    continuation processes that resume the route mid-hop.
    """

    def __init__(self, network, plan: ShardPlan, shard_id: int, audit: bool = False):
        self.network = network
        self.plan = plan
        self.shard_id = shard_id
        self.owned = plan.owned_segments[shard_id]
        self.audit = audit
        owner: Dict[str, int] = {}
        for shard, segs in enumerate(plan.owned_segments):
            for name in segs:
                owner[name] = shard
        self.segment_owner = owner
        self.out_seq = 0
        self.outbox: Dict[int, list] = {}
        # Earliest resume instant among packets handed off this window,
        # per destination — the "in-flight" term of the LBTS computation.
        self.window_inflight: Dict[int, float] = {}
        # Highest window bound this worker has executed; an inbound packet
        # resuming at or below it would have landed inside an
        # already-executed window (the lookahead audit's definition of a
        # violation).
        self.audit_floor = -_INF
        self.handoffs_out = 0
        self.handoffs_in = 0
        self.violations = 0
        network.shard_router = self

    def handoff(self, datagram, kind: str, deliver: bool, hop_index: int,
                segment_name: str, bridge) -> None:
        """Queue ``datagram`` for the shard owning ``segment_name``."""
        dst = self.segment_owner[segment_name]
        self.out_seq += 1
        self.handoffs_out += 1
        now = self.network.sim.now
        resume = now + bridge.forwarding_delay
        current = self.window_inflight.get(dst)
        if current is None or resume < current:
            self.window_inflight[dst] = resume
        self.outbox.setdefault(dst, []).append(
            (now, self.shard_id, self.out_seq, hop_index, kind, deliver, datagram)
        )

    def take_outbox(self) -> Dict[int, list]:
        """Drain and return the pending per-destination packet batches."""
        if not self.outbox:
            return {}
        out, self.outbox = self.outbox, {}
        return out

    def take_window_inflight(self) -> Dict[int, float]:
        """Drain the per-destination minimum resume instants of the window."""
        out, self.window_inflight = self.window_inflight, {}
        return out

    def inject(self, packet) -> None:
        """Resume a handed-off transfer inside this shard's kernel."""
        self.handoffs_in += 1
        src, seq = packet[1], packet[2]
        self.network.sim.process(
            self._carry(packet), name=f"shard:{src}->{self.shard_id}:{seq}"
        )

    def _carry(self, packet):
        when, _src, _seq, hop_index, kind, deliver, datagram = packet
        network = self.network
        sim = network.sim
        _segments, hops = network._hops(datagram.source, datagram.destination)
        segment, bridge = hops[hop_index]
        # A handoff always happens at a bridge crossing: hop 0 is the
        # sender's own (owned) segment.
        bridge.transfers_forwarded += 1
        resume_at = when + bridge.forwarding_delay
        if self.audit and resume_at <= self.audit_floor:
            self.violations += 1
        yield _at_time(sim, resume_at)
        payload_bytes = datagram.payload_bytes
        yield from segment.transmit(payload_bytes, kind=kind)
        owned = self.owned
        index = hop_index + 1
        while index < len(hops):
            segment, bridge = hops[index]
            if segment.name not in owned:
                self.handoff(datagram, kind, deliver, index, segment.name, bridge)
                return
            bridge.transfers_forwarded += 1
            yield sim.timeout(bridge.forwarding_delay)
            yield from segment.transmit(payload_bytes, kind=kind)
            index += 1
        datagram.hops = len(hops)
        if deliver:
            network.interfaces[datagram.destination].inbox.put(datagram)


# ---------------------------------------------------------------------------
# Worker


class _ShardWorker:
    """One forked event loop: owned clusters, conservative windows."""

    def __init__(self, shard_id, plan, sharding, campus, users, shared, conns,
                 duration, warmup, stagger, seed):
        self.shard_id = shard_id
        self.plan = plan
        self.sharding = sharding
        self.campus = campus
        self.users = users
        self.shared = shared
        self.conns = conns
        self.duration = duration
        self.warmup = warmup
        self.stagger = stagger
        self.seed = seed
        self.sim = campus.sim
        self.W = plan.workers
        self.la = plan.lookahead
        if shard_id == plan.hub:
            self.in_peers = [s for s in range(self.W) if s != shard_id]
        else:
            self.in_peers = [plan.hub]
        self.out_peers = list(self.in_peers)
        self.seen = [0] * self.W           # batches drained per channel
        self.batches_sent = [0] * self.W   # batches flushed per channel
        # Inbound batches land here via the pump thread (see _pump); a
        # deque per source, appended by the pump, popped by the engine.
        self.pending = {src: _deque() for src in self.in_peers}
        self.done = False
        self.t_done = self.sim.now
        # Stats for the sim.shard.<id>.* gauges and the profile table.
        self.windows = 0
        self.horizon_waits = 0
        self.blocked_wall = 0.0
        self.run_wall = 0.0
        self.events_run = 0
        self.max_bound = -_INF

    # -- shared-state accessors -------------------------------------------
    #
    # All reads in window j come from slot (j-1) & 1, all writes go to
    # slot j & 1, and the barrier for window j gates a slot's reuse — so
    # every worker reads the identical, stable snapshot each round and
    # computes the identical LBTS and cap.

    def _next_time(self) -> float:
        if self.sim._nq:
            return self.sim.now
        when = self.sim._queue.peek_time()
        return _INF if when is None else when

    def _read_lbts(self, r: int) -> float:
        """min over workers of min(next event, in-flight packet resumes)."""
        W = self.W
        next_ev = self.shared.next_ev
        inflight = self.shared.inflight
        base = r * W
        pbase = r * W * W
        lbts = _INF
        for w in range(W):
            q = next_ev[base + w]
            row = pbase + w * W
            for d in range(W):
                v = inflight[row + d]
                if v < q:
                    q = v
            if q < lbts:
                lbts = q
        return lbts

    def _safe_cap(self, r: int, lbts: float) -> float:
        """max over workers of a lower bound on each one's next execution.

        A not-done worker's term — min(its next event, the earliest packet
        heading toward it, LBTS + its lookahead) — is a lower bound on the
        finish instant of its remaining users, and a done worker's term is
        that instant itself; so the max never exceeds the campus end time.
        Every term is also >= LBTS, so the cap never starves progress.
        """
        shared = self.shared
        W = self.W
        base = r * W
        pbase = r * W * W
        cap = -_INF
        for w in range(W):
            if shared.done[base + w]:
                term = shared.t_done[base + w]
            else:
                term = shared.next_ev[base + w]
                ahead = lbts + self.la[w]
                if ahead < term:
                    term = ahead
                for src in range(W):
                    v = shared.inflight[pbase + src * W + w]
                    if v < term:
                        term = v
            if term > cap:
                cap = term
        return cap

    # -- engine steps ------------------------------------------------------

    def _pump(self) -> None:
        """Drain every inbound packet pipe continuously (daemon thread).

        Keeping the pipes empty is what makes the peers' ``send`` calls
        deadlock-free: a window whose batches exceed the OS pipe buffer
        would otherwise block the sender mid-``_publish`` while the
        receiver waits at the barrier the sender never reaches.  Batches
        land in per-source deques; the engine still injects them only
        when the read slot's counters flag them, so determinism is
        untouched.
        """
        from multiprocessing.connection import wait

        sources = {self.conns.packet_in[src]: src for src in self.in_peers}
        conns = list(sources)
        while conns:
            for conn in wait(conns):
                try:
                    batch = conn.recv()
                except (EOFError, OSError):
                    conns.remove(conn)
                    continue
                self.pending[sources[conn]].append(batch)

    def _drain_inbound(self, r: int) -> None:
        """Drain exactly the batches the read slot's counters flag."""
        sent = self.shared.sent
        pbase = r * self.W * self.W
        batches = []
        for src in self.in_peers:
            target = sent[pbase + src * self.W + self.shard_id]
            seen = self.seen[src]
            queue = self.pending[src]
            sleep = self.sharding.poll_sleep
            while seen < target:
                # The counter proves the batch was sent; the pump just may
                # not have landed it yet.
                try:
                    batches.extend(queue.popleft())
                except IndexError:
                    started = _wall.perf_counter()
                    _wall.sleep(sleep)
                    self.blocked_wall += _wall.perf_counter() - started
                    sleep = min(sleep * 2.0, self.sharding.max_sleep)
                    continue
                seen += 1
            self.seen[src] = seen
        if not batches:
            return
        # Deterministic cross-shard tie-breaking: inject in (time, source
        # shard, per-channel sequence) order regardless of arrival order.
        batches.sort(key=lambda p: (p[0], p[1], p[2]))
        for packet in batches:
            self.router.inject(packet)
        # Materialize the continuations' first (absolutely-timed) events so
        # peek_time and the published next_ev see them.
        self.sim.run(until=self.sim.now)

    def _publish(self, j: int) -> None:
        """Flush packets, then write this window's slot and release it.

        Pipe sends happen before the ``sent`` counter store, counter
        stores before the ``rounds`` store, and peers only read the slot
        after the barrier observes ``rounds`` — so a drained counter can
        never flag a batch that is not already in the pipe.
        """
        shared = self.shared
        W = self.W
        me = self.shard_id
        s = j & 1
        base = s * W
        pbase = s * W * W
        for dst, packets in self.router.take_outbox().items():
            self.conns.packet_out[dst].send(packets)
            self.batches_sent[dst] += 1
        window_min = self.router.take_window_inflight()
        for dst in self.out_peers:
            shared.sent[pbase + me * W + dst] = self.batches_sent[dst]
            shared.inflight[pbase + me * W + dst] = window_min.get(dst, _INF)
        shared.next_ev[base + me] = self._next_time()
        shared.t_done[base + me] = self.t_done
        shared.done[base + me] = 1 if self.done else 0
        shared.rounds[me] = j + 1

    def _barrier(self, j: int) -> None:
        """Spin (then sleep, with backoff) until every worker passed j."""
        rounds = self.shared.rounds
        target = j + 1
        W = self.W
        spin = self.sharding.spin
        count = 0
        sleep = self.sharding.poll_sleep
        while True:
            arrived = True
            for w in range(W):
                if rounds[w] < target:
                    arrived = False
                    break
            if arrived:
                return
            count += 1
            if count > spin:
                started = _wall.perf_counter()
                _wall.sleep(sleep)
                self.blocked_wall += _wall.perf_counter() - started
                sleep = min(sleep * 2.0, self.sharding.max_sleep)

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        from repro.workload.synthetic import launch_campus_day

        sim = self.sim
        campus = self.campus
        plan = self.plan
        config = campus.config
        self.router = ShardRouter(campus.network, plan, self.shard_id,
                                  audit=self.sharding.audit)
        self._register_gauges()

        my_clusters = set(plan.clusters_of(self.shard_id))
        per_cluster = config.workstations_per_cluster
        owned_idx = [i for i in range(len(self.users))
                     if (i // per_cluster) in my_clusters]
        owned_set = set(owned_idx)

        wall_start = _wall.perf_counter()
        start_now = sim.now
        processes = launch_campus_day(
            campus, self.users, self.warmup + self.duration,
            stagger=self.stagger, seed=self.seed, owned=owned_set,
        )
        self.t_done = start_now
        remaining = [len(processes)]

        def on_finish(_event, remaining=remaining):
            remaining[0] -= 1
            if sim.now > self.t_done:
                self.t_done = sim.now

        for process in processes:
            process.add_callback(on_finish)

        if self.W == 1:
            # Degenerate shard count: no channels exist, so replay the
            # single-process driver verbatim — including its stop-at-the-
            # completion-instant semantics — inside the lone worker.
            warmup_end = start_now + self.warmup
            if self.warmup > 0:
                sim.run(until=warmup_end)
                campus.reset_counters()
                for user in self.users:
                    user.actions = 0
                    user.failures = 0
            for user in self.users:
                user.tracker = None
            start = sim.now
            sim.run_until_complete(
                sim.all_of(processes),
                limit=start + self.duration + self.stagger + 7200,
            )
            end = sim.now
            self.done = True
        else:
            import threading

            threading.Thread(target=self._pump, daemon=True,
                             name=f"shard-{self.shard_id}-pump").start()
            start, end = self._windowed_day(start_now, remaining)
        self.wall = _wall.perf_counter() - wall_start

        partial = self._partial(owned_idx, sorted(my_clusters), start, end)
        self.conns.control.send(("partial", partial))
        # Every worker leaves the window loop at the same round, so nobody
        # is left spinning in a barrier: just wait for the stop token.
        while True:
            message = self.conns.control.recv()
            if message[0] == "stop":
                return

    def _windowed_day(self, start_now: float, remaining: List[int]):
        """The conservative-window engine; returns ``(start, end)``."""
        sim = self.sim
        campus = self.campus
        me = self.shard_id
        in_warmup = self.warmup > 0
        warmup_end = start_now + self.warmup
        if in_warmup:
            start = None
            limit = _INF
        else:
            for user in self.users:
                user.tracker = None
            start = start_now
            limit = start + self.duration + self.stagger + 7200.0
        t_end = None
        j = 0
        while True:
            # Window j: read slot (j-1) & 1.  Window 0 reads slot 1 — the
            # bootstrap values (next_ev = t_done = post-setup clock,
            # in-flight = +inf): sound, because no replica holds an event
            # before the post-setup instant.
            r = (j - 1) & 1
            lbts = self._read_lbts(r)
            base = r * self.W
            done_arr = self.shared.done
            if t_end is None and all(done_arr[base + w] for w in range(self.W)):
                t_done = self.shared.t_done
                t_end = max(t_done[base + w] for w in range(self.W))
            if t_end is not None and lbts > t_end:
                # Nothing anywhere (queued or in flight) at or before the
                # campus end: drain the last in-flight packets (they all
                # resume past t_end — they stay queued, exactly like the
                # single-process run leaves them) and park on the instant
                # the last user finished.
                self._drain_inbound(r)
                if sim.now < t_end:
                    sim.run(until=t_end)
                return start, t_end
            if in_warmup and lbts > warmup_end:
                # Same argument at the warm-up boundary; every worker
                # crosses it at the same round, at the same instant.
                self._drain_inbound(r)
                if sim.now < warmup_end:
                    sim.run(until=warmup_end)
                campus.reset_counters()
                for user in self.users:
                    user.actions = 0
                    user.failures = 0
                    user.tracker = None
                start = sim.now
                limit = start + self.duration + self.stagger + 7200.0
                in_warmup = False
                # Fall through: the same round continues, un-capped.
            if lbts > limit:
                from repro.errors import SimulationError

                raise SimulationError(f"simulation exceeded time limit {limit}")
            self.windows += 1
            cap = self._safe_cap(r, lbts)
            bound = min(math.nextafter(lbts + self.la[me], -_INF), cap)
            if t_end is not None:
                bound = min(bound, t_end)
            elif in_warmup:
                bound = min(bound, warmup_end)
            self._drain_inbound(r)
            nxt = self._next_time()
            if nxt <= bound and bound >= sim.now:
                started = _wall.perf_counter()
                before = sim._sequence
                sim.run(until=bound)
                self.events_run += sim._sequence - before
                self.run_wall += _wall.perf_counter() - started
                if bound > self.max_bound:
                    self.max_bound = bound
                    self.router.audit_floor = bound
            elif nxt > bound and not math.isinf(nxt):
                self.horizon_waits += 1
            if not self.done and remaining[0] == 0:
                self.done = True
            self._publish(j)
            self._barrier(j)
            j += 1

    def _register_gauges(self) -> None:
        metrics = self.sim.metrics
        prefix = f"sim.shard.{self.shard_id}"
        metrics.gauge(f"{prefix}.events_per_s",
                      lambda: round(self.events_run / self.run_wall) if self.run_wall else 0)
        metrics.counter(f"{prefix}.horizon_waits", lambda: self.horizon_waits)
        metrics.gauge(f"{prefix}.blocked_pct", lambda: round(
            100.0 * self.blocked_wall / self.wall, 2) if getattr(self, "wall", 0) else 0.0)
        metrics.counter(f"{prefix}.handoffs", lambda: {
            "out": self.router.handoffs_out, "in": self.router.handoffs_in})

    def _partial(self, owned_idx, my_clusters, start, end) -> Dict[str, Any]:
        campus = self.campus
        per_server = {}
        for cluster in my_clusters:
            server = campus.servers[cluster]
            per_server[cluster] = {
                "name": server.host.name,
                "calls": dict(server.call_mix.as_dict()),
                "cpu": server.host.cpu_utilization(start, end),
                "peak": server.host.cpu.utilization.peak_utilization(),
                "disk": server.host.disk_utilization(start, end),
            }
        owned_ws = [campus.workstations[i] for i in owned_idx]
        owned_users = [self.users[i] for i in owned_idx]
        return {
            "shard": self.shard_id,
            "start": start,
            "end": end,
            "t_done": self.t_done,
            "actions": sum(u.actions for u in owned_users),
            "failures": sum(u.failures for u in owned_users),
            "hits": sum(ws.venus.cache.hits for ws in owned_ws),
            "misses": sum(ws.venus.cache.misses for ws in owned_ws),
            "per_server": per_server,
            "backbone_bytes": (campus.network.total_bytes_on("backbone")
                               if self.shard_id == self.plan.hub else 0),
            "stats": {
                "shard": self.shard_id,
                "clusters": list(my_clusters),
                "events": self.events_run,
                "events_per_s": round(self.events_run / self.run_wall) if self.run_wall else 0,
                "windows": self.windows,
                "horizon_waits": self.horizon_waits,
                "blocked_wall_s": round(self.blocked_wall, 3),
                "blocked_pct": round(100.0 * self.blocked_wall / self.wall, 2) if self.wall else 0.0,
                "wall_s": round(self.wall, 3),
                "handoffs_out": self.router.handoffs_out,
                "handoffs_in": self.router.handoffs_in,
                "lookahead_violations": self.router.violations,
                "max_bound": self.max_bound,
            },
        }


def _worker_main(shard_id, plan, sharding, campus, users, shared, conns,
                 duration, warmup, stagger, seed) -> None:
    import os as _os
    if _os.environ.get("REPRO_SHARD_DEBUG"):
        import faulthandler
        faulthandler.dump_traceback_later(int(_os.environ["REPRO_SHARD_DEBUG"]),
                                          exit=True)
    try:
        worker = _ShardWorker(shard_id, plan, sharding, campus, users, shared,
                              conns, duration, warmup, stagger, seed)
        worker.run()
    except BaseException:
        import traceback

        try:
            conns.control.send(("error", traceback.format_exc()))
        except Exception:
            pass
        raise


# ---------------------------------------------------------------------------
# Coordinator


class _SharedState:
    """Double-buffered lock-free window state: single writer per slot.

    Every array except ``rounds`` is duplicated by window parity: window
    ``j`` writes slot ``j & 1`` and reads slot ``(j - 1) & 1``, and the
    window-``j`` barrier gates a slot's reuse, so readers always see a
    stable, complete snapshot (CPython's GIL plus x86 total-store order
    make the raw 8-byte slots safe to read lock-free).  ``rounds`` is the
    barrier itself — per-worker monotone window counters whose store
    releases that worker's slot writes.

    Time slots boot at the post-setup clock ``start``: no replica holds
    an event before it, so "nothing earlier than start" is a sound
    initial promise — and a non-degenerate one (a ``-inf`` seed would
    pin every ``min`` forever).
    """

    def __init__(self, ctx, workers: int, start: float):
        W = workers
        self.rounds = ctx.RawArray("q", [0] * W)
        self.next_ev = ctx.RawArray("d", [start] * (2 * W))
        self.t_done = ctx.RawArray("d", [start] * (2 * W))
        self.done = ctx.RawArray("b", [0] * (2 * W))
        self.inflight = ctx.RawArray("d", [_INF] * (2 * W * W))
        self.sent = ctx.RawArray("q", [0] * (2 * W * W))


class _WorkerConns:
    """The pipe endpoints one worker uses (inherited across fork)."""

    def __init__(self, control, packet_in: Dict[int, Any], packet_out: Dict[int, Any]):
        self.control = control
        self.packet_in = packet_in
        self.packet_out = packet_out


def merge_partials(partials: Sequence[Dict[str, Any]], server_count: int) -> Dict[str, Any]:
    """Assemble the :func:`run_campus_day` summary from worker partials.

    Mirrors the single-process arithmetic operation for operation —
    integer sums, the same sorted-label normalization, first-wins argmax
    over server index order — so equal inputs give bit-equal floats.
    """
    by_shard = {p["shard"]: p for p in partials}
    start = partials[0]["start"]
    end = partials[0]["end"]
    per_server: Dict[int, Dict[str, Any]] = {}
    for partial in by_shard.values():
        per_server.update({int(k): v for k, v in partial["per_server"].items()})
    totals: Dict[str, int] = {}
    for index in range(server_count):
        for label, count in per_server[index]["calls"].items():
            totals[label] = totals.get(label, 0) + count
    grand = sum(totals.values())
    call_mix = {k: v / grand for k, v in sorted(totals.items())} if grand else {}
    hits = sum(p["hits"] for p in by_shard.values())
    misses = sum(p["misses"] for p in by_shard.values())
    total = hits + misses
    busiest = max(range(server_count), key=lambda i: per_server[i]["cpu"])
    return {
        "duration": end - start,
        "actions": sum(p["actions"] for p in by_shard.values()),
        "failures": sum(p["failures"] for p in by_shard.values()),
        "call_mix": call_mix,
        "hit_ratio": hits / total if total else 0.0,
        "busiest_server": per_server[busiest]["name"],
        "busiest_cpu": per_server[busiest]["cpu"],
        "busiest_cpu_peak": per_server[busiest]["peak"],
        "busiest_disk": per_server[busiest]["disk"],
        "cross_cluster_bytes": sum(p["backbone_bytes"] for p in by_shard.values()),
    }


def _fallback(campus, reason: str):
    warnings.warn(f"sharding disabled, running single-process: {reason}",
                  RuntimeWarning, stacklevel=3)
    campus.sim.metrics.gauge("sim.shard.fallback", lambda reason=reason: reason)
    return None


def run_sharded_campus_day(campus, users, duration: float = 3600.0,
                           warmup: float = 1800.0, stagger: float = 30.0,
                           seed: int = 4242,
                           stats_sink: Optional[list] = None) -> Dict[str, Any]:
    """The sharded twin of :func:`repro.workload.run_campus_day`.

    Builds nothing: the caller's fully-provisioned campus is forked into
    ``plan.workers`` copy-on-write replicas, each running its owned
    clusters under conservative bridge lookahead.  Returns a summary
    byte-identical to the single-process driver's; per-worker engine
    statistics are appended to ``stats_sink`` when given.  Falls back to
    the single-process driver (with a warning and a ``sim.shard.fallback``
    gauge) whenever :func:`plan_shards` refuses the configuration.
    """
    from repro.workload.synthetic import _run_campus_day_single

    sharding = campus.config.sharding or ShardConfig()
    plan, reason = plan_shards(campus.config, campus.network, sharding)
    if plan is not None and (campus.availability is not None
                             or campus.fault_scheduler is not None):
        # Live fault controls (ops console) install availability tracking
        # without a config-level plan; those hooks are process-global.
        plan, reason = None, "live fault controls installed"
    if plan is None:
        _fallback(campus, reason)
        return _run_campus_day_single(campus, users, duration=duration,
                                      warmup=warmup, stagger=stagger)

    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    shared = _SharedState(ctx, plan.workers, campus.sim.now)
    # Directed packet pipes exist only where packets can flow: spoke <->
    # hub.  Control pipes are per worker.
    recv_end: Dict[Tuple[int, int], Any] = {}
    send_end: Dict[Tuple[int, int], Any] = {}
    hub = plan.hub
    for spoke in range(plan.workers):
        if spoke == hub:
            continue
        for src, dst in ((spoke, hub), (hub, spoke)):
            r, w = ctx.Pipe(duplex=False)
            recv_end[(src, dst)] = r
            send_end[(src, dst)] = w
    controls = []
    processes = []
    for shard_id in range(plan.workers):
        parent_conn, child_conn = ctx.Pipe()
        controls.append(parent_conn)
        packet_in = {src: recv_end[(src, dst)]
                     for (src, dst) in recv_end if dst == shard_id}
        packet_out = {dst: send_end[(src, dst)]
                      for (src, dst) in send_end if src == shard_id}
        conns = _WorkerConns(child_conn, packet_in, packet_out)
        processes.append(ctx.Process(
            target=_worker_main,
            args=(shard_id, plan, sharding, campus, users, shared, conns,
                  duration, warmup, stagger, seed),
            daemon=True,
            name=f"shard-{shard_id}",
        ))
    for process in processes:
        process.start()

    partials: Dict[int, Dict[str, Any]] = {}
    error: Optional[str] = None
    try:
        while len(partials) < plan.workers and error is None:
            alive_progress = False
            for shard_id, conn in enumerate(controls):
                if conn.poll(0.02):
                    kind, payload = conn.recv()
                    if kind == "partial":
                        partials[payload["shard"]] = payload
                    else:
                        error = payload
                    alive_progress = True
            if error is None and not alive_progress:
                for shard_id, process in enumerate(processes):
                    if shard_id not in partials and not process.is_alive():
                        error = (f"shard worker {shard_id} exited with code "
                                 f"{process.exitcode} before reporting")
                        break
    finally:
        for conn in controls:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
    if error is not None:
        raise RuntimeError(f"sharded simulation failed:\n{error}")

    ordered = [partials[s] for s in range(plan.workers)]
    if stats_sink is not None:
        stats_sink.extend(p["stats"] for p in ordered)
    return merge_partials(ordered, len(campus.servers))
