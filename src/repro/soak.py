"""The soak driver: days of virtual time under chaos, invariants checked.

§5.2's numbers come from a system that stayed up for months of real use;
one campus day under a clean plan cannot expose slow-burn rot (leaked
kernel callbacks, unbounded reply caches, scheduler corpses, caches that
quietly stop hitting).  ``python -m repro soak`` runs a diurnally-paced
campus for hours-to-days of virtual time with chaos-mode fault injection
on, samples a :class:`~repro.obs.live.RollingAggregator` window every few
virtual minutes, streams windows and ops events to JSONL, and asserts a
set of **soak invariants** against every window:

* ``kernel.pending`` stays bounded (no leaked timers/processes);
* the scheduler's lazily-cancelled corpse count stays under its
  compaction threshold (compaction is actually running);
* every RPC reply cache stays within its at-most-once window (no
  unbounded duplicate-suppression state);
* the trace buffer stays empty unless a recorder was attached;
* the *windowed* cache hit ratio stays above a floor whenever the window
  saw real traffic (caching still works after the 40th fault);
* availability arithmetic stays consistent — attempts equal successes
  plus failures, every closed episode has an MTTR sample, and failures
  only happen when faults were actually injected recently.

Any violation makes the run exit non-zero, so the soak doubles as a CI
gate (``make soak-smoke``).  ``break_invariant`` deliberately sabotages
the pending bound to prove the gate can fail.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.faults.plan import ChaosConfig, FaultPlan
from repro.obs.live import OpsEventStream, RollingAggregator, SimulationController
from repro.rpc.node import _REPLY_CACHE_WINDOW
from repro.system.config import SystemConfig
from repro.system.itc import ITCSystem
from repro.workload import DiurnalCurve, launch_campus_day, provision_campus

__all__ = ["InvariantChecker", "SoakConfig", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """Shape, duration and invariant bounds for one soak run."""

    clusters: int = 2
    workstations_per_cluster: int = 10
    hours: float = 6.0            # measured virtual time, after warm-up
    window: float = 600.0         # aggregator window, virtual seconds
    warmup: float = 900.0         # cache-filling prelude, not measured
    seed: int = 0
    start_hour: float = 9.0       # where t=0 falls on the diurnal curve
    # Chaos arrivals (start after warm-up so the baseline is clean).
    chaos_mean_interval: float = 900.0
    chaos_mean_outage: float = 60.0
    # Invariant bounds.
    hit_ratio_floor: float = 0.5
    min_window_opens: int = 50    # hit-ratio floor only on busy windows
    hit_ratio_skip_windows: int = 2   # caches may still be warming early on
    pending_per_workstation: int = 20
    pending_slack: int = 500
    reply_cache_slack: int = 16   # in-flight calls ride above the window
    max_trace_spans: int = 0      # soak attaches no recorder
    fault_grace: float = 600.0    # failures may trail a fault this long
    # Output streams (None: in-memory only).
    metrics_path: Optional[str] = None
    events_path: Optional[str] = None
    # Negative-test sabotage: clamp the pending bound to zero so the very
    # first window violates, proving the gate exits non-zero.
    break_invariant: bool = False

    @property
    def workstations(self) -> int:
        return self.clusters * self.workstations_per_cluster

    @property
    def duration(self) -> float:
        return self.hours * 3600.0


class InvariantChecker:
    """Evaluates the soak invariants against one aggregator window."""

    def __init__(self, campus, config: SoakConfig):
        self.campus = campus
        self.config = config
        self.sim = campus.sim
        self.max_pending = (0 if config.break_invariant else
                            config.pending_per_workstation * config.workstations
                            + config.pending_slack)
        # Every RPC endpoint whose reply cache must stay bounded.
        self._nodes = ([server.node for server in campus.servers]
                       + [ws.venus.node for ws in campus.workstations])
        self._last_fault_activity: Optional[float] = None
        self.checks_run = 0

    def check(self, window: Dict[str, Any]) -> List[str]:
        """All violations found in this window (empty = healthy)."""
        self.checks_run += 1
        config, sim = self.config, self.sim
        found: List[str] = []

        pending = sim.pending
        if pending > self.max_pending:
            found.append(f"kernel.pending {pending} exceeds bound "
                         f"{self.max_pending} (leaked timers/processes)")

        stats = sim.scheduler_stats
        dead = stats.get("dead", 0)
        # note_cancel compacts at >= 64 dead once corpses reach half the
        # queue, so a healthy scheduler can never hold more than this.
        dead_bound = max(64, pending // 2 + 2)
        if dead > dead_bound:
            found.append(f"scheduler dead entries {dead} exceed bound "
                         f"{dead_bound} (compaction not running)")

        cache_bound = _REPLY_CACHE_WINDOW + config.reply_cache_slack
        worst = 0
        for node in self._nodes:
            for cache in node._reply_cache.values():
                if len(cache) > worst:
                    worst = len(cache)
        if worst > cache_bound:
            found.append(f"reply cache holds {worst} entries, bound "
                         f"{cache_bound} (at-most-once window leak)")

        spans = len(sim.tracer.spans)
        if spans > config.max_trace_spans:
            found.append(f"trace buffer holds {spans} spans, bound "
                         f"{config.max_trace_spans} (recorder left attached)")

        opens = window["counters"].get("opens", 0.0)
        if (self.checks_run > config.hit_ratio_skip_windows
                and opens >= config.min_window_opens
                and window["hit_ratio"] < config.hit_ratio_floor):
            found.append(f"windowed hit ratio {window['hit_ratio']:.3f} "
                         f"below floor {config.hit_ratio_floor} "
                         f"({opens:.0f} opens)")

        found.extend(self._check_availability(window))
        return found

    def _check_availability(self, window: Dict[str, Any]) -> List[str]:
        tracker = self.campus.availability
        if tracker is None:
            return []
        found: List[str] = []
        if tracker.attempts != tracker.successes + tracker.failures:
            found.append(f"availability arithmetic broken: {tracker.attempts} "
                         f"attempts != {tracker.successes} + {tracker.failures}")
        if len(tracker.episodes) != len(tracker.mttr):
            found.append(f"{len(tracker.episodes)} closed episodes but "
                         f"{len(tracker.mttr)} MTTR samples")
        if tracker.failures and not tracker.counters["faults_injected"]:
            found.append(f"{tracker.failures} operation failures with zero "
                         "injected faults")
        avail = window.get("availability", {})
        if (avail.get("faults_injected") or avail.get("recoveries")
                or avail.get("active_faults")):
            self._last_fault_activity = window["t"]
        if avail.get("failures", 0.0) > 0:
            last = self._last_fault_activity
            horizon = window.get("dt", 0.0) + self.config.fault_grace
            if last is None or window["t"] - last > horizon:
                found.append(
                    f"{avail['failures']:.0f} failures in window at "
                    f"t={window['t']:.0f} with no fault activity within "
                    f"{horizon:.0f}s")
        return found


def _build_soak_campus(config: SoakConfig):
    """A provisioned campus with chaos installed and diurnal pacing on."""
    campus = ITCSystem(SystemConfig(
        mode="revised",
        clusters=config.clusters,
        workstations_per_cluster=config.workstations_per_cluster,
        functional_payload_crypto=False,
        cache_max_files=120,
        seed=config.seed,
    ))
    users = provision_campus(campus, hot_files=12, cold_files=30,
                             shared_files=40, binary_files=20)
    campus.install_faults(FaultPlan(
        name="soak-chaos",
        seed=config.seed,
        chaos=ChaosConfig(start=config.warmup,
                          mean_interval=config.chaos_mean_interval,
                          mean_outage=config.chaos_mean_outage),
    ))
    pace = DiurnalCurve(start_hour=config.start_hour)
    for user in users:
        user.pace = pace
    return campus, users


def run_soak(config: Optional[SoakConfig] = None,
             echo: Callable[[str], None] = print) -> Dict[str, Any]:
    """One full soak run; returns the report dict (``violations`` key)."""
    config = config or SoakConfig()
    wall_start = time.perf_counter()

    campus, users = _build_soak_campus(config)
    sim = campus.sim
    launch_campus_day(campus, users, config.warmup + config.duration)

    controller = SimulationController(sim)
    stream = OpsEventStream(sim, path=config.events_path)
    stream.attach_availability(campus.availability)
    aggregator = RollingAggregator(campus.metrics, maxlen=4096)
    checker = InvariantChecker(campus, config)

    # Warm-up: fill caches, then reset counters so windows measure steady
    # state; the throwaway baseline sample pins every delta cursor.
    controller.advance(config.warmup)
    campus.reset_counters()
    for user in users:
        user.actions = 0
        user.failures = 0
        user.tracker = campus.availability
    aggregator.sample(sim.now)
    aggregator.windows.clear()

    planned = max(1, round(config.duration / config.window))
    echo(f"soak: {config.workstations} workstations, {config.hours:.1f} "
         f"virtual hours in {planned} windows of {config.window:.0f}s, "
         f"chaos every ~{config.chaos_mean_interval:.0f}s")
    stream.emit("soak", phase="start", workstations=config.workstations,
                windows=planned, hours=config.hours)

    metrics_handle = open(config.metrics_path, "w") if config.metrics_path else None
    violations: List[Dict[str, Any]] = []
    window_index = 0
    events_before = sim._sequence
    run_start = time.perf_counter()
    end = sim.now + config.duration
    while sim.now < end:
        controller.advance(min(sim.now + config.window, end))
        window = aggregator.sample(sim.now)
        stream.scan(window)
        window_index += 1
        if metrics_handle is not None:
            json.dump(window, metrics_handle, sort_keys=True)
            metrics_handle.write("\n")
        for detail in checker.check(window):
            violations.append({"window": window_index, "t": sim.now,
                               "detail": detail})
            stream.emit("soak", phase="violation", window=window_index,
                        detail=detail)
            echo(f"soak: INVARIANT VIOLATION in window {window_index}: {detail}")
        if window_index % 6 == 0 or sim.now >= end:
            echo(f"soak: window {window_index}/{planned} t={sim.now:9.0f}s "
                 f"hit={window['hit_ratio']:.3f} "
                 f"opens/s={window['rates'].get('opens', 0.0):.2f} "
                 f"active_faults={window.get('availability', {}).get('active_faults', 0):.0f}")
    run_wall = time.perf_counter() - run_start
    events = sim._sequence - events_before

    stream.emit("soak", phase="end", windows=window_index,
                violations=len(violations))
    stream.close()
    if metrics_handle is not None:
        metrics_handle.close()

    tracker = campus.availability
    overhead = aggregator.overhead_us
    report = {
        "shape": {
            "clusters": config.clusters,
            "workstations": config.workstations,
            "virtual_hours": config.hours,
            "window_seconds": config.window,
            "warmup_seconds": config.warmup,
            "chaos_mean_interval": config.chaos_mean_interval,
        },
        "windows": window_index,
        "violations": violations,
        "invariant_checks": checker.checks_run,
        "wall_seconds": round(time.perf_counter() - wall_start, 3),
        "run_wall_seconds": round(run_wall, 3),
        "events": events,
        "events_per_second": round(events / run_wall) if run_wall else 0,
        "ops_events_emitted": stream.emitted,
        "snapshot_overhead_us": {
            "mean": round(overhead.mean, 1),
            "p99": round(overhead.percentile(0.99), 1),
        },
        "virtual_actions": sum(user.actions for user in users),
        "virtual_failures": sum(user.failures for user in users),
        "availability": tracker.summary() if tracker is not None else None,
    }
    status = "ok" if not violations else f"{len(violations)} VIOLATIONS"
    echo(f"soak: done — {window_index} windows, {events:,} events "
         f"({report['events_per_second']:,}/s), {status}")
    return report
