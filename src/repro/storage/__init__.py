"""Storage substrate: Unix-like file system model and simulated disks."""

from repro.storage.disk import Disk
from repro.storage.unixfs import FileType, Inode, Stat, UnixFileSystem

__all__ = ["Disk", "FileType", "Inode", "Stat", "UnixFileSystem"]
