"""A simulated disk with a mid-1980s service-time model.

Disk time is where the paper's "disk access routines on the servers may be
better optimized if it is known that requests are always for entire files"
argument lives: a whole-file access pays one seek plus one rotational delay
and then streams sequentially, whereas page-at-a-time access pays the
positioning cost on every page.  :meth:`Disk.access` exposes exactly that
distinction.

Default parameters approximate the era's server drives (e.g. a Fujitsu
Eagle-class disk): ~24 ms average seek, 3600 rpm (8.3 ms average rotational
latency), ~1 MB/s sustained transfer.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

__all__ = ["Disk"]


class Disk:
    """One disk arm shared by all requests at a node."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        avg_seek: float = 0.024,
        avg_rotation: float = 0.0083,
        transfer_rate_bps: float = 1_000_000.0,
        capacity_bytes: int = 400_000_000,
    ):
        self.sim = sim
        self.name = name
        self.avg_seek = avg_seek
        self.avg_rotation = avg_rotation
        self.transfer_rate_bps = transfer_rate_bps
        self.capacity_bytes = capacity_bytes
        self.arm = Resource(sim, capacity=1, name=f"disk:{name}")
        self.bytes_read = 0
        self.bytes_written = 0
        self.operations = 0

    def service_time(self, nbytes: int, sequential: bool = True, page_size: int = 4096) -> float:
        """Seconds of disk time for ``nbytes``, without queueing.

        ``sequential=True`` models whole-file layout: one positioning cost,
        then streaming.  ``sequential=False`` models page-scattered access:
        positioning once per ``page_size`` chunk.
        """
        nbytes = max(0, nbytes)
        position = self.avg_seek + self.avg_rotation
        stream = nbytes / self.transfer_rate_bps
        if sequential or nbytes <= page_size:
            return position + stream
        pages = -(-nbytes // page_size)  # ceil
        return pages * position + stream

    def access(
        self,
        nbytes: int,
        write: bool = False,
        sequential: bool = True,
        page_size: int = 4096,
    ) -> Generator[Any, Any, None]:
        """Occupy the disk arm for one access; drive from a process."""
        self.operations += 1
        if write:
            self.bytes_written += max(0, nbytes)
        else:
            self.bytes_read += max(0, nbytes)
        # Hottest instrumented path in the simulator: guard on `enabled` so
        # untraced runs skip even the null span call.
        tracer = self.sim.tracer
        if tracer.enabled:
            with tracer.span("disk.access", component="storage", host=self.name,
                             bytes=max(0, nbytes), write=write):
                yield from self.arm.use(self.service_time(nbytes, sequential, page_size))
        else:
            yield from self.arm.use(self.service_time(nbytes, sequential, page_size))

    def mean_utilization(self, start: float = 0.0, end=None) -> float:
        """Fraction of time the arm was busy over the window (paper's 14%)."""
        return self.arm.utilization.mean_utilization(start, end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Disk {self.name} ops={self.operations}>"
