"""A simulated disk with a mid-1980s service-time model.

Disk time is where the paper's "disk access routines on the servers may be
better optimized if it is known that requests are always for entire files"
argument lives: a whole-file access pays one seek plus one rotational delay
and then streams sequentially, whereas page-at-a-time access pays the
positioning cost on every page.  :meth:`Disk.access` exposes exactly that
distinction.

Default parameters approximate the era's server drives (e.g. a Fujitsu
Eagle-class disk): ~24 ms average seek, 3600 rpm (8.3 ms average rotational
latency), ~1 MB/s sustained transfer.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.errors import DiskError
from repro.sim.kernel import Simulator
from repro.sim.rand import WorkloadRandom
from repro.sim.resources import Resource

__all__ = ["Disk", "DiskFaults"]


class DiskFaults:
    """Seeded disk-fault injector: media errors and degraded service time.

    Installed on :attr:`Disk.faults` by the chaos scheduler (see
    :mod:`repro.faults`); ``None`` — the default — costs the access path a
    single attribute check.  An *error* access pays the positioning cost
    (the arm moved before the medium failed) and raises
    :class:`~repro.errors.DiskError`, which travels across RPC like any
    other file-system error.  A ``latency_factor`` above 1 stretches every
    access (a failing drive retrying internally, a busy controller).
    """

    __slots__ = ("rng", "error_rate", "latency_factor", "stats")

    def __init__(
        self,
        rng: WorkloadRandom,
        error_rate: float = 0.0,
        latency_factor: float = 1.0,
        stats: Optional[Dict[str, int]] = None,
    ):
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error rate {error_rate!r} outside [0, 1]")
        if latency_factor <= 0:
            raise ValueError("latency_factor must be positive")
        self.rng = rng
        self.error_rate = error_rate
        self.latency_factor = latency_factor
        # Shared with the scheduler/tracker so injections are observable.
        self.stats = stats if stats is not None else {"disk_errors": 0}

    def fails(self) -> bool:
        """Decide whether one access hits a media error."""
        if self.error_rate and self.rng.chance(self.error_rate):
            self.stats["disk_errors"] += 1
            return True
        return False


class Disk:
    """One disk arm shared by all requests at a node."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        avg_seek: float = 0.024,
        avg_rotation: float = 0.0083,
        transfer_rate_bps: float = 1_000_000.0,
        capacity_bytes: int = 400_000_000,
    ):
        self.sim = sim
        self.name = name
        self.avg_seek = avg_seek
        self.avg_rotation = avg_rotation
        self.transfer_rate_bps = transfer_rate_bps
        self.capacity_bytes = capacity_bytes
        self.arm = Resource(sim, capacity=1, name=f"disk:{name}")
        self.bytes_read = 0
        self.bytes_written = 0
        self.operations = 0
        # Fault injection hook (repro.faults): None keeps the disk healthy
        # and costs the access path one attribute check.
        self.faults: Optional[DiskFaults] = None

    def service_time(self, nbytes: int, sequential: bool = True, page_size: int = 4096) -> float:
        """Seconds of disk time for ``nbytes``, without queueing.

        ``sequential=True`` models whole-file layout: one positioning cost,
        then streaming.  ``sequential=False`` models page-scattered access:
        positioning once per ``page_size`` chunk.
        """
        nbytes = max(0, nbytes)
        position = self.avg_seek + self.avg_rotation
        stream = nbytes / self.transfer_rate_bps
        if sequential or nbytes <= page_size:
            return position + stream
        pages = -(-nbytes // page_size)  # ceil
        return pages * position + stream

    def access(
        self,
        nbytes: int,
        write: bool = False,
        sequential: bool = True,
        page_size: int = 4096,
    ) -> Generator[Any, Any, None]:
        """Occupy the disk arm for one access; drive from a process."""
        self.operations += 1
        if write:
            self.bytes_written += max(0, nbytes)
        else:
            self.bytes_read += max(0, nbytes)
        service = self.service_time(nbytes, sequential, page_size)
        faults = self.faults
        if faults is not None:
            if faults.fails():
                # The arm still moved: charge the positioning cost, then fail.
                yield from self.arm.use(self.avg_seek + self.avg_rotation)
                raise DiskError(
                    f"disk {self.name}: media error on "
                    f"{'write' if write else 'read'} of {max(0, nbytes)} bytes"
                )
            service *= faults.latency_factor
        # Hottest instrumented path in the simulator: guard on `enabled` so
        # untraced runs skip even the null span call.
        tracer = self.sim.tracer
        if tracer.enabled:
            with tracer.span("disk.access", component="storage", host=self.name,
                             bytes=max(0, nbytes), write=write):
                yield from self.arm.use(service)
        else:
            yield from self.arm.use(service)

    def mean_utilization(self, start: float = 0.0, end=None) -> float:
        """Fraction of time the arm was busy over the window (paper's 14%)."""
        return self.arm.utilization.mean_utilization(start, end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Disk {self.name} ops={self.operations}>"
