"""Path manipulation for the Unix-like name spaces.

All paths in the system are Unix-style, absolute or relative, with ``/`` as
the separator.  These helpers are deliberately tiny and pure so both Virtue
(workstation name space) and Vice (shared name space) resolve names with
identical rules.
"""

from __future__ import annotations

import functools
from typing import List, Tuple

from repro.errors import InvalidArgument

__all__ = ["components", "dirname", "basename", "join", "normalize", "split", "is_abs"]


def is_abs(path: str) -> bool:
    """True for absolute paths."""
    return path.startswith("/")


def components(path: str) -> List[str]:
    """The non-empty, non-'.' components of ``path``; '..' is preserved."""
    if not isinstance(path, str) or path == "":
        raise InvalidArgument(f"invalid path {path!r}")
    return [part for part in path.split("/") if part not in ("", ".")]


@functools.lru_cache(maxsize=4096)
def normalize(path: str) -> str:
    """Canonical absolute form, resolving '.' and '..' lexically.

    Memoized: name resolution hits the same handful of paths over and over
    (every Venus open walks its prefix), and the function is pure.
    """
    if not is_abs(path):
        raise InvalidArgument(f"expected absolute path, got {path!r}")
    stack: List[str] = []
    for part in components(path):
        if part == "..":
            if stack:
                stack.pop()
        else:
            stack.append(part)
    return "/" + "/".join(stack)


def join(*parts: str) -> str:
    """Join path fragments; a later absolute fragment restarts the path."""
    if not parts:
        raise InvalidArgument("join requires at least one part")
    result = parts[0]
    for part in parts[1:]:
        if is_abs(part):
            result = part
        elif result.endswith("/"):
            result = result + part
        else:
            result = result + "/" + part
    return result


def split(path: str) -> Tuple[str, str]:
    """``(dirname, basename)``; the root splits to ``("/", "")``."""
    norm = normalize(path) if is_abs(path) else path
    if norm == "/":
        return "/", ""
    head, _, tail = norm.rpartition("/")
    return (head or "/", tail)


def dirname(path: str) -> str:
    """Parent directory of ``path``."""
    return split(path)[0]


def basename(path: str) -> str:
    """Final component of ``path``."""
    return split(path)[1]
