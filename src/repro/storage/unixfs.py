"""An in-memory Unix-like file system.

This is the storage substrate everything stands on, exactly as in the paper:
the workstation's local root file system, Venus's cache directory, and the
server's backing store ("the prototype file server uses the underlying Unix
file system for storage of Vice files") are all instances of
:class:`UnixFileSystem`.

It is a pure data structure — no virtual time — so it can be tested
exhaustively (including with hypothesis); the simulation charges disk time
separately through :class:`repro.storage.disk.Disk`.

Supported: hierarchical directories, regular files with whole-file read /
write, symbolic links with loop detection, rename of files *and* directories
(the prototype famously could not rename directories; this substrate can,
and the prototype-mode Vice layer refuses it at a higher level), stat with
version numbers for cache validation, and byte accounting for space-limited
caches and quotas.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    TooManySymlinks,
)
from repro.storage import pathutil

__all__ = ["FileType", "Inode", "Stat", "UnixFileSystem"]

_MAX_SYMLINK_HOPS = 40


class FileType:
    """Inode type tags (plain strings for cheap comparison and repr)."""

    FILE = "file"
    DIRECTORY = "directory"
    SYMLINK = "symlink"


@dataclass
class Stat:
    """Snapshot of an inode's metadata, as returned by ``stat``."""

    inode: int
    file_type: str
    size: int
    version: int
    mtime: float
    owner: str
    mode_bits: int


class Inode:
    """One file-system object: a file, directory or symbolic link."""

    __slots__ = ("number", "file_type", "data", "entries", "target", "version",
                 "mtime", "owner", "mode_bits")

    def __init__(self, number: int, file_type: str, owner: str = "root", mtime: float = 0.0):
        self.number = number
        self.file_type = file_type
        self.data: bytes = b""
        self.entries: Dict[str, "Inode"] = {}
        self.target: str = ""
        self.version = 1
        self.mtime = mtime
        self.owner = owner
        # Unix per-file protection bits (rwx for owner/group/other). Vice in
        # prototype mode ignores these (per-directory ACLs only); the revised
        # design honours them alongside ACLs (§5.1).
        self.mode_bits = 0o644 if file_type == FileType.FILE else 0o755

    @property
    def size(self) -> int:
        """Bytes of data (files), entry count (dirs), target length (links)."""
        if self.file_type == FileType.FILE:
            return len(self.data)
        if self.file_type == FileType.SYMLINK:
            return len(self.target)
        return len(self.entries)

    def stat(self) -> Stat:
        """Immutable metadata snapshot."""
        return Stat(
            inode=self.number,
            file_type=self.file_type,
            size=self.size,
            version=self.version,
            mtime=self.mtime,
            owner=self.owner,
            mode_bits=self.mode_bits,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Inode #{self.number} {self.file_type} size={self.size} v{self.version}>"


class UnixFileSystem:
    """A hierarchical file system rooted at ``/``.

    ``clock`` supplies mtimes; pass ``lambda: sim.now`` to stamp virtual
    time, or leave the default for timeless unit tests.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None, name: str = ""):
        self._clock = clock or (lambda: 0.0)
        self.name = name
        self._inode_numbers = itertools.count(2)
        self.root = Inode(1, FileType.DIRECTORY)
        self.root.mtime = self._clock()

    # -- resolution -----------------------------------------------------------

    def _advance(self, path: str) -> Iterator[Tuple[Inode, str]]:
        """Yield (parent_inode, component) pairs walking ``path``."""
        if not pathutil.is_abs(path):
            raise InvalidArgument(f"expected absolute path, got {path!r}")
        node = self.root
        parts = pathutil.components(path)
        for index, part in enumerate(parts):
            yield node, part
            if index < len(parts) - 1:
                node = self._step(node, part, path)

    def _step(self, parent: Inode, name: str, full_path: str) -> Inode:
        if parent.file_type != FileType.DIRECTORY:
            raise NotADirectory(full_path)
        if name == "..":
            raise InvalidArgument(f"'..' must be normalized before resolution: {full_path!r}")
        child = parent.entries.get(name)
        if child is None:
            raise FileNotFound(full_path)
        return child

    def resolve(self, path: str, follow: bool = True, _hops: int = 0) -> Inode:
        """Resolve ``path`` to an inode, expanding symlinks when ``follow``.

        Symlinks in *intermediate* components are always expanded; ``follow``
        controls only the final component (lstat vs stat semantics).
        """
        if _hops > _MAX_SYMLINK_HOPS:
            raise TooManySymlinks(path)
        path = pathutil.normalize(path)
        node = self.root
        parts = pathutil.components(path)
        for index, part in enumerate(parts):
            node = self._step(node, part, path)
            is_last = index == len(parts) - 1
            if node.file_type == FileType.SYMLINK and (follow or not is_last):
                prefix = "/" + "/".join(parts[:index])
                target = node.target
                if not pathutil.is_abs(target):
                    target = pathutil.join(prefix, target)
                rest = "/".join(parts[index + 1:])
                full = pathutil.join(target, rest) if rest else target
                return self.resolve(pathutil.normalize(full), follow=follow, _hops=_hops + 1)
        return node

    def _resolve_parent(self, path: str) -> Tuple[Inode, str]:
        """The directory inode that should contain ``path``'s last component."""
        path = pathutil.normalize(path)
        parent_path, name = pathutil.split(path)
        if name == "":
            raise InvalidArgument(f"cannot create or remove the root: {path!r}")
        parent = self.resolve(parent_path, follow=True)
        if parent.file_type != FileType.DIRECTORY:
            raise NotADirectory(parent_path)
        return parent, name

    # -- queries ---------------------------------------------------------------

    def exists(self, path: str, follow: bool = True) -> bool:
        """True if ``path`` resolves."""
        try:
            self.resolve(path, follow=follow)
            return True
        except (FileNotFound, NotADirectory, TooManySymlinks):
            return False

    def stat(self, path: str, follow: bool = True) -> Stat:
        """Metadata snapshot of the object at ``path``."""
        return self.resolve(path, follow=follow).stat()

    def listdir(self, path: str) -> List[str]:
        """Sorted entry names of a directory."""
        node = self.resolve(path)
        if node.file_type != FileType.DIRECTORY:
            raise NotADirectory(path)
        return sorted(node.entries)

    def readlink(self, path: str) -> str:
        """The target string of a symbolic link."""
        node = self.resolve(path, follow=False)
        if node.file_type != FileType.SYMLINK:
            raise InvalidArgument(f"not a symlink: {path!r}")
        return node.target

    def walk(self, path: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Depth-first (path, inode) pairs under ``path``, links not followed."""
        node = self.resolve(path, follow=False)
        yield pathutil.normalize(path), node
        if node.file_type == FileType.DIRECTORY:
            for name in sorted(node.entries):
                child_path = pathutil.join(pathutil.normalize(path), name)
                yield from self.walk(child_path)

    @property
    def total_bytes(self) -> int:
        """Total file-data bytes stored (for cache space and quota checks)."""
        return sum(node.data.__len__() for _p, node in self.walk("/")
                   if node.file_type == FileType.FILE)

    @property
    def file_count(self) -> int:
        """Number of regular files."""
        return sum(1 for _p, node in self.walk("/") if node.file_type == FileType.FILE)

    # -- mutation -----------------------------------------------------------------

    def _new_inode(self, file_type: str, owner: str) -> Inode:
        return Inode(next(self._inode_numbers), file_type, owner, self._clock())

    def _insert(self, path: str, file_type: str, owner: str, exist_ok: bool = False) -> Inode:
        parent, name = self._resolve_parent(path)
        existing = parent.entries.get(name)
        if existing is not None:
            if exist_ok and existing.file_type == file_type:
                return existing
            raise FileExists(path)
        node = self._new_inode(file_type, owner)
        parent.entries[name] = node
        parent.version += 1
        parent.mtime = self._clock()
        return node

    def create(self, path: str, data: bytes = b"", owner: str = "root") -> Inode:
        """Create a regular file with ``data`` (exclusive)."""
        node = self._insert(path, FileType.FILE, owner)
        node.data = bytes(data)
        return node

    def mkdir(self, path: str, owner: str = "root", exist_ok: bool = False) -> Inode:
        """Create a directory."""
        return self._insert(path, FileType.DIRECTORY, owner, exist_ok=exist_ok)

    def makedirs(self, path: str, owner: str = "root") -> Inode:
        """Create a directory and any missing ancestors."""
        path = pathutil.normalize(path)
        node = self.root
        built = "/"
        for part in pathutil.components(path):
            built = pathutil.join(built, part)
            child = node.entries.get(part)
            if child is None:
                child = self.mkdir(built, owner=owner)
            elif child.file_type == FileType.SYMLINK:
                child = self.resolve(built)
            if child.file_type != FileType.DIRECTORY:
                raise NotADirectory(built)
            node = child
        return node

    def symlink(self, path: str, target: str, owner: str = "root") -> Inode:
        """Create a symbolic link at ``path`` pointing to ``target``."""
        node = self._insert(path, FileType.SYMLINK, owner)
        node.target = target
        return node

    def write(self, path: str, data: bytes, create: bool = True, owner: str = "root") -> Inode:
        """Replace the whole contents of a file (whole-file store semantics)."""
        try:
            node = self.resolve(path)
        except FileNotFound:
            if not create:
                raise
            return self.create(path, data, owner=owner)
        if node.file_type == FileType.DIRECTORY:
            raise IsADirectory(path)
        node.data = bytes(data)
        node.version += 1
        node.mtime = self._clock()
        return node

    def read(self, path: str) -> bytes:
        """The whole contents of a file."""
        node = self.resolve(path)
        if node.file_type == FileType.DIRECTORY:
            raise IsADirectory(path)
        return node.data

    def append(self, path: str, data: bytes) -> Inode:
        """Append to a file (convenience for workload generators)."""
        node = self.resolve(path)
        if node.file_type != FileType.FILE:
            raise IsADirectory(path)
        node.data += bytes(data)
        node.version += 1
        node.mtime = self._clock()
        return node

    def unlink(self, path: str) -> None:
        """Remove a file or symlink."""
        parent, name = self._resolve_parent(path)
        node = parent.entries.get(name)
        if node is None:
            raise FileNotFound(path)
        if node.file_type == FileType.DIRECTORY:
            raise IsADirectory(path)
        del parent.entries[name]
        parent.version += 1
        parent.mtime = self._clock()

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        parent, name = self._resolve_parent(path)
        node = parent.entries.get(name)
        if node is None:
            raise FileNotFound(path)
        if node.file_type != FileType.DIRECTORY:
            raise NotADirectory(path)
        if node.entries:
            raise DirectoryNotEmpty(path)
        del parent.entries[name]
        parent.version += 1
        parent.mtime = self._clock()

    def rmtree(self, path: str) -> None:
        """Remove a subtree recursively (administrative convenience)."""
        parent, name = self._resolve_parent(path)
        if name not in parent.entries:
            raise FileNotFound(path)
        del parent.entries[name]
        parent.version += 1
        parent.mtime = self._clock()

    def rename(self, old: str, new: str) -> None:
        """Move a file or directory; replaces a plain-file target atomically.

        Refuses to move a directory into its own subtree (the classic
        ``EINVAL`` case) and to overwrite a non-empty directory.
        """
        old = pathutil.normalize(old)
        new = pathutil.normalize(new)
        if new == old:
            return
        if new.startswith(old + "/"):
            raise InvalidArgument(f"cannot move {old!r} into itself")
        old_parent, old_name = self._resolve_parent(old)
        node = old_parent.entries.get(old_name)
        if node is None:
            raise FileNotFound(old)
        new_parent, new_name = self._resolve_parent(new)
        target = new_parent.entries.get(new_name)
        if target is not None:
            if target.file_type == FileType.DIRECTORY:
                if target.entries:
                    raise DirectoryNotEmpty(new)
                if node.file_type != FileType.DIRECTORY:
                    raise IsADirectory(new)
            elif node.file_type == FileType.DIRECTORY:
                raise NotADirectory(new)
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = node
        now = self._clock()
        for touched in (old_parent, new_parent):
            touched.version += 1
            touched.mtime = now

    def set_mode(self, path: str, mode_bits: int) -> None:
        """Set per-file Unix protection bits (revised design, §5.1)."""
        node = self.resolve(path)
        node.mode_bits = mode_bits & 0o7777
        node.version += 1
        node.mtime = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UnixFileSystem {self.name or id(self)} files={self.file_count}>"
