"""System assembly: configuration, topology, calibration, the ITC facade."""

from repro.system.calibration import (
    ANDREW_LOCAL_TARGET_SECONDS,
    ANDREW_REMOTE_PENALTY_TARGET,
    CALL_MIX_TARGET,
    HIT_RATIO_TARGET,
    SERVER_CPU_TARGET,
    SERVER_DISK_TARGET,
)
from repro.system.config import SystemConfig
from repro.system.itc import ITCSystem

__all__ = [
    "ANDREW_LOCAL_TARGET_SECONDS",
    "ANDREW_REMOTE_PENALTY_TARGET",
    "CALL_MIX_TARGET",
    "HIT_RATIO_TARGET",
    "ITCSystem",
    "SERVER_CPU_TARGET",
    "SERVER_DISK_TARGET",
    "SystemConfig",
]
