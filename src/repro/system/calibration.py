"""Calibration: how the cost constants were fitted to the paper.

The reproduction substitutes a discrete-event simulator for the authors'
campus of Suns, Vaxes and a 10 Mb/s Ethernet, so absolute constants must be
*chosen*.  They are not free parameters, though: the paper pins several
absolute and relative anchors, and the defaults in
:class:`~repro.rpc.costs.RpcCosts`, :class:`~repro.vice.costs.ViceCosts`
and :class:`~repro.venus.venus.VenusCosts` were fitted to them:

========================================  =======================================
paper anchor (§5.2)                        fitted against
========================================  =======================================
local 5-phase benchmark ≈ 1000 s           workstation CPU speed 1.0, compile
                                           cost per byte in the Andrew workload
remote cold benchmark ≈ +80 %              fetch path: RPC + crypto + server CPU
                                           + disk + 10 Mb/s wire for ~70 files
server CPU ~40 %, disk ~14 % (busiest)     per-call CPU ≫ per-call disk; the
                                           validate-heavy mix is CPU-bound
call mix 65/27/4/2                         produced by the synthetic workload's
                                           open/stat/miss/write ratios, not by
                                           the cost model (costs affect *time*,
                                           the mix is a count)
~20 workstations/server comfortable        server speed 2.0 with the above
========================================  =======================================

Era hardware the defaults model:

* workstation ≈ 1-MIPS class (Sun-2); cluster server ≈ 2× that;
* disk ≈ 24 ms average seek + 8.3 ms rotation + 1 MB/s transfer;
* Ethernet 10 Mb/s, 1460-byte MTU, 64 B header per frame;
* DES in software ≈ 75 KB/s ("too slow to be viable"), DES chip ≈ 4 MB/s.

The helpers below re-export the calibrated defaults so benches state their
provenance explicitly.
"""

from __future__ import annotations

from repro.rpc.costs import RpcCosts
from repro.venus.venus import VenusCosts
from repro.vice.costs import ViceCosts

__all__ = [
    "ANDREW_LOCAL_TARGET_SECONDS",
    "ANDREW_REMOTE_PENALTY_TARGET",
    "CALL_MIX_TARGET",
    "HIT_RATIO_TARGET",
    "SERVER_CPU_TARGET",
    "SERVER_DISK_TARGET",
    "calibrated_rpc_costs",
    "calibrated_venus_costs",
    "calibrated_vice_costs",
]

# The paper's quantitative anchors (EXPERIMENTS.md checks against these).
ANDREW_LOCAL_TARGET_SECONDS = 1000.0
ANDREW_REMOTE_PENALTY_TARGET = 0.80  # "about 80% longer"
HIT_RATIO_TARGET = 0.80  # "average cache hit ratio of over 80%"
SERVER_CPU_TARGET = 0.40  # "nearly 40% on the most heavily loaded servers"
SERVER_DISK_TARGET = 0.14  # "averaging about 14%"
CALL_MIX_TARGET = {"validate": 0.65, "status": 0.27, "fetch": 0.04, "store": 0.02}


def calibrated_rpc_costs() -> RpcCosts:
    """The RPC cost model fitted to the anchors above."""
    return RpcCosts()


def calibrated_vice_costs(mode: str = "revised") -> ViceCosts:
    """The Vice cost model for a given implementation mode."""
    return ViceCosts.prototype() if mode == "prototype" else ViceCosts.revised()


def calibrated_venus_costs() -> VenusCosts:
    """The Venus (client) cost model."""
    return VenusCosts()
