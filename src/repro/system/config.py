"""System-level configuration.

One :class:`SystemConfig` describes an entire campus deployment: which of
the paper's two implementations to run, the cluster topology, hardware
speeds and security settings.  The defaults model the prototype-era
deployment unit — a cluster of ~20 workstations per server (§5.2's
operating point) — scaled down to sizes a laptop simulates quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # imports kept lazy: plain runs never load the modules
    from repro.sim.shard import ShardConfig
    from repro.vice.erasure import ErasureConfig

from repro.faults.plan import FaultPlan
from repro.rpc.costs import EncryptionMode, RpcCosts
from repro.vice.costs import ViceCosts
from repro.vice.replication import ReplicationConfig
from repro.venus.venus import VenusCosts

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build an :class:`~repro.system.itc.ITCSystem`."""

    # Which implementation (see repro.vice.server.ViceServer's table).
    mode: str = "revised"
    # Event-kernel scheduler: "calendar" (bucketed time wheel, the default)
    # or "heap" (the original binary heap, kept as the reference oracle).
    # Both produce byte-identical virtual outputs; see docs/performance.md.
    scheduler: str = "calendar"
    # Cache-validation policy; None derives the mode's default
    # (prototype -> check-on-open, revised -> callback).
    validation: Optional[str] = None

    # Topology (Fig. 2-2): clusters on a backbone, one server per cluster.
    clusters: int = 2
    workstations_per_cluster: int = 5

    # Hardware. Cluster servers were bigger machines than workstations.
    server_cpu_speed: float = 2.0
    workstation_cpu_speed: float = 1.0
    backbone_bandwidth_bps: float = 10_000_000.0
    cluster_bandwidth_bps: float = 10_000_000.0

    # Security.
    encryption: str = EncryptionMode.HARDWARE
    # Actually run the cipher over file payloads (demonstrably secure but
    # Python-expensive); long synthetic runs turn this off and keep only
    # the virtual-time charge.
    functional_payload_crypto: bool = True
    # Let in-process transfers hand the plaintext across after verifying the
    # tag (wire bytes are unchanged); turn off to force a full keystream
    # unseal at every hop, as a real network receiver would do.
    payload_fast_path: bool = True

    # Venus cache.
    cache_max_files: int = 500
    cache_max_bytes: int = 20_000_000
    # Store-through policy: "on-close" (the paper's choice) or "deferred"
    # (the §3.2 alternative, kept for the ablation bench).
    write_policy: str = "on-close"
    flush_delay: float = 30.0
    # Deferred write-back retries before a failed flush is declared lost.
    # 0 reproduces the historical single silent attempt's timing exactly.
    flush_retry_limit: int = 2

    # Prototype Unix limits: per-client server processes.
    max_server_processes: Optional[int] = 64

    # Cost-model overrides (None -> the mode's calibrated defaults).
    rpc_costs: Optional[RpcCosts] = None
    vice_costs: Optional[ViceCosts] = None
    venus_costs: Optional[VenusCosts] = None

    # Read-write volume replication (see repro.vice.replication).  None —
    # the default — builds no controller, no heartbeats and no replica
    # hooks, keeping the campus byte-identical to pre-replication builds.
    # Revised mode only.
    replication: Optional[ReplicationConfig] = None

    # Erasure-coded storage (see repro.vice.erasure).  None — the default
    # — imports nothing and keeps the campus byte-identical; an
    # ErasureConfig stripes every volume into k data + m parity fragments
    # on distinct servers.  Revised mode only; exclusive with replication.
    erasure: Optional["ErasureConfig"] = None

    # Fault injection (see repro.faults).  None keeps every fault hook off
    # and the campus byte-identical to a build without the faults package;
    # a plan — even an empty "clean" one — installs the scheduler and the
    # availability tracker at construction time.
    fault_plan: Optional[FaultPlan] = None

    # Sharded parallel execution (see repro.sim.shard).  None — the
    # default — keeps the single-process kernel and imports nothing; a
    # ShardConfig makes run_campus_day fan the clusters out over
    # per-shard event loops with conservative bridge lookahead.
    sharding: Optional["ShardConfig"] = None

    seed: int = 0

    def with_(self, **changes) -> "SystemConfig":
        """A copy with selected fields replaced."""
        return replace(self, **changes)

    @classmethod
    def prototype(cls, **overrides) -> "SystemConfig":
        """The 1985 prototype configuration."""
        return cls(mode="prototype", **overrides)

    @classmethod
    def revised(cls, **overrides) -> "SystemConfig":
        """The revised (post-§5.3) configuration."""
        return cls(mode="revised", **overrides)

    @property
    def total_workstations(self) -> int:
        """Workstation count across all clusters."""
        return self.clusters * self.workstations_per_cluster
