"""The front door: an entire ITC campus in one object.

:class:`ITCSystem` assembles the network, cluster servers and workstations
from a :class:`~repro.system.config.SystemConfig`, and offers:

* **setup-time administration** — create users, groups and volumes before
  the simulated day begins (the equivalent of the operations staff priming
  the system); these calls mutate the master databases and synchronise all
  server replicas instantaneously;
* **runtime operations** — everything else goes through the real protocol:
  ``run_op`` drives any workstation/server generator to completion while
  the rest of the campus keeps running;
* **measurement** — the §5.2 numbers (busiest-server utilization, campus
  call mix, mean hit ratio) read directly off the components.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Dict, Generator, Iterator, List, Optional, Tuple

from repro.crypto.keys import derive_user_key
from repro.errors import FileNotFound, InvalidArgument
from repro.faults.plan import FaultPlan
from repro.faults.scheduler import FaultScheduler
from repro.obs.availability import AvailabilityTracker
from repro.sim.kernel import Simulator
from repro.sim.rand import WorkloadRandom
from repro.storage import pathutil
from repro.system.config import SystemConfig
from repro.system.topology import (
    build_network,
    build_servers,
    build_workstations,
    rpc_costs_for,
    server_name,
)
from repro.vice.protection import AccessList
from repro.vice.replication import ReplicationController, ServerReplication
from repro.vice.server import ViceServer
from repro.vice.volume import Volume
from repro.virtue.session import UserSession
from repro.virtue.workstation import Workstation

__all__ = ["ITCSystem"]

_ROOT_VOLUME = "root"


class ITCSystem:
    """A whole simulated campus: Vice, Virtue, and the wires between."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig()
        self.sim = Simulator(scheduler=self.config.scheduler)
        self.rng = WorkloadRandom(self.config.seed)
        self.service_key = derive_user_key("vice", "itc-internal-service-key")
        self.network = build_network(self.sim, self.config)
        self.servers: List[ViceServer] = build_servers(
            self.sim, self.network, self.config, self.service_key
        )
        self.workstations: List[Workstation] = build_workstations(
            self.sim, self.network, self.config
        )
        self._ws_by_name = {ws.name: ws for ws in self.workstations}
        self._server_by_name = {s.host.name: s for s in self.servers}
        self._volume_counter = 0
        self._batch_depth = 0
        self._sync_pending = False

        # Read-write replication (repro.vice.replication): a controller
        # host on the backbone, a per-server agent, and Venus failover.
        # None of it exists unless configured, so unreplicated campuses
        # stay byte-identical to pre-replication builds.
        self.replication_controller: Optional[ReplicationController] = None
        if self.config.replication is not None:
            if self.config.mode == "prototype":
                raise InvalidArgument(
                    "read-write replication requires the revised implementation"
                )
            self.replication_controller = ReplicationController(
                self.sim,
                self.network,
                self.config.replication,
                self.service_key,
                rpc_costs=rpc_costs_for(self.config),
                encryption=self.config.encryption,
            )
            for server in self.servers:
                server.replication = ServerReplication(
                    server, self.config.replication
                )
                self.replication_controller.register_server(server.host.name)
            all_names = [s.host.name for s in self.servers]
            for workstation in self.workstations:
                workstation.venus.enable_failover(all_names)

        # Erasure-coded storage (repro.vice.erasure): same controller and
        # per-server agent shape as replication — subclasses of it — plus
        # fragment-aware Venus fetch.  The module is imported only here,
        # so plain campuses never load it.
        if self.config.erasure is not None:
            if self.config.mode == "prototype":
                raise InvalidArgument(
                    "erasure coding requires the revised implementation"
                )
            if self.config.replication is not None:
                raise InvalidArgument(
                    "erasure coding and read-write replication are exclusive"
                )
            econf = self.config.erasure
            if len(self.servers) < econf.width:
                raise InvalidArgument(
                    f"ErasureConfig({econf.data}+{econf.parity}) needs"
                    f" {econf.width} servers, have {len(self.servers)}"
                )
            from repro.vice.erasure import ErasureController, ServerErasure

            self.replication_controller = ErasureController(
                self.sim,
                self.network,
                econf,
                self.service_key,
                rpc_costs=rpc_costs_for(self.config),
                encryption=self.config.encryption,
            )
            for server in self.servers:
                server.replication = ServerErasure(server, econf)
                self.replication_controller.register_server(server.host.name)
            all_names = [s.host.name for s in self.servers]
            for workstation in self.workstations:
                workstation.venus.enable_erasure(all_names)

        # Master copies of the replicated databases; setup-time mutations
        # apply here and are pushed to every server replica.
        self._location_master = self.servers[0].location
        self._protection_master = self.servers[0].protection
        self._protection_master.add_user("vice", self.service_key)

        root = Volume(_ROOT_VOLUME, "vice root", clock=lambda: self.sim.now)
        self.servers[0].add_volume(root)
        entry = self._location_master.add("/", _ROOT_VOLUME, self.servers[0].host.name)
        self._attach_replicas(root, self.servers[0], entry)
        self.sync_databases()

        # Fault injection (repro.faults): nothing exists until a plan is
        # installed, so unfaulted campuses stay byte-identical to builds
        # predating the subsystem.
        self.availability: Optional[AvailabilityTracker] = None
        self.fault_scheduler: Optional[FaultScheduler] = None
        if self.config.fault_plan is not None:
            self.install_faults(self.config.fault_plan)

    # ==================================================================
    # lookups
    # ==================================================================

    def workstation(self, name_or_index) -> Workstation:
        """A workstation by name ("ws0-1") or by flat index."""
        if isinstance(name_or_index, int):
            return self.workstations[name_or_index]
        return self._ws_by_name[name_or_index]

    def server(self, name_or_index) -> ViceServer:
        """A cluster server by name ("server0") or cluster index."""
        if isinstance(name_or_index, int):
            return self._server_by_name[server_name(name_or_index)]
        return self._server_by_name[name_or_index]

    def volume(self, volume_id: str) -> Volume:
        """A volume object wherever it currently lives (primary preferred)."""
        try:
            entry = self._location_master.entry_for_volume(volume_id)
        except FileNotFound:
            entry = None
        if entry is not None:
            custodian = self._server_by_name.get(entry.custodian)
            if custodian is not None and volume_id in custodian.volumes:
                return custodian.volumes[volume_id]
        for server in self.servers:
            if volume_id in server.volumes:
                return server.volumes[volume_id]
        raise InvalidArgument(f"volume {volume_id!r} not found on any server")

    # ==================================================================
    # setup-time administration
    # ==================================================================

    @contextmanager
    def batch_setup(self) -> Iterator["ITCSystem"]:
        """Defer replica synchronisation until the end of a setup block.

        Every individual ``add_user``/``add_group``/``create_volume`` call
        pushes full database snapshots to every server, which is quadratic
        when provisioning a whole campus.  Inside this block the pushes are
        coalesced: the masters are mutated immediately (so later setup calls
        observe earlier ones), and a single ``sync_databases`` runs on exit.
        Blocks nest; only the outermost exit synchronises.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._sync_pending:
                self._sync_pending = False
                self.sync_databases()

    def sync_databases(self) -> None:
        """Copy the master location/protection databases to every replica."""
        if self._batch_depth > 0:
            self._sync_pending = True
            return
        location = self._location_master.snapshot()
        protection = self._protection_master.snapshot()
        for server in self.servers:
            if server.location is not self._location_master:
                server.location.load_snapshot(location)
            if server.protection is not self._protection_master:
                server.protection.load_snapshot(protection)
        if self.replication_controller is not None:
            self.replication_controller.location.load_snapshot(location)

    def add_user(self, username: str, password: str) -> bytes:
        """Register a user campus-wide; returns their derived key."""
        key = derive_user_key(username, password)
        self._protection_master.add_user(username, key)
        self.sync_databases()
        return key

    def add_group(self, group: str, members: Optional[List[str]] = None) -> None:
        """Create a group and optionally populate it."""
        self._protection_master.add_group(group)
        for member in members or []:
            self._protection_master.add_member(group, member)
        self.sync_databases()

    def add_member(self, group: str, member: str) -> None:
        """Add a user or group to a group."""
        self._protection_master.add_member(group, member)
        self.sync_databases()

    def create_volume(
        self,
        mount_path: str,
        custodian=0,
        volume_id: Optional[str] = None,
        owner: str = "system:administrators",
        quota_bytes: Optional[int] = None,
    ) -> Volume:
        """Create and mount a volume; stub directories appear in the parent.

        The prototype represented mounts as "stub directories in the Vice
        file storage structure"; we keep that so directory listings show
        mounted subtrees.
        """
        server = self.server(custodian) if not isinstance(custodian, ViceServer) else custodian
        mount_path = pathutil.normalize(mount_path)
        if volume_id is None:
            self._volume_counter += 1
            volume_id = f"vol{self._volume_counter}"
        volume = Volume(
            volume_id,
            mount_path.strip("/").replace("/", ".") or "root",
            clock=lambda: self.sim.now,
            quota_bytes=quota_bytes,
            owner=owner,
        )
        if owner != "system:administrators":
            acl = volume.acls[volume.fs.root.number]
            acl.grant(owner, "rwidlak")
        server.add_volume(volume)
        self._make_stub_dirs(mount_path)
        entry = self._location_master.add(mount_path, volume_id, server.host.name)
        self._attach_replicas(volume, server, entry)
        self.sync_databases()
        return volume

    def _attach_replicas(self, volume: Volume, server: ViceServer, entry) -> None:
        """Place secondary copies on the next servers around the ring.

        The copies are byte-exact snapshots of the (still empty) primary,
        so identical setup-time mutations — :meth:`populate` et al. apply
        to every copy in the same order — assign identical vnode numbers,
        and Venus fid caches survive a failover unchanged.
        """
        if self.config.erasure is not None:
            self._attach_stripe(volume, server, entry)
            return
        rconf = self.config.replication
        if rconf is None or rconf.factor < 2 or len(self.servers) < 2:
            return
        names = [s.host.name for s in self.servers]
        start = names.index(server.host.name)
        count = min(rconf.factor, len(names))
        replicas = [names[(start + i) % len(names)] for i in range(count)]
        volume.replica_role = "primary"
        for name in replicas[1:]:
            copy = Volume.from_snapshot(volume.snapshot(), clock=lambda: self.sim.now)
            copy.replica_role = "secondary"
            # from_snapshot advances the inode allocator one past the
            # highest shipped vnode; the just-created primary's allocator
            # still sits at the start.  Realign so the identical-order
            # setup mutations below (populate, stub dirs) assign identical
            # vnode numbers on every copy.
            copy.fs._inode_numbers = itertools.count(2)
            self._server_by_name[name].add_volume(copy)
        entry.replicas = replicas

    def _attach_stripe(self, volume: Volume, server: ViceServer, entry) -> None:
        """Place stripe-member copies: slot i of entry.replicas holds
        fragment i of every file.  Metadata is a byte-exact snapshot on
        every member — like replication secondaries — so identical
        setup-time mutations assign identical vnode numbers and a
        promoted member can serve fids unchanged.
        """
        from repro.vice.erasure import plan_stripe

        econf = self.config.erasure
        names = plan_stripe(
            self._location_master,
            [s.host.name for s in self.servers],
            server.host.name,
            econf.width,
        )
        volume.replica_role = "primary"
        volume.erasure_shape = (econf.data, econf.parity)
        volume.erasure_index = 0
        for index, name in enumerate(names[1:], start=1):
            copy = Volume.from_snapshot(volume.snapshot(), clock=lambda: self.sim.now)
            copy.replica_role = "secondary"
            copy.erasure_index = index
            # Realign the allocator as _attach_replicas does.
            copy.fs._inode_numbers = itertools.count(2)
            self._server_by_name[name].add_volume(copy)
        entry.replicas = names
        entry.erasure = [econf.data, econf.parity]

    def _all_copies(self, volume: Volume) -> List[Volume]:
        """Every server's copy of a volume, the given one first."""
        copies = [volume]
        for server in self.servers:
            copy = server.volumes.get(volume.volume_id)
            if copy is not None and copy is not volume:
                copies.append(copy)
        return copies

    def _make_stub_dirs(self, mount_path: str) -> None:
        if mount_path == "/":
            return
        entry, _rest = self._location_master.resolve(pathutil.dirname(mount_path))
        parent_volume = self.volume(entry.volume_id)
        relative = (
            mount_path[len(entry.mount_path):] if entry.mount_path != "/" else mount_path
        )
        for copy in self._all_copies(parent_volume):
            built = ""
            for part in pathutil.components(relative):
                built = built + "/" + part
                if not copy.fs.exists(built):
                    copy.mkdir(built)

    def create_user_volume(self, username: str, cluster: int = 0, quota_bytes=None) -> Volume:
        """A user's home subtree at ``/usr/<name>``, custodian in ``cluster``.

        "A faculty member's files, for instance, would be assigned to the
        custodian which is in the same cluster as the workstation in his
        office."
        """
        return self.create_volume(
            f"/usr/{username}",
            custodian=cluster,
            volume_id=f"u-{username}",
            owner=username,
            quota_bytes=quota_bytes,
        )

    def populate(self, volume: Volume, tree: Dict[str, bytes], owner: str = "system:administrators") -> None:
        """Pre-load files into a volume (setup-time content, no protocol)."""
        copies = self._all_copies(volume)
        coded = copies[0].erasure_shape is not None
        if coded:
            from repro.vice.erasure import encode
        for path, data in sorted(tree.items()):
            path = pathutil.normalize(path)
            parent = pathutil.dirname(path)
            if coded:
                frags = encode(data, *copies[0].erasure_shape)
            for copy in copies:
                if not copy.fs.exists(parent):
                    parts = pathutil.components(parent)
                    built = ""
                    for part in parts:
                        built += "/" + part
                        if not copy.fs.exists(built):
                            copy.mkdir(built, owner=owner)
                if coded:
                    node = copy.write(path, b"", owner=owner)
                    copy.set_fragment(node.number, frags[copy.erasure_index], len(data))
                else:
                    copy.write(path, data, owner=owner)

    def set_directory_acl(self, volume: Volume, path: str, acl: AccessList) -> None:
        """Setup-time ACL assignment on a directory inside a volume."""
        for copy in self._all_copies(volume):
            inode = copy.resolve(path)
            copy.acls[inode.number] = acl

    # ==================================================================
    # fault injection
    # ==================================================================

    def install_faults(self, plan: FaultPlan) -> FaultScheduler:
        """Install a fault plan: availability tracking plus the scheduler.

        Idempotence is deliberate — a campus runs at most one plan, so a
        second installation raises.  Installing even an empty plan turns
        availability accounting on; it never changes virtual time.
        """
        if self.fault_scheduler is not None:
            raise InvalidArgument("a fault plan is already installed")
        self.availability = AvailabilityTracker(self.sim)
        if self.replication_controller is not None:
            self.replication_controller.tracker = self.availability
        self.fault_scheduler = FaultScheduler(self, plan)
        self.fault_scheduler.install()
        return self.fault_scheduler

    def ensure_fault_controls(self) -> FaultScheduler:
        """The fault scheduler, installing an empty plan if none exists.

        The ops console needs somewhere to enqueue live injections even on
        a campus built without a plan; an empty plan turns on availability
        accounting and the scheduler without scheduling anything.
        """
        if self.fault_scheduler is None:
            self.install_faults(FaultPlan(name="live-controls"))
        return self.fault_scheduler

    # ==================================================================
    # runtime driving
    # ==================================================================

    def login(self, ws, username: str, password: str) -> UserSession:
        """A session for ``username`` at a workstation (name, index or object)."""
        workstation = ws if isinstance(ws, Workstation) else self.workstation(ws)
        return UserSession(workstation, username, password)

    def run(self, until: Optional[float] = None) -> None:
        """Advance the whole campus."""
        self.sim.run(until=until)

    def run_op(self, generator: Generator, limit: float = 1e9) -> Any:
        """Drive one operation to completion; returns its value."""
        return self.sim.run_until_complete(self.sim.process(generator), limit=limit)

    # ==================================================================
    # measurement (the §5.2 numbers)
    # ==================================================================

    @property
    def metrics(self):
        """The campus-wide metrics registry (see :mod:`repro.obs.registry`)."""
        return self.sim.metrics

    @property
    def tracer(self):
        """The campus tracer (the null recorder unless tracing is enabled)."""
        return self.sim.tracer

    def reset_counters(self) -> None:
        """Zero the call-mix and cache counters (end of a warm-up phase).

        Utilization integrals are windowed by ``start=`` instead, so they
        need no reset.
        """
        for server in self.servers:
            server.call_mix = type(server.call_mix)(server.call_mix.name)
            server.node.calls_received = type(server.node.calls_received)(
                server.node.calls_received.name
            )
        for workstation in self.workstations:
            cache = workstation.venus.cache
            cache.hits = 0
            cache.misses = 0
            cache.evictions = 0
            workstation.venus.validations = 0
            workstation.venus.fetches = 0
            workstation.venus.stores = 0

    def busiest_server(self, start: float = 0.0, end=None) -> Tuple[ViceServer, float]:
        """The server with the highest mean CPU utilization over the window."""
        best = max(self.servers, key=lambda s: s.host.cpu_utilization(start, end))
        return best, best.host.cpu_utilization(start, end)

    def campus_call_mix(self) -> Dict[str, float]:
        """Call-category shares summed over all servers (EXP-1)."""
        totals: Dict[str, int] = {}
        for server in self.servers:
            for label, count in server.call_mix.as_dict().items():
                totals[label] = totals.get(label, 0) + count
        grand = sum(totals.values())
        return {k: v / grand for k, v in sorted(totals.items())} if grand else {}

    def mean_hit_ratio(self) -> float:
        """Open-weighted Venus cache hit ratio across all workstations."""
        hits = sum(ws.venus.cache.hits for ws in self.workstations)
        misses = sum(ws.venus.cache.misses for ws in self.workstations)
        total = hits + misses
        return hits / total if total else 0.0

    def cross_cluster_bytes(self) -> int:
        """Wire bytes that crossed the backbone (locality measure)."""
        return self.network.total_bytes_on("backbone")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ITCSystem {self.config.mode} clusters={self.config.clusters}"
            f" workstations={len(self.workstations)}>"
        )
