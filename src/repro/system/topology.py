"""Topology builders: the Fig. 2-2 campus out of substrate parts.

"Vice is composed of a collection of semi-autonomous Clusters connected
together by a backbone LAN... Each cluster consists of a collection of
Virtue workstations and a representative of Vice called a Cluster Server."

These builders create exactly that shape: one segment per cluster, a
backbone segment, one bridge per cluster, one :class:`ViceServer` per
cluster, and the configured number of workstations per cluster whose home
(cluster) server is their own cluster's.
"""

from __future__ import annotations

from typing import List

from repro.net.topology import Network
from repro.hosts import Host
from repro.rpc.costs import RpcCosts
from repro.sim.kernel import Simulator
from repro.system.config import SystemConfig
from repro.vice.server import ViceServer
from repro.virtue.workstation import Workstation


def rpc_costs_for(config: SystemConfig) -> RpcCosts:
    """The configured RPC cost model, defaulting by implementation mode."""
    if config.rpc_costs is not None:
        return config.rpc_costs
    costs = RpcCosts.prototype() if config.mode == "prototype" else RpcCosts.revised()
    if config.replication is not None:
        # Replicated campuses exist to ride through failures: fixed-interval
        # retransmission hammers a dead or partitioned server in lockstep,
        # so give them exponential backoff with seeded jitter by default.
        costs = costs.with_(retransmit_backoff=2.0, retransmit_jitter=0.1)
    return costs

__all__ = ["build_network", "build_servers", "build_workstations", "cluster_segment", "server_name"]


def cluster_segment(index: int) -> str:
    """Canonical segment name for a cluster."""
    return f"cluster{index}"


def server_name(index: int) -> str:
    """Canonical name of a cluster's server."""
    return f"server{index}"


def workstation_name(cluster: int, index: int) -> str:
    """Canonical name of a workstation within a cluster."""
    return f"ws{cluster}-{index}"


def build_network(sim: Simulator, config: SystemConfig) -> Network:
    """Backbone plus one bridged segment per cluster."""
    network = Network(sim)
    network.add_segment("backbone", bandwidth_bps=config.backbone_bandwidth_bps)
    for cluster in range(config.clusters):
        name = cluster_segment(cluster)
        network.add_segment(name, bandwidth_bps=config.cluster_bandwidth_bps)
        network.add_bridge(f"bridge{cluster}", name, "backbone")
    return network


def build_servers(
    sim: Simulator, network: Network, config: SystemConfig, service_key: bytes
) -> List[ViceServer]:
    """One cluster server per cluster, knowing about all its peers."""
    servers: List[ViceServer] = []
    for cluster in range(config.clusters):
        host = Host(
            sim,
            network,
            server_name(cluster),
            cluster_segment(cluster),
            cpu_speed=config.server_cpu_speed,
        )
        server = ViceServer(
            host,
            mode=config.mode,
            validation_mode=config.validation,
            costs=config.vice_costs,
            rpc_costs=rpc_costs_for(config),
            encryption=config.encryption,
            service_key=service_key,
            max_server_processes=config.max_server_processes,
            functional_payload_crypto=config.functional_payload_crypto,
            payload_fast_path=config.payload_fast_path,
        )
        servers.append(server)
    names = [s.host.name for s in servers]
    for server in servers:
        server.all_servers = list(names)
    return servers


def build_workstations(
    sim: Simulator, network: Network, config: SystemConfig
) -> List[Workstation]:
    """The configured workstations, homed on their cluster's server."""
    workstations: List[Workstation] = []
    for cluster in range(config.clusters):
        for index in range(config.workstations_per_cluster):
            workstation = Workstation(
                sim,
                network,
                workstation_name(cluster, index),
                cluster_segment(cluster),
                cluster_server=server_name(cluster),
                mode=config.mode,
                validation=config.validation,
                cpu_speed=config.workstation_cpu_speed,
                cache_max_files=config.cache_max_files,
                cache_max_bytes=config.cache_max_bytes,
                venus_costs=config.venus_costs,
                rpc_costs=rpc_costs_for(config),
                encryption=config.encryption,
                functional_payload_crypto=config.functional_payload_crypto,
                payload_fast_path=config.payload_fast_path,
                write_policy=config.write_policy,
                flush_delay=config.flush_delay,
                flush_retry_limit=config.flush_retry_limit,
            )
            workstations.append(workstation)
    return workstations
