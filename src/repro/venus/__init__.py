"""Venus: the workstation cache manager (whole-file caching, §3.2/§3.5.1)."""

from repro.venus.cache import CacheEntry, WholeFileCache
from repro.venus.hints import MountHints
from repro.venus.venus import Venus, VenusCosts

__all__ = ["CacheEntry", "MountHints", "Venus", "VenusCosts", "WholeFileCache"]
