"""Venus's whole-file cache.

"Part of the disk on each workstation is used to store local files, while
the rest is used as a cache of files in Vice" (§3.2).  Entire files are
cached; the cache state is therefore tiny compared to a page cache — one
entry per file — which is the property the paper leans on.

Two eviction policies, matching §3.5.1 and §5.3:

* ``"count"`` — the prototype's simple LRU bounded by *number of files*
  ("Venus limits the total number of files in the cache rather than the
  total size ... In view of our negative experience with this approach...");
* ``"space"`` — the reimplementation's space-limited LRU.

Entries with open descriptors or unwritten dirty data are never evicted.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import NoSpace
from repro.sim.kernel import Simulator

__all__ = ["CacheEntry", "WholeFileCache"]


class CacheEntry:
    """One cached Vice file, with the status Venus needs to reuse it."""

    __slots__ = (
        "vice_path",
        "fid",
        "data",
        "version",
        "status",
        "dirty",
        "callback_valid",
        "last_used",
        "open_count",
    )

    def __init__(self, vice_path: str, fid: str, data: bytes, version: int, status: Dict):
        self.vice_path = vice_path
        self.fid = fid
        self.data = data
        self.version = version
        self.status = status
        self.dirty = False
        self.callback_valid = True
        self.last_used = 0.0
        self.open_count = 0

    @property
    def size(self) -> int:
        """Cached bytes."""
        return len(self.data)

    @property
    def evictable(self) -> bool:
        """True when LRU may discard this entry."""
        return self.open_count == 0 and not self.dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, on in [("D", self.dirty), ("V", self.callback_valid)]
            if on
        )
        return f"<CacheEntry {self.vice_path} v{self.version} {self.size}B {flags}>"


class WholeFileCache:
    """LRU cache of whole Vice files, keyed by Vice path and by fid."""

    def __init__(
        self,
        sim: Simulator,
        policy: str = "space",
        max_files: int = 500,
        max_bytes: int = 20_000_000,
    ):
        if policy not in ("count", "space"):
            raise ValueError(f"unknown cache policy {policy!r}")
        self.sim = sim
        self.policy = policy
        self.max_files = max_files
        self.max_bytes = max_bytes
        self._entries: Dict[str, CacheEntry] = {}
        self._by_fid: Dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CacheEntry]:
        return iter(list(self._entries.values()))

    @property
    def used_bytes(self) -> int:
        """Total cached data bytes."""
        return sum(entry.size for entry in self._entries.values())

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (the paper's >80 %)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- lookup ------------------------------------------------------------

    def lookup(self, vice_path: str) -> Optional[CacheEntry]:
        """The entry for a path, or None; does not count hit/miss."""
        entry = self._entries.get(vice_path)
        if entry is not None:
            entry.last_used = self.sim.now
        return entry

    def lookup_fid(self, fid: str) -> Optional[CacheEntry]:
        """The entry holding a fid, or None."""
        path = self._by_fid.get(fid)
        return self._entries.get(path) if path is not None else None

    def note_hit(self) -> None:
        """Count an open served without fetching."""
        self.hits += 1

    def note_miss(self) -> None:
        """Count an open that required a fetch."""
        self.misses += 1

    # -- mutation ------------------------------------------------------------

    def insert(self, entry: CacheEntry) -> CacheEntry:
        """Add (or replace) an entry, evicting LRU victims to fit."""
        old = self._entries.get(entry.vice_path)
        if old is not None:
            self._by_fid.pop(old.fid, None)
        entry.last_used = self.sim.now
        self._entries[entry.vice_path] = entry
        self._by_fid[entry.fid] = entry.vice_path
        self._enforce_limits(protect=entry)
        return entry

    def remove(self, vice_path: str) -> None:
        """Discard an entry outright."""
        entry = self._entries.pop(vice_path, None)
        if entry is not None:
            self._by_fid.pop(entry.fid, None)

    def rename(self, old_path: str, new_path: str) -> None:
        """Track a rename: the fid (and data) is unchanged, the key moves."""
        entry = self._entries.pop(old_path, None)
        if entry is None:
            return
        replaced = self._entries.get(new_path)
        if replaced is not None and replaced is not entry:
            self._by_fid.pop(replaced.fid, None)  # the target was clobbered
        entry.vice_path = new_path
        self._entries[new_path] = entry
        self._by_fid[entry.fid] = new_path

    def invalidate_fid(self, fid: str) -> bool:
        """Mark the entry holding ``fid`` stale (a callback break)."""
        entry = self.lookup_fid(fid)
        if entry is None:
            return False
        entry.callback_valid = False
        self.invalidations += 1
        return True

    def invalidate_all(self) -> None:
        """Mark everything stale (connection loss: all promises void)."""
        for entry in self._entries.values():
            entry.callback_valid = False

    def _enforce_limits(self, protect: CacheEntry) -> None:
        def over_limit() -> bool:
            if self.policy == "count":
                return len(self._entries) > self.max_files
            return self.used_bytes > self.max_bytes

        while over_limit():
            victim = self._pick_victim(protect)
            if victim is None:
                # Nothing evictable: a pathological working set. The count
                # policy tolerates overflow (the prototype's flaw: bytes are
                # unbounded anyway); the space policy must refuse.
                if self.policy == "space" and protect.size > self.max_bytes:
                    self.remove(protect.vice_path)
                    raise NoSpace(
                        f"file of {protect.size} bytes cannot fit cache of {self.max_bytes}"
                    )
                break
            self.remove(victim.vice_path)
            self.evictions += 1

    def _pick_victim(self, protect: CacheEntry) -> Optional[CacheEntry]:
        candidates = [
            entry
            for entry in self._entries.values()
            if entry is not protect and entry.evictable
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.last_used)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WholeFileCache {self.policy} files={len(self)}"
            f" bytes={self.used_bytes} hit_ratio={self.hit_ratio:.2f}>"
        )
