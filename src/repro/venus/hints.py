"""Venus's custodian hint cache.

"Clients use cached location information as hints" (§6.1): Venus remembers
which mount points exist and who their custodians are, so the common case
costs no location traffic at all.  A hint can go stale (a volume moved); the
server then answers :class:`~repro.errors.NotCustodian` with a referral and
Venus refreshes the hint.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.storage import pathutil

__all__ = ["MountHints"]


class MountHints:
    """Longest-prefix cache of location entries, keyed by mount path."""

    def __init__(self):
        self._entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        self.refreshes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, vice_path: str) -> Optional[Dict]:
        """Best known entry for a path (longest prefix), or None."""
        candidate = pathutil.normalize(vice_path)
        while True:
            entry = self._entries.get(candidate)
            if entry is not None:
                self.hits += 1
                return entry
            if candidate == "/":
                self.misses += 1
                return None
            candidate = pathutil.dirname(candidate)

    def install(self, entry: Dict) -> Dict:
        """Record (or refresh) an entry returned by ``GetCustodian``."""
        if entry["mount_path"] in self._entries:
            self.refreshes += 1
        self._entries[entry["mount_path"]] = entry
        return entry

    def forget(self, mount_path: str) -> None:
        """Drop a stale hint."""
        self._entries.pop(mount_path, None)

    def redirect(self, mount_path: str, new_custodian: str) -> None:
        """Apply a NotCustodian referral to a cached hint."""
        entry = self._entries.get(mount_path)
        if entry is not None:
            entry["custodian"] = new_custodian
            self.refreshes += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MountHints entries={len(self)} hits={self.hits} misses={self.misses}>"
