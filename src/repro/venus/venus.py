"""Venus: the user-level cache manager on every Virtue workstation.

Paper §3.5.1: "Venus handles management of the cache, communication with
Vice and the emulation of native file system primitives for Vice files."

The operations here are the Vice half of every Virtue system call:

* ``open`` → cache lookup, validation (check-on-open) or callback trust
  (invalidate-on-modify), whole-file fetch on miss;
* ``close`` → whole-file store-through when the file was modified
  ("Virtue stores a file back when it is closed");
* directory operations → forwarded to the custodian, with referral
  handling via cached location hints;
* ``BreakCallback`` service → the server's invalidate-on-modification
  notifications land here and mark cache entries stale.

``mode`` mirrors the server's two implementations: in ``"prototype"`` mode
Venus sends full pathnames and the server traverses them; in ``"revised"``
mode Venus caches directories, walks paths itself and speaks the fid
protocol.  ``validation`` selects check-on-open vs callback independently,
so the EXP-6 ablation can isolate the validation policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.crypto.keys import derive_user_key
from repro.errors import (
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    LeaseExpired,
    NoSpace,
    NotAuthenticated,
    NotCustodian,
    NotADirectory,
    ReproError,
    ServerUnavailable,
    TooManySymlinks,
)
from repro.hosts import Host
from repro.obs.trace import _NULL_SPAN
from repro.rpc.connection import Connection
from repro.rpc.costs import EncryptionMode, RpcCosts
from repro.rpc.node import RpcNode
from repro.storage import pathutil
from repro.vice.ids import make_fid, split_fid
from repro.venus.cache import CacheEntry, WholeFileCache
from repro.venus.hints import MountHints

__all__ = ["Venus", "VenusCosts"]

_NEW_FID_PREFIX = "new:"
_MAX_SYMLINK_HOPS = 12
_DEFAULT_FETCH_GUESS = 262_144


@dataclass(frozen=True)
class VenusCosts:
    """Client-side CPU prices (reference-machine seconds)."""

    open_base_cpu: float = 0.002
    close_base_cpu: float = 0.0015
    lookup_cpu: float = 0.0008
    per_byte_cpu: float = 1.5e-7  # copying into/out of the cache


class _DirEntry:
    """A cached directory: name -> {fid, type} plus validity state."""

    __slots__ = ("fid", "entries", "version", "valid", "vice_path")

    def __init__(self, fid: str, entries: Dict, version: int, vice_path: str):
        self.fid = fid
        self.entries = entries
        self.version = version
        self.valid = True
        self.vice_path = vice_path


class Venus:
    """The cache manager process of one workstation."""

    def __init__(
        self,
        host: Host,
        cluster_server: str,
        mode: str = "revised",
        validation: Optional[str] = None,
        cache_policy: Optional[str] = None,
        cache_max_files: int = 500,
        cache_max_bytes: int = 20_000_000,
        costs: Optional[VenusCosts] = None,
        rpc_costs: Optional[RpcCosts] = None,
        encryption: str = EncryptionMode.HARDWARE,
        functional_payload_crypto: bool = True,
        payload_fast_path: bool = True,
        write_policy: str = "on-close",
        flush_delay: float = 30.0,
        flush_retry_limit: int = 2,
        flush_retry_backoff: float = 2.0,
    ):
        if mode not in ("prototype", "revised"):
            raise InvalidArgument(f"unknown Venus mode {mode!r}")
        self.host = host
        self.sim = host.sim
        self.mode = mode
        self.validation = validation or ("check-on-open" if mode == "prototype" else "callback")
        if self.validation not in ("check-on-open", "callback"):
            raise InvalidArgument(f"unknown validation {self.validation!r}")
        if write_policy not in ("on-close", "deferred"):
            raise InvalidArgument(f"unknown write policy {write_policy!r}")
        # §3.2: "Changes to a cached file may be transmitted on close ... or
        # deferred until a later time. In our design, Virtue stores a file
        # back when it is closed."  The deferred alternative is implemented
        # for the EXP-13 ablation: closes coalesce and flush after a delay,
        # trading crash safety and freshness for fewer stores.
        self.write_policy = write_policy
        self.flush_delay = flush_delay
        # Bounded write-back retry: a deferred flush that fails retries up
        # to flush_retry_limit times with exponential backoff before the
        # write-back is declared lost (it used to be dropped silently).
        # Limit 0 reproduces the historical single attempt exactly — same
        # virtual timing — while still counting the loss.
        self.flush_retry_limit = flush_retry_limit
        self.flush_retry_backoff = flush_retry_backoff
        self.deferred_flushes = 0
        self.coalesced_stores = 0
        self.flush_retries = 0
        self.lost_writes = 0
        self._flushing: set = set()
        self._flush_scheduled: set = set()
        # Replicated campuses list every server here (enable_failover):
        # on ServerUnavailable/LeaseExpired Venus refreshes its location
        # hint against these and retries at the new primary.  Empty means
        # the historical behavior: such errors surface immediately.
        self.failover_servers: List[str] = []
        self.failovers = 0
        # Striped fetches that had to reconstruct around an unreachable
        # stripe member (erasure-coded campuses only; see enable_erasure).
        self.degraded_reads = 0
        self._erasure_enabled = False
        self.cluster_server = cluster_server
        self.costs = costs or VenusCosts()

        self.node = RpcNode(
            host,
            costs=rpc_costs,
            transport="stream" if mode == "prototype" else "datagram",
            encryption=encryption,
            functional_payload_crypto=functional_payload_crypto,
            payload_fast_path=payload_fast_path,
        )
        self.node.register("BreakCallback", self._break_callback_handler)

        # Breaks that arrived for fids we do not (yet) hold: a callback can
        # race a fetch reply, and the fetched copy must not be trusted.
        self._pending_breaks: Dict[str, float] = {}
        self.cache = WholeFileCache(
            self.sim,
            policy=cache_policy or ("count" if mode == "prototype" else "space"),
            max_files=cache_max_files,
            max_bytes=cache_max_bytes,
        )
        self.dir_cache: Dict[str, _DirEntry] = {}
        self.hints = MountHints()
        self._keys: Dict[str, bytes] = {}
        self._connections: Dict[Tuple[str, str], Connection] = {}

        self.opens = 0
        self.stores = 0
        self.fetches = 0
        self.validations = 0
        self.callback_breaks_received = 0

        # Registry instruments (the dashboard and --metrics-json read these).
        # Providers close over self: reset_counters zeroes the raw ints and
        # the instruments keep reading the live values.
        metrics = self.sim.metrics
        prefix = f"venus.{host.name}"
        metrics.counter(f"{prefix}.opens", lambda: self.opens)
        metrics.counter(f"{prefix}.fetches", lambda: self.fetches)
        metrics.counter(f"{prefix}.stores", lambda: self.stores)
        metrics.counter(f"{prefix}.validations", lambda: self.validations)
        metrics.counter(f"{prefix}.callback_breaks_received",
                        lambda: self.callback_breaks_received)
        metrics.counter(f"{prefix}.flush_retries", lambda: self.flush_retries)
        metrics.counter(f"{prefix}.lost_writes", lambda: self.lost_writes)
        metrics.counter(f"{prefix}.failovers", lambda: self.failovers)
        metrics.counter(f"{prefix}.cache.hits", lambda: self.cache.hits)
        metrics.counter(f"{prefix}.cache.misses", lambda: self.cache.misses)
        metrics.counter(f"{prefix}.cache.evictions", lambda: self.cache.evictions)
        metrics.counter(f"{prefix}.cache.invalidations",
                        lambda: self.cache.invalidations)
        metrics.gauge(f"{prefix}.cache.hit_ratio", lambda: self.cache.hit_ratio)
        metrics.gauge(f"{prefix}.cache.files", lambda: len(self.cache))
        metrics.gauge(f"{prefix}.cache.used_bytes", lambda: self.cache.used_bytes)

    # ==================================================================
    # sessions
    # ==================================================================

    def login(self, username: str, secret) -> None:
        """Record the user's key (derived from a password, never sent)."""
        if isinstance(secret, bytes):
            self._keys[username] = secret
        else:
            self._keys[username] = derive_user_key(username, secret)

    def logout(self, username: str) -> None:
        """Drop the user's key and tear down their connections."""
        self._keys.pop(username, None)
        for (user, server), conn in list(self._connections.items()):
            if user == username:
                self.node.close_connection(conn)
                del self._connections[(user, server)]

    def _require_login(self, username: str) -> None:
        if username not in self._keys:
            raise NotAuthenticated(f"user {username} is not logged in here")

    def _conn(self, username: str, server: str) -> Generator[Any, Any, Connection]:
        key = self._keys.get(username)
        if key is None:
            raise NotAuthenticated(f"user {username} is not logged in here")
        conn = self._connections.get((username, server))
        if conn is not None and conn.established and not conn.closed:
            return conn
        conn = yield from self.node.connect(server, username, key)
        self._connections[(username, server)] = conn
        return conn

    # ==================================================================
    # location
    # ==================================================================

    def _entry_for(self, username: str, vice_path: str) -> Generator[Any, Any, Dict]:
        entry = self.hints.lookup(vice_path)
        if entry is not None:
            return entry
        result = yield from self._get_custodian(username, vice_path)
        return self.hints.install(result)

    def _get_custodian(self, username: str, vice_path: str) -> Generator[Any, Any, Dict]:
        """Location query, falling back across servers when failover is on."""
        probes = [self.cluster_server] + [
            s for s in self.failover_servers if s != self.cluster_server
        ]
        last_error: Optional[ReproError] = None
        for server in probes:
            try:
                conn = yield from self._conn(username, server)
                result, _ = yield from self.node.call(
                    conn, "GetCustodian", {"path": vice_path}
                )
                return result
            except ServerUnavailable as err:
                last_error = err
        raise last_error

    def _refresh_entry(self, username: str, entry: Dict) -> Generator[Any, Any, Dict]:
        """Drop a location hint that pointed at a dead primary and re-ask."""
        self.hints.forget(entry["mount_path"])
        self._distrust_cache()
        result = yield from self._get_custodian(username, entry["mount_path"])
        return self.hints.install(result)

    def _distrust_cache(self) -> None:
        """Drop callback trust across the cache after a failover.

        Promises were held with the old primary; the promoted replica has
        no record of them and cannot break them, so every writable cached
        copy must revalidate at its next open.
        """
        for entry in self.cache:
            if not entry.status.get("read_only"):
                entry.callback_valid = False
        for directory in self.dir_cache.values():
            directory.valid = False

    def enable_failover(self, servers: List[str]) -> None:
        """Let location queries and failed calls retry at these servers."""
        self.failover_servers = list(servers)

    def enable_erasure(self, servers: List[str]) -> None:
        """Turn on fragment-aware striped fetch (erasure-coded campus).

        Called by ITCSystem only when ``SystemConfig.erasure`` is set, so
        plain campuses register no erasure instrument at all.
        """
        self.enable_failover(servers)
        if not self._erasure_enabled:
            self._erasure_enabled = True
            self.sim.metrics.counter(
                f"erasure.{self.host.name}.degraded_reads",
                lambda: self.degraded_reads,
            )

    def _nearest(self, servers: List[str]) -> str:
        me = self.host.name
        return min(servers, key=lambda s: (self.host.network.hop_count(me, s), s))

    def _read_server(self, entry: Dict) -> str:
        """Prefer the nearest read-only replica when one exists (§3.2)."""
        candidates = list(entry.get("ro_servers") or [])
        if not candidates:
            return entry["custodian"]
        if entry["custodian"] not in candidates:
            candidates.append(entry["custodian"])
        return self._nearest(candidates)

    def _call_path(
        self,
        username: str,
        vice_path: str,
        procedure: str,
        args: Dict,
        want_write: bool,
        payload: bytes = b"",
        expect_bytes: int = 0,
    ) -> Generator[Any, Any, Tuple[Any, bytes]]:
        """Pathname-family call with custodian-referral and failover retry."""
        last_error: Optional[ReproError] = None
        for _attempt in range(4):
            entry = yield from self._entry_for(username, vice_path)
            server = entry["custodian"] if want_write else self._read_server(entry)
            try:
                conn = yield from self._conn(username, server)
                return (yield from self.node.call(
                    conn, procedure, args, payload=payload, expect_bytes=expect_bytes
                ))
            except NotCustodian as referral:
                last_error = NotCustodian(referral.custodian_hint)
                self.hints.redirect(entry["mount_path"], referral.custodian_hint)
            except (ServerUnavailable, LeaseExpired) as err:
                if not self.failover_servers:
                    raise
                # The custodian is dead or fenced: forget the hint and
                # re-resolve (the controller may have promoted a replica).
                self.failovers += 1
                last_error = err
                yield from self._refresh_entry(username, entry)
        raise last_error

    def _fid_call(
        self,
        username: str,
        entry: Dict,
        server: Optional[str],
        procedure: str,
        args: Dict,
        payload: bytes = b"",
        expect_bytes: int = 0,
    ) -> Generator[Any, Any, Tuple[Any, bytes]]:
        """Fid-family call with custodian-referral retry.

        ``server`` is the preferred first target (a read-only replica or a
        cached custodian hint); referrals update the mount hint, exactly as
        for pathname calls.
        """
        target = server or entry["custodian"]
        last_error: Optional[ReproError] = None
        for _attempt in range(4):
            try:
                conn = yield from self._conn(username, target)
                return (yield from self.node.call(
                    conn, procedure, args, payload=payload, expect_bytes=expect_bytes
                ))
            except NotCustodian as referral:
                last_error = NotCustodian(referral.custodian_hint)
                self.hints.redirect(entry["mount_path"], referral.custodian_hint)
                target = referral.custodian_hint
            except (ServerUnavailable, LeaseExpired) as err:
                if not self.failover_servers:
                    raise
                self.failovers += 1
                last_error = err
                entry = yield from self._refresh_entry(username, entry)
                target = entry["custodian"]
        raise last_error

    # ==================================================================
    # fid resolution (revised mode)
    # ==================================================================

    def _dir_entries(
        self, username: str, fid: str, entry: Dict, vice_path: str
    ) -> Generator[Any, Any, _DirEntry]:
        cached = self.dir_cache.get(fid)
        if cached is not None:
            if self.validation == "callback" and cached.valid:
                return cached
            if self.validation == "check-on-open":
                result, _ = yield from self._fid_call(
                    username, entry, self._fid_server(entry, fid),
                    "ValidateByFid", {"fid": fid, "version": cached.version},
                )
                self.validations += 1
                if result["valid"]:
                    return cached
                del self.dir_cache[fid]
        result, _ = yield from self._fid_call(
            username, entry, self._fid_server(entry, fid),
            "FetchDir", {"fid": fid}, expect_bytes=8192,
        )
        status = result["status"]
        fresh = _DirEntry(fid, result["entries"], status["version"], vice_path)
        if self._pending_breaks.pop(fid, None) is not None:
            fresh.valid = False
        self.dir_cache[fid] = fresh
        yield from self.host.disk.access(64 * max(1, len(fresh.entries)), write=True)
        return fresh

    def _resolve(
        self, username: str, vice_path: str, want_write: bool = False
    ) -> Generator[Any, Any, Tuple[str, str, str, Dict]]:
        """Walk cached directories: ``(fid, type, server, mount_entry)``.

        "Venus will translate a Vice pathname into a file identifier by
        caching the intermediate directories from Vice and traversing
        them" (§5.3).  Symlinks restart resolution at the expanded path.
        """
        path = pathutil.normalize(vice_path)
        for _hop in range(_MAX_SYMLINK_HOPS):
            entry = yield from self._entry_for(username, path)
            mount = entry["mount_path"]
            rest = path[len(mount):] if mount != "/" else path
            parts = pathutil.components(rest or "/")
            # Reads on a read-only-replicated volume walk the frozen clone
            # at the nearest replica site (§3.2's load-spreading).
            use_replica = not want_write and bool(entry.get("ro_servers"))
            volume_id = entry["volume_id"] + ("-ro" if use_replica else "")
            current_fid = make_fid(volume_id, 1)
            current_type = "directory"
            walked = mount
            symlink_target = None
            for index, part in enumerate(parts):
                directory = yield from self._dir_entries(username, current_fid, entry, walked)
                child = directory.entries.get(part)
                if child is None:
                    raise FileNotFound(path)
                walked = pathutil.join(walked, part)
                current_fid, current_type = child["fid"], child["type"]
                if current_type == "symlink":
                    result, _ = yield from self._fid_call(
                        username, entry, None,
                        "LookupVnode", {"fid": directory.fid, "name": part},
                    )
                    target = result["target"]
                    if not pathutil.is_abs(target):
                        target = pathutil.join(pathutil.dirname(walked), target)
                    remainder = "/".join(parts[index + 1:])
                    symlink_target = (
                        pathutil.join(target, remainder) if remainder else target
                    )
                    break
            if symlink_target is None:
                if want_write:
                    current_fid = self._rw_fid(current_fid)
                return current_fid, current_type, self._fid_server(entry, current_fid), entry
            path = pathutil.normalize(symlink_target)
        raise TooManySymlinks(vice_path)

    @staticmethod
    def _rw_fid(fid: str) -> str:
        volume_id, vnode = split_fid(fid)
        if volume_id.endswith("-ro"):
            return make_fid(volume_id[:-3], vnode)
        return fid

    def _fid_server(self, entry: Dict, fid: str) -> str:
        if fid.startswith(_NEW_FID_PREFIX):
            return entry["custodian"]
        volume_id, _ = split_fid(fid)
        if volume_id.endswith("-ro"):
            # A frozen-clone fid is only stored at the replica sites.
            replicas = entry.get("ro_servers") or []
            if replicas:
                return self._nearest(replicas)
        return entry["custodian"]

    def _resolve_for_read(self, username: str, vice_path: str):
        """Resolve, translating to a read-only replica fid when available."""
        fid, ftype, server, entry = yield from self._resolve(username, vice_path)
        if entry.get("ro_servers"):
            volume_id, vnode = split_fid(fid)
            if not volume_id.endswith("-ro"):
                nearest = self._read_server(entry)
                if nearest != entry["custodian"]:
                    fid = make_fid(volume_id + "-ro", vnode)
                    server = nearest
        return fid, ftype, server, entry

    def _resolve_parent(self, username: str, vice_path: str):
        """Resolve the parent directory of a path (for create/remove)."""
        parent_path = pathutil.dirname(vice_path)
        fid, ftype, _server, entry = yield from self._resolve(
            username, parent_path, want_write=True
        )
        if ftype != "directory":
            raise NotADirectory(parent_path)
        return fid, entry, pathutil.basename(vice_path)

    # ==================================================================
    # open / close — the heart of §3.2
    # ==================================================================

    def open_file(
        self,
        username: str,
        vice_path: str,
        need_data: bool = True,
        create: bool = False,
    ) -> Generator[Any, Any, CacheEntry]:
        """Make a usable cached copy available; returns its cache entry.

        ``need_data=False`` is the truncating-open fast path: no fetch is
        needed for a file about to be overwritten entirely.
        """
        self._require_login(username)
        vice_path = pathutil.normalize(vice_path)
        self.opens += 1
        tracer = self.sim.tracer
        with (tracer.span("venus.open", component="venus",
                          host=self.host.name, path=vice_path)
              if tracer.enabled else _NULL_SPAN) as span:
            yield from self.host.compute(self.costs.open_base_cpu)

            entry = self.cache.lookup(vice_path)
            if entry is not None:
                usable = yield from self._entry_usable(username, entry)
                if usable:
                    self.cache.note_hit()
                    span.add(hit=True)
                    if need_data:
                        yield from self.host.disk.access(entry.size)
                    entry.open_count += 1
                    return entry
                if entry.dirty:
                    # The stale copy still held an unstored write (its
                    # store failed terminally, or a deferred flush never
                    # landed): it dies with the copy — count it.
                    self.lost_writes += 1
                self.cache.remove(vice_path)

            if not need_data:
                # Truncating open: no fetch was needed or avoided, so this is
                # neither a cache hit nor a miss; close() will store.
                entry = self._placeholder_entry(vice_path)
                entry.open_count += 1
                return self.cache.insert(entry)
            self.cache.note_miss()
            span.add(hit=False)
            try:
                status, data = yield from self._fetch(username, vice_path)
            except FileNotFound:
                if not create:
                    raise
                entry = self._placeholder_entry(vice_path)
                entry.open_count += 1
                return self.cache.insert(entry)
            self.fetches += 1
            yield from self.host.compute(len(data) * self.costs.per_byte_cpu)
            yield from self.host.disk.access(len(data), write=True)
            entry = CacheEntry(vice_path, status["fid"], data, status["version"], status)
            if self._pending_breaks.pop(status["fid"], None) is not None:
                # A break raced this fetch: the copy is usable for this open
                # but must be revalidated before the next one.
                entry.callback_valid = False
            entry.open_count += 1
            return self.cache.insert(entry)

    def _placeholder_entry(self, vice_path: str) -> CacheEntry:
        status = {
            "fid": _NEW_FID_PREFIX + vice_path,
            "type": "file",
            "size": 0,
            "version": 0,
            "mtime": self.sim.now,
            "owner": "",
            "mode": 0o644,
            "rights": "",
            "read_only": False,
        }
        entry = CacheEntry(vice_path, status["fid"], b"", 0, status)
        entry.dirty = True  # must be stored at close even if never written
        return entry

    def _entry_usable(self, username: str, entry: CacheEntry) -> Generator[Any, Any, bool]:
        if entry.fid.startswith(_NEW_FID_PREFIX):
            return True
        if entry.status.get("read_only") and entry.callback_valid:
            # Clones are immutable: no validation traffic in either policy.
            # (An explicit invalidation — crash recovery, release cutover —
            # clears callback_valid and falls through to a real check.)
            return True
        if self.validation == "callback" and not entry.status.get("read_only"):
            return entry.callback_valid
        result = yield from self._validate(username, entry)
        self.validations += 1
        return bool(result.get("valid"))

    def _validate(self, username: str, entry: CacheEntry) -> Generator:
        tracer = self.sim.tracer
        with (tracer.span("venus.validate", component="venus",
                          host=self.host.name, path=entry.vice_path)
              if tracer.enabled else _NULL_SPAN):
            if self.mode == "prototype":
                result, _ = yield from self._call_path(
                    username,
                    entry.vice_path,
                    "ValidateCache",
                    {"path": entry.vice_path, "version": entry.version},
                    want_write=False,
                )
                return result
            location = yield from self._entry_for(username, entry.vice_path)
            server = self._fid_server(location, entry.fid)
            result, _ = yield from self._fid_call(
                username, location, server,
                "ValidateByFid", {"fid": entry.fid, "version": entry.version},
            )
            return result

    def _fetch(self, username: str, vice_path: str) -> Generator:
        guess = _DEFAULT_FETCH_GUESS
        if self.mode == "prototype":
            return (yield from self._call_path(
                username, vice_path, "Fetch", {"path": vice_path},
                want_write=False, expect_bytes=guess,
            ))
        fid, ftype, server, location = yield from self._resolve_for_read(username, vice_path)
        if ftype == "directory":
            raise IsADirectory(vice_path)
        if location.get("erasure") and ftype == "file":
            return (yield from self._fetch_striped(
                username, location, self._rw_fid(fid)
            ))
        return (yield from self._fid_call(
            username, location, server, "FetchByFid", {"fid": fid}, expect_bytes=guess
        ))

    def _fetch_striped(self, username: str, location: Dict, fid: str) -> Generator:
        """Fetch a striped file: k parallel fragment reads, reassemble.

        The custodian is always probed (its reply is the authoritative
        status and carries the callback promise); the remaining ``k - 1``
        probes go to the next stripe members in slot order.  Unreachable
        or stale members are backfilled from the parity holders — a
        **degraded read** reconstructing from any ``k`` of ``k + m``.
        Custodian failures retry through the same refresh/failover path
        as ordinary fid calls.
        """
        from repro.vice.erasure import decode

        last_error: Optional[ReproError] = None
        for _attempt in range(4):
            k, m = location["erasure"]
            custodian = location["custodian"]
            members = list(location.get("replicas") or [custodian])
            order = [custodian] + [n for n in members if n != custodian]
            targets = order[:k]
            guess = _DEFAULT_FETCH_GUESS // max(1, k)
            results: Dict[str, tuple] = {}
            failed: Dict[str, ReproError] = {}
            outcome = self.sim.event()
            state = {"done": 0}

            def probe(name: str) -> Generator:
                try:
                    conn = yield from self._conn(username, name)
                    reply, frag = yield from self.node.call(
                        conn, "FetchFragment", {"fid": fid}, expect_bytes=guess
                    )
                except ReproError as err:
                    failed[name] = err
                else:
                    results[name] = (reply, frag)
                state["done"] += 1
                if state["done"] == len(targets) and not outcome.triggered:
                    outcome.succeed(True)

            for name in targets:
                self.sim.process(probe(name), name=f"fragfetch:{fid}@{name}")
            yield outcome

            primary_err = failed.get(custodian)
            if primary_err is not None:
                last_error = primary_err
                if isinstance(primary_err, NotCustodian):
                    self.hints.redirect(
                        location["mount_path"], primary_err.custodian_hint
                    )
                    location = dict(
                        location, custodian=primary_err.custodian_hint
                    )
                    continue
                if (isinstance(primary_err, (ServerUnavailable, LeaseExpired))
                        and self.failover_servers):
                    self.failovers += 1
                    location = yield from self._refresh_entry(username, location)
                    continue
                raise primary_err

            status = results[custodian][0]
            version = status["version"]
            frags: Dict[int, bytes] = {}
            for reply, frag in results.values():
                index = reply.get("frag_index")
                if index is not None and reply["version"] == version:
                    frags[index] = frag
            degraded = len(frags) < len(targets)
            # Backfill from the untried members (parity holders and any
            # data holders beyond the first k) until reconstructable.
            for name in order[len(targets):]:
                if len(frags) >= k:
                    break
                try:
                    conn = yield from self._conn(username, name)
                    reply, frag = yield from self.node.call(
                        conn, "FetchFragment", {"fid": fid}, expect_bytes=guess
                    )
                except ReproError as err:
                    failed[name] = err
                    degraded = True
                    continue
                index = reply.get("frag_index")
                if (index is not None and index not in frags
                        and reply["version"] == version):
                    frags[index] = frag
            if len(frags) < k and status["size"]:
                last_error = ServerUnavailable(
                    f"stripe for {fid} unreadable:"
                    f" {len(frags)} of {k} fragments"
                )
                if self.failover_servers:
                    self.failovers += 1
                    location = yield from self._refresh_entry(username, location)
                    continue
                raise last_error
            if degraded:
                self.degraded_reads += 1
            if any(isinstance(err, NotCustodian) for err in failed.values()):
                # A member referred us away: the hint's stripe membership
                # is stale (a rebuild moved that slot).  Re-resolve next
                # access so probes stop visiting ex-members.
                self.hints.forget(location["mount_path"])
            data = decode(frags, k, m, status["size"])
            return status, data
        raise last_error

    def close_file(
        self, username: str, entry: CacheEntry, new_data: Optional[bytes] = None
    ) -> Generator:
        """Close a descriptor; store-through when the file changed."""
        self._require_login(username)
        tracer = self.sim.tracer
        with (tracer.span("venus.close", component="venus",
                          host=self.host.name, path=entry.vice_path)
              if tracer.enabled else _NULL_SPAN):
            yield from self.host.compute(self.costs.close_base_cpu)
            if entry.open_count > 0:
                entry.open_count -= 1
            if new_data is None and not (entry.dirty and entry.open_count == 0):
                return  # clean close: no Vice traffic at all
            if new_data is not None:
                yield from self.host.compute(len(new_data) * self.costs.per_byte_cpu)
                yield from self.host.disk.access(len(new_data), write=True)
                entry.data = bytes(new_data)
                entry.dirty = True
            if entry.open_count > 0:
                return  # last closer writes through
            if self.write_policy == "deferred":
                if entry.vice_path in self._flush_scheduled:
                    # A flush timer is already pending: this close rides along.
                    self.coalesced_stores += 1
                    return
                self._flush_scheduled.add(entry.vice_path)
                self.deferred_flushes += 1
                self.sim.process(
                    self._flush_later(username, entry),
                    name=f"flush:{entry.vice_path}",
                )
                return
            yield from self._store(username, entry)

    def _store(self, username: str, entry: CacheEntry) -> Generator:
        with self.sim.tracer.span(
            "venus.store", component="venus", host=self.host.name,
            path=entry.vice_path, bytes=len(entry.data),
        ):
            yield from self._store_inner(username, entry)

    def _store_inner(self, username: str, entry: CacheEntry) -> Generator:
        data = entry.data
        if self.mode == "prototype":
            status, _ = yield from self._call_path(
                username,
                entry.vice_path,
                "Store",
                {"path": entry.vice_path},
                want_write=True,
                payload=data,
            )
        elif entry.fid.startswith(_NEW_FID_PREFIX):
            parent_fid, location, name = yield from self._resolve_parent(
                username, entry.vice_path
            )
            status, _ = yield from self._fid_call(
                username, location, None,
                "CreateByFid", {"parent": parent_fid, "name": name}, payload=data,
            )
            self._invalidate_dir(parent_fid)
        else:
            fid = self._rw_fid(entry.fid)
            location = yield from self._entry_for(username, entry.vice_path)
            status, _ = yield from self._fid_call(
                username, location, None, "StoreByFid", {"fid": fid}, payload=data
            )
        self.stores += 1
        self.cache.remove(entry.vice_path)
        entry.fid = status["fid"]
        entry.version = status["version"]
        entry.status = status
        entry.dirty = False
        entry.callback_valid = True
        try:
            self.cache.insert(entry)
        except NoSpace:
            # The store succeeded at the custodian; the copy is simply too
            # large to keep locally. The next open will have to refetch.
            pass

    def _flush_later(self, username: str, entry: CacheEntry) -> Generator:
        """Deferred write-back: flush once the delay elapses, coalescing
        any closes that happened in between."""
        yield self.sim.timeout(self.flush_delay)
        self._flush_scheduled.discard(entry.vice_path)
        if (
            not entry.dirty
            or entry.open_count > 0
            or entry.vice_path in self._flushing
        ):
            return
        self._flushing.add(entry.vice_path)
        try:
            delay = self.flush_delay
            attempt = 0
            while True:
                try:
                    yield from self._store(username, entry)
                    return
                except ReproError:
                    if attempt >= self.flush_retry_limit:
                        # Retries exhausted: the data survives in the local
                        # cache (dirty flag stays set) but Vice never saw
                        # this write-back — an honest, counted loss instead
                        # of the silent drop this branch used to be.
                        self.lost_writes += 1
                        return
                attempt += 1
                self.flush_retries += 1
                yield self.sim.timeout(delay)
                delay *= self.flush_retry_backoff
                if not entry.dirty or entry.open_count > 0:
                    return  # reopened or re-flushed while we backed off
        finally:
            self._flushing.discard(entry.vice_path)

    def flush_all(self, username: str) -> Generator:
        """Write every dirty closed file through now (graceful shutdown)."""
        for entry in list(self.cache):
            if entry.dirty and entry.open_count == 0:
                yield from self._store(username, entry)

    # ==================================================================
    # status and directories
    # ==================================================================

    def stat(self, username: str, vice_path: str) -> Generator[Any, Any, Dict]:
        """Status of a Vice object (served locally when a valid copy exists)."""
        self._require_login(username)
        vice_path = pathutil.normalize(vice_path)
        yield from self.host.compute(self.costs.lookup_cpu)
        entry = self.cache.lookup(vice_path)
        if (
            entry is not None
            and self.validation == "callback"
            and entry.callback_valid
            and not entry.fid.startswith(_NEW_FID_PREFIX)
        ):
            return dict(entry.status)
        if self.mode == "prototype":
            result, _ = yield from self._call_path(
                username, vice_path, "GetStatus", {"path": vice_path}, want_write=False
            )
            return result
        fid, _ftype, server, location = yield from self._resolve_for_read(username, vice_path)
        result, _ = yield from self._fid_call(
            username, location, server, "GetStatusByFid", {"fid": fid}
        )
        return result

    def listdir(self, username: str, vice_path: str) -> Generator[Any, Any, List[str]]:
        """Sorted names in a Vice directory."""
        self._require_login(username)
        vice_path = pathutil.normalize(vice_path)
        yield from self.host.compute(self.costs.lookup_cpu)
        if self.mode == "prototype":
            result, _ = yield from self._call_path(
                username, vice_path, "ListDir", {"path": vice_path}, want_write=False
            )
            return sorted(result["entries"])
        fid, ftype, _server, entry = yield from self._resolve_for_read(username, vice_path)
        if ftype != "directory":
            raise NotADirectory(vice_path)
        directory = yield from self._dir_entries(username, fid, entry, vice_path)
        return sorted(directory.entries)

    # ==================================================================
    # mutation of the name space
    # ==================================================================

    def _invalidate_dir(self, fid: str) -> None:
        self.dir_cache.pop(fid, None)
        self.dir_cache.pop(self._rw_fid(fid), None)

    def mkdir(self, username: str, vice_path: str) -> Generator:
        """Create a Vice directory."""
        self._require_login(username)
        vice_path = pathutil.normalize(vice_path)
        if self.mode == "prototype":
            result, _ = yield from self._call_path(
                username, vice_path, "MakeDir", {"path": vice_path}, want_write=True
            )
            return result
        parent_fid, location, name = yield from self._resolve_parent(username, vice_path)
        result, _ = yield from self._fid_call(
            username, location, None, "MakeDirByFid", {"parent": parent_fid, "name": name}
        )
        self._invalidate_dir(parent_fid)
        return result

    def remove(self, username: str, vice_path: str) -> Generator:
        """Remove a Vice file or symlink."""
        self._require_login(username)
        vice_path = pathutil.normalize(vice_path)
        if self.mode == "prototype":
            result, _ = yield from self._call_path(
                username, vice_path, "Remove", {"path": vice_path}, want_write=True
            )
        else:
            parent_fid, location, name = yield from self._resolve_parent(username, vice_path)
            result, _ = yield from self._fid_call(
                username, location, None, "RemoveByFid", {"parent": parent_fid, "name": name}
            )
            self._invalidate_dir(parent_fid)
        self.cache.remove(vice_path)
        return result

    def rmdir(self, username: str, vice_path: str) -> Generator:
        """Remove an empty Vice directory."""
        self._require_login(username)
        vice_path = pathutil.normalize(vice_path)
        if self.mode == "prototype":
            result, _ = yield from self._call_path(
                username, vice_path, "RemoveDir", {"path": vice_path}, want_write=True
            )
            return result
        parent_fid, location, name = yield from self._resolve_parent(username, vice_path)
        parent_dir = self.dir_cache.get(parent_fid)
        child_fid = None
        if parent_dir and name in parent_dir.entries:
            child_fid = parent_dir.entries[name]["fid"]
        result, _ = yield from self._fid_call(
            username, location, None, "RemoveDirByFid", {"parent": parent_fid, "name": name}
        )
        self._invalidate_dir(parent_fid)
        if child_fid:
            self._invalidate_dir(child_fid)
        return result

    def rename(self, username: str, old_path: str, new_path: str) -> Generator:
        """Rename inside Vice (directories too, in the revised design)."""
        self._require_login(username)
        old_path = pathutil.normalize(old_path)
        new_path = pathutil.normalize(new_path)
        if self.mode == "prototype":
            result, _ = yield from self._call_path(
                username, old_path, "Rename",
                {"old": old_path, "new": new_path}, want_write=True,
            )
        else:
            old_parent, location, old_name = yield from self._resolve_parent(username, old_path)
            new_parent, _loc2, new_name = yield from self._resolve_parent(username, new_path)
            result, _ = yield from self._fid_call(
                username,
                location,
                None,
                "RenameByFid",
                {
                    "old_parent": old_parent,
                    "old_name": old_name,
                    "new_parent": new_parent,
                    "new_name": new_name,
                },
            )
            self._invalidate_dir(old_parent)
            self._invalidate_dir(new_parent)
        # Any cached copy at the destination was just clobbered by the
        # rename; drop it before rebinding the moved entry to its new name.
        self.cache.remove(new_path)
        self.cache.rename(old_path, new_path)
        return result

    def symlink(self, username: str, vice_path: str, target: str) -> Generator:
        """Create a symlink inside Vice (revised design only)."""
        self._require_login(username)
        vice_path = pathutil.normalize(vice_path)
        if self.mode == "prototype":
            result, _ = yield from self._call_path(
                username, vice_path, "MakeSymlink",
                {"path": vice_path, "target": target}, want_write=True,
            )
            return result
        parent_fid, location, name = yield from self._resolve_parent(username, vice_path)
        result, _ = yield from self._fid_call(
            username, location, None,
            "SymlinkByFid", {"parent": parent_fid, "name": name, "target": target},
        )
        self._invalidate_dir(parent_fid)
        return result

    # ==================================================================
    # protection and locks
    # ==================================================================

    def get_acl(self, username: str, vice_path: str) -> Generator:
        """Read a directory's access list."""
        self._require_login(username)
        vice_path = pathutil.normalize(vice_path)
        if self.mode == "prototype":
            result, _ = yield from self._call_path(
                username, vice_path, "GetACL", {"path": vice_path}, want_write=False
            )
            return result
        fid, _t, server, location = yield from self._resolve(username, vice_path)
        result, _ = yield from self._fid_call(
            username, location, server, "GetACLByFid", {"fid": fid}
        )
        return result

    def set_acl(self, username: str, vice_path: str, acl_record: Dict) -> Generator:
        """Replace a directory's access list."""
        self._require_login(username)
        vice_path = pathutil.normalize(vice_path)
        if self.mode == "prototype":
            result, _ = yield from self._call_path(
                username, vice_path, "SetACL",
                {"path": vice_path, "acl": acl_record}, want_write=True,
            )
            return result
        fid, _t, server, location = yield from self._resolve(username, vice_path, want_write=True)
        result, _ = yield from self._fid_call(
            username, location, server, "SetACLByFid", {"fid": fid, "acl": acl_record}
        )
        return result

    def set_lock(self, username: str, vice_path: str, exclusive: bool) -> Generator:
        """Take an advisory lock."""
        self._require_login(username)
        result, _ = yield from self._call_path(
            username,
            pathutil.normalize(vice_path),
            "SetLock",
            {"path": pathutil.normalize(vice_path), "exclusive": exclusive},
            want_write=False,
        )
        return result

    def release_lock(self, username: str, vice_path: str) -> Generator:
        """Release an advisory lock."""
        self._require_login(username)
        result, _ = yield from self._call_path(
            username,
            pathutil.normalize(vice_path),
            "ReleaseLock",
            {"path": pathutil.normalize(vice_path)},
            want_write=False,
        )
        return result

    # ==================================================================
    # callback service (Vice calls us)
    # ==================================================================

    def _break_callback_handler(self, conn: Connection, args: Dict, payload: bytes):
        yield from self.host.compute(0.0008)
        fid = args["fid"]
        self.callback_breaks_received += 1
        hit_file = self.cache.invalidate_fid(fid)
        directory = self.dir_cache.get(fid)
        if directory is not None:
            directory.valid = False
        if not hit_file and directory is None:
            # Possibly racing an in-flight fetch of this fid; remember it.
            self._pending_breaks[fid] = self.sim.now
            while len(self._pending_breaks) > 512:
                oldest = min(self._pending_breaks, key=self._pending_breaks.get)
                del self._pending_breaks[oldest]
        return {"ok": True}, b""

    # ==================================================================

    def invalidate_all(self) -> None:
        """Distrust everything cached (crash recovery, admin cutover)."""
        self.cache.invalidate_all()
        for directory in self.dir_cache.values():
            directory.valid = False

    @property
    def hit_ratio(self) -> float:
        """Whole-file cache hit ratio over all opens."""
        return self.cache.hit_ratio

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Venus {self.host.name} mode={self.mode} validation={self.validation}"
            f" cached={len(self.cache)}>"
        )
