"""Vice: the trusted campus core — servers, volumes, protection, location."""

from repro.vice.callbacks import CallbackRegistry
from repro.vice.costs import ViceCosts
from repro.vice.ids import make_fid, split_fid, volume_of
from repro.vice.location import LocationDatabase, LocationEntry
from repro.vice.locks import LockTable
from repro.vice.protection import AccessList, ProtectionDatabase, Rights
from repro.vice.protserver import ADMIN_GROUP, ProtectionServer, manual_update
from repro.vice.server import ViceServer
from repro.vice.volume import Volume

__all__ = [
    "ADMIN_GROUP",
    "AccessList",
    "CallbackRegistry",
    "LocationDatabase",
    "LocationEntry",
    "LockTable",
    "ProtectionDatabase",
    "ProtectionServer",
    "Rights",
    "ViceCosts",
    "ViceServer",
    "Volume",
    "make_fid",
    "manual_update",
    "split_fid",
    "volume_of",
]
