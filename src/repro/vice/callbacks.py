"""Server-side callback registry: invalidate-on-modification cache validity.

Paper §3.2/§5.2: the prototype validated caches on every open, and those
validation calls turned out to be 65 % of all server traffic; "the cost of
frequent cache validation is high enough to warrant the additional
complexity of an invalidate-on-modification approach".  The registry is
that additional complexity: the server remembers, per file, which
workstation connections hold cached copies ("larger server state"), and on
every mutation the file server calls each of them back.
"""

from __future__ import annotations

from typing import Dict, List

from repro.rpc.connection import Connection

__all__ = ["CallbackRegistry"]


class CallbackRegistry:
    """Which connections hold a callback promise on which key (fid/path)."""

    def __init__(self):
        self._promises: Dict[str, Dict[str, Connection]] = {}
        self.promises_made = 0
        self.promises_broken = 0

    def register(self, key: str, conn: Connection) -> None:
        """Promise ``conn`` notification before ``key`` changes."""
        holders = self._promises.setdefault(key, {})
        if conn.connection_id not in holders:
            self.promises_made += 1
        holders[conn.connection_id] = conn

    def holders(self, key: str, exclude: Connection = None) -> List[Connection]:
        """Connections to notify when ``key`` mutates (excluding the mutator)."""
        holders = self._promises.get(key, {})
        return [
            conn
            for cid, conn in holders.items()
            if exclude is None or cid != exclude.connection_id
        ]

    def clear(self, key: str) -> None:
        """Forget all promises on a key (after they have been broken)."""
        broken = self._promises.pop(key, None)
        if broken:
            self.promises_broken += len(broken)

    def forget_holder(self, key: str, conn: Connection) -> None:
        """Drop one holder's promise (it re-fetched or evicted the file)."""
        holders = self._promises.get(key)
        if holders:
            holders.pop(conn.connection_id, None)
            if not holders:
                del self._promises[key]

    def drop_connection(self, conn: Connection) -> None:
        """Remove every promise to a (closed/crashed) connection."""
        for key in list(self._promises):
            self.forget_holder(key, conn)

    @property
    def state_size(self) -> int:
        """Total promises outstanding — the memory cost the paper weighs."""
        return sum(len(holders) for holders in self._promises.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CallbackRegistry keys={len(self._promises)} promises={self.state_size}>"
