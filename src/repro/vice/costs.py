"""Per-operation cost model for the Vice file server.

Together with :class:`repro.rpc.costs.RpcCosts` these constants are the
knobs that calibrate the simulation to the paper's measured anchors; see
``repro.system.calibration`` for the fitting rationale.  Times are seconds
on a reference 1-unit CPU (cluster servers run at ``cpu_speed`` ~2).

The prototype/revised split encodes the paper's §5.3 findings:

* the prototype walks full pathnames **on the server** (a per-component CPU
  charge) and keeps Vice status in ``.admin`` shadow files (an extra disk
  access on status-bearing calls);
* the revised server resolves fids against in-memory vnode caches and
  leaves pathname traversal to Venus.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ViceCosts"]


@dataclass(frozen=True)
class ViceCosts:
    """Prices charged by file-server handlers."""

    # Server-side pathname traversal, per path component (prototype).
    traverse_component_cpu: float = 0.0035
    # Fid lookup against the in-memory vnode index (revised).
    fid_lookup_cpu: float = 0.0006
    # Base CPU of a status / validate call, beyond traversal.
    status_cpu: float = 0.0025
    validate_cpu: float = 0.002
    # Base CPU of fetch / store, beyond traversal and per-byte work.
    fetch_base_cpu: float = 0.006
    store_base_cpu: float = 0.008
    # Buffer copies and checksumming, per byte moved.
    per_byte_cpu: float = 2.5e-7
    # Directory mutation (create/remove/rename entries).
    dir_op_cpu: float = 0.005
    # ACL evaluation (CPS walk + list scan) per protected call.
    acl_check_cpu: float = 0.0008
    # Lock table manipulation.
    lock_cpu: float = 0.0015
    # Prototype keeps Vice status in a `.admin` shadow file: one extra
    # small disk access on each status-bearing call.
    admin_file_bytes: int = 256
    # Server-side pathname interpretation reads directories from disk
    # (namei with a small buffer cache): disk reads per path component.
    traversal_disk_reads_per_component: float = 0.0
    # Whether status calls hit the disk (prototype) or in-memory vnode
    # cache (revised). Set by the server mode, not usually by hand.
    status_from_disk: bool = True

    def with_(self, **changes) -> "ViceCosts":
        """A copy with selected fields replaced (for ablation benches)."""
        return replace(self, **changes)

    @classmethod
    def prototype(cls) -> "ViceCosts":
        """Costs as measured against the 1985 prototype.

        The prototype served every call from a user-level process via full
        pathname interpretation against the Unix file system plus a
        ``.admin`` shadow-file read; per-call CPU is an order of magnitude
        above the revised design's (that gap *is* the §5.3 redesign).
        """
        return cls(
            traverse_component_cpu=0.150,
            status_cpu=0.160,
            validate_cpu=0.140,
            fetch_base_cpu=0.360,
            store_base_cpu=0.400,
            per_byte_cpu=2.4e-6,
            dir_op_cpu=0.240,
            acl_check_cpu=0.024,
            lock_cpu=0.050,
            status_from_disk=True,
            traversal_disk_reads_per_component=1.5,
        )

    @classmethod
    def revised(cls) -> "ViceCosts":
        """Costs after the §5.3 reimplementation changes."""
        return cls(status_from_disk=False)
