"""Erasure-coded volume storage: striped k+m fragments over GF(256).

The paper buys availability with whole copies — read-only replication in
§3.2 and (our PR 7 generalization) N-way read-write replicas, paying N×
storage for f = N−1 fault tolerance.  This module completes the other
half of the redundancy axis: a systematic Reed–Solomon code stripes each
file into ``k`` data + ``m`` parity fragments placed on distinct
servers, so the stripe survives any ``m`` failures at ``(k+m)/k``
storage, bought with reconstruction CPU and repair traffic.

Protocol summary
----------------

* Every coded volume has ``k + m`` **stripe members** (the location
  entry's ``replicas`` list; slot order fixes each member's fragment
  index forever).  Member 0 starts as **custodian** (primary): it holds
  the full metadata tree like a replica, but file *data* lives only as
  fragments — member ``i`` keeps fragment ``i`` of every file.
* A store lands whole at the custodian, which encodes the ``k + m``
  fragments once and ships each member its own fragment through the
  replication fabric (``ReplicateOp`` with a ``frag`` record).  The
  store succeeds at ``max(k, majority)`` members — never fewer holders
  than suffice to reconstruct, so an acked write is always readable.
* Venus fetches fragments from ``k`` members in parallel (custodian
  first — its reply is the authoritative status and registers the
  callback promise) and reassembles.  When members are dead or
  partitioned it falls back to **degraded reads**: backfill from parity
  holders and reconstruct from any ``k`` of ``k + m``
  (``erasure.<host>.degraded_reads``).
* The :class:`ReplicationController` heartbeat/death machinery is
  inherited wholesale.  On a death declaration the controller promotes
  a surviving member **without shrinking the stripe** (slots must keep
  their indices) and orders the custodian to **rebuild** the dead slot
  onto a spare server: gather any ``k`` fragment sets, re-encode the
  missing index, ship a coded copy (``erasure.<host>.rebuild_bytes``,
  ``stripe_repairs``).  A rejoining member is demoted and its slot
  rebuilt in place the same way.

Nothing here is imported unless ``SystemConfig.erasure`` is set, so
plain campuses (and replicated ones) remain byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.errors import (
    FileNotFound,
    InvalidArgument,
    NotCustodian,
    ReplicationError,
    ReproError,
    ServerUnavailable,
)
from repro.rpc import marshal
from repro.rpc.connection import Connection
from repro.storage.unixfs import FileType
from repro.vice.ids import make_fid, split_fid
from repro.vice.location import LocationDatabase, LocationEntry
from repro.vice.protection import Rights
from repro.vice.replication import (
    ReplicationConfig,
    ReplicationController,
    ServerReplication,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vice.server import ViceServer

__all__ = [
    "ErasureConfig",
    "ErasureController",
    "ServerErasure",
    "decode",
    "encode",
    "fragment_length",
    "plan_stripe",
    "stripe_health",
]


# ----------------------------------------------------------------------
# GF(256) arithmetic, vectorized the same way as the PR 1 cipher fast
# path: per-coefficient 256-byte translation tables turn a field
# scalar-multiply of a whole fragment into one bytes.translate call,
# and fragment XOR runs whole-buffer through int.from_bytes.
# ----------------------------------------------------------------------

_GF_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1, the classic RS polynomial

_EXP = [0] * 512
_LOG = [0] * 256
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _GF_POLY
for _i in range(255, 512):
    _EXP[_i] = _EXP[_i - 255]
del _x, _i


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("GF(256) inverse of zero")
    return _EXP[255 - _LOG[a]]


# coefficient -> 256-byte translate table for y = c * x, built lazily so
# only the coefficients a given (k, m) geometry actually uses are paid for.
_MUL_TABLES: Dict[int, bytes] = {}


def _mul_table(c: int) -> bytes:
    table = _MUL_TABLES.get(c)
    if table is None:
        table = bytes(_gf_mul(c, v) for v in range(256))
        _MUL_TABLES[c] = table
    return table


def _xor(a: bytes, b: bytes) -> bytes:
    """Whole-buffer XOR of two equal-length fragments (cipher idiom)."""
    return (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")).to_bytes(
        len(a), "little"
    )


def _scale_xor(acc: Optional[bytes], coeff: int, frag: bytes) -> Optional[bytes]:
    """acc ^= coeff * frag over GF(256), whole-buffer."""
    if coeff == 0:
        return acc
    piece = frag if coeff == 1 else frag.translate(_mul_table(coeff))
    return piece if acc is None else _xor(acc, piece)


def _parity_coeff(row: int, col: int, k: int) -> int:
    """Cauchy generator entry for parity row ``row``, data column ``col``.

    With x_j = k + j and y_i = i the denominators x_j ^ y_i are nonzero
    and every k×k submatrix of [I_k ; C] is invertible, so any ``k`` of
    the ``k + m`` fragments reconstruct the data (requires k + m <= 256).
    """
    return _gf_inv((k + row) ^ col)


def fragment_length(length: int, k: int) -> int:
    """Bytes per fragment for a ``length``-byte file striped k ways."""
    return -(-length // k) if length else 0


def encode(data: bytes, k: int, m: int) -> List[bytes]:
    """Stripe ``data`` into k data + m parity fragments (systematic)."""
    shard_len = fragment_length(len(data), k)
    shards = [
        bytes(data[i * shard_len:(i + 1) * shard_len]).ljust(shard_len, b"\0")
        for i in range(k)
    ]
    frags = list(shards)
    for row in range(m):
        acc: Optional[bytes] = None
        for col in range(k):
            acc = _scale_xor(acc, _parity_coeff(row, col, k), shards[col])
        frags.append(acc if acc is not None else bytes(shard_len))
    return frags


def _row_for(index: int, k: int) -> List[int]:
    """Generator-matrix row that produced fragment ``index``."""
    if index < k:
        return [1 if col == index else 0 for col in range(k)]
    return [_parity_coeff(index - k, col, k) for col in range(k)]


def _invert(matrix: List[List[int]]) -> List[List[int]]:
    """Invert a k×k GF(256) matrix by Gauss-Jordan elimination."""
    k = len(matrix)
    aug = [list(row) + [1 if c == r else 0 for c in range(k)]
           for r, row in enumerate(matrix)]
    for col in range(k):
        pivot = next((r for r in range(col, k) if aug[r][col]), None)
        if pivot is None:
            raise ValueError("singular fragment matrix")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = _gf_inv(aug[col][col])
        aug[col] = [_gf_mul(inv, v) for v in aug[col]]
        for r in range(k):
            if r != col and aug[r][col]:
                factor = aug[r][col]
                aug[r] = [v ^ _gf_mul(factor, p)
                          for v, p in zip(aug[r], aug[col])]
    return [row[k:] for row in aug]


def decode(fragments: Dict[int, bytes], k: int, m: int, length: int) -> bytes:
    """Reconstruct the original bytes from any ``k`` of the fragments.

    ``fragments`` maps fragment index (0..k+m-1) to fragment bytes;
    ``length`` is the true file length (fragments are zero-padded).
    """
    if length == 0:
        return b""
    if all(i in fragments for i in range(k)):
        return b"".join(fragments[i] for i in range(k))[:length]
    chosen = sorted(i for i in fragments if i < k + m)[:k]
    if len(chosen) < k:
        raise ValueError(
            f"need {k} fragments to reconstruct, have {len(chosen)}"
        )
    inverse = _invert([_row_for(index, k) for index in chosen])
    shard_len = len(fragments[chosen[0]])
    shards: List[bytes] = []
    for row in range(k):
        acc: Optional[bytes] = None
        for col, index in enumerate(chosen):
            acc = _scale_xor(acc, inverse[row][col], fragments[index])
        shards.append(acc if acc is not None else bytes(shard_len))
    return b"".join(shards)[:length]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ErasureConfig:
    """Knobs for erasure-coded storage (``SystemConfig.erasure``)."""

    # Data fragments per stripe: a file is readable from any `data` of
    # the `data + parity` members.
    data: int = 4
    # Parity fragments: how many simultaneous member losses a stripe
    # survives without losing readability.
    parity: int = 2
    # Heartbeat/lease knobs, identical in meaning to ReplicationConfig's.
    heartbeat_interval: float = 5.0
    missed_beats: int = 3
    lease_duration: float = 15.0
    # Rebuild lost fragment slots onto spare servers after a failover.
    rebuild: bool = True
    controller_cpu_speed: float = 2.0

    def __post_init__(self):
        if self.data < 1:
            raise ValueError("erasure data fragment count must be at least 1")
        if self.parity < 1:
            raise ValueError("erasure parity fragment count must be at least 1")
        if self.data + self.parity > 256:
            raise ValueError("GF(256) stripes support at most 256 fragments")
        if self.lease_duration > self.missed_beats * self.heartbeat_interval:
            raise ValueError(
                "lease_duration must not exceed missed_beats * heartbeat_interval"
            )

    @property
    def width(self) -> int:
        """Stripe width: total members per coded volume."""
        return self.data + self.parity

    @property
    def storage_overhead(self) -> float:
        """Raw-to-logical byte ratio, the (k+m)/k coding tax."""
        return self.width / self.data

    @property
    def detection_time(self) -> float:
        return self.missed_beats * self.heartbeat_interval

    def replication_base(self) -> ReplicationConfig:
        """The heartbeat/lease substrate the inherited machinery runs on.

        factor=1 and rereplicate=False disable every whole-copy code
        path; the erasure subclasses own membership changes.
        """
        return ReplicationConfig(
            factor=1,
            heartbeat_interval=self.heartbeat_interval,
            missed_beats=self.missed_beats,
            lease_duration=self.lease_duration,
            rereplicate=False,
            controller_cpu_speed=self.controller_cpu_speed,
        )


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------


def plan_stripe(
    location: LocationDatabase,
    server_names: List[str],
    custodian: str,
    width: int,
) -> List[str]:
    """Pick ``width`` distinct servers for a new stripe.

    The custodian takes slot 0; remaining slots go to the least-loaded
    servers (fewest stripe memberships already recorded in the location
    database), ties broken by ring order from the custodian so placement
    stays deterministic and spreads like the replication ring.
    """
    if width > len(server_names):
        raise InvalidArgument(
            f"a {width}-wide stripe needs {width} servers, have "
            f"{len(server_names)}"
        )
    load = {name: 0 for name in server_names}
    for entry in location.entries():
        for name in entry.replicas:
            if name in load:
                load[name] += 1
    start = server_names.index(custodian)
    ring = [server_names[(start + i) % len(server_names)]
            for i in range(len(server_names))]
    rank = {name: i for i, name in enumerate(ring)}
    rest = sorted(ring[1:], key=lambda name: (load[name], rank[name]))
    return [custodian] + rest[:width - 1]


# ----------------------------------------------------------------------
# per-server agent
# ----------------------------------------------------------------------


class ServerErasure(ServerReplication):
    """Per-server erasure agent: fragment I/O, stripe stores, rebuild.

    Inherits the heartbeat loop, lease fence, and the ReplicateOp /
    Promote / Demote / Status handlers from :class:`ServerReplication`
    (metadata mutations on coded volumes propagate exactly like
    replication's — full copies of an empty-data tree are cheap).
    """

    def __init__(self, server: "ViceServer", config: ErasureConfig):
        self.econf = config
        super().__init__(server, config.replication_base())
        self.fragment_reads = 0
        self.rebuild_bytes = 0
        self.stripe_repairs = 0

        node = server.node
        node.register("FetchFragment", self._fetch_fragment_handler)
        node.register("FetchFragmentVolume", self._fetch_fragment_volume_handler)
        node.register("RebuildStripe", self._rebuild_stripe_handler)

        name = server.host.name
        sim = server.sim
        sim.metrics.counter(f"erasure.{name}.rebuild_bytes",
                            lambda: self.rebuild_bytes)
        sim.metrics.counter(f"erasure.{name}.stripe_repairs",
                            lambda: self.stripe_repairs)
        sim.metrics.counter(f"erasure.{name}.fragment_reads",
                            lambda: self.fragment_reads)

    # ------------------------------------------------------------------
    # write path (custodian side)
    # ------------------------------------------------------------------

    def propagate_fragments(
        self, volume, record: Dict, frags: List[bytes]
    ) -> Generator:
        """Ship each member its own fragment of one applied store.

        Parallel shipments like :meth:`propagate`, but the ack threshold
        is ``max(k, majority)`` members (this custodian included): a
        store never succeeds held by fewer members than can reconstruct
        it, so an acked write survives every tolerated failure pattern.
        """
        entry = self.server.location.entry_for_volume(volume.volume_id)
        me = self.server.host.name
        members = list(entry.replicas)
        peers = [(i, n) for i, n in enumerate(members) if n != me]
        if not peers:
            return
        k = volume.erasure_shape[0]
        needed = max(k, len(members) // 2 + 1) - 1  # remote acks required
        outcome = self.sim.event()
        state = {"acks": 0, "done": 0}

        def ship(index: int, name: str) -> Generator:
            try:
                conn = yield from self.server.peer(name)
                yield from self.server.node.call(
                    conn, "ReplicateOp",
                    {"volume_id": volume.volume_id, "record": record},
                    payload=frags[index],
                )
            except ReproError:
                pass
            else:
                state["acks"] += 1
                if state["acks"] >= needed and not outcome.triggered:
                    outcome.succeed(True)
            state["done"] += 1
            if state["done"] == len(peers) and not outcome.triggered:
                outcome.succeed(state["acks"] >= needed)

        for index, name in peers:
            self.sim.process(
                ship(index, name), name=f"stripe:{volume.volume_id}>{name}"
            )
        ok = yield outcome
        self.propagations += 1
        if not ok:
            self.propagation_failures += 1
            raise ReplicationError(
                f"volume {volume.volume_id!r}: {state['acks']} of {needed}"
                f" required fragment acks"
            )

    # ------------------------------------------------------------------
    # read path (every member serves its own fragment)
    # ------------------------------------------------------------------

    def _fetch_fragment_handler(self, conn: Connection, args, payload):
        """Serve this member's fragment of one file to a client.

        Unlike whole-file fetches this is answered by secondaries too —
        a degraded read *is* the custodian being unreachable.  The
        custodian's reply carries the callback promise; fragment replies
        from other members are advisory data only.
        """
        fid = args["fid"]
        volume_id, vnode = split_fid(fid)
        volume = self.server.volumes.get(volume_id)
        if volume is None or volume.erasure_shape is None:
            # Not (or no longer) a stripe member — e.g. a rebuild moved
            # this slot to a spare and the client's hint is stale.  Refer
            # to the current custodian, as volume_by_id does, so the
            # client retries against fresh membership instead of failing.
            entry = self.server.location.entry_for_volume(volume_id)
            raise NotCustodian(entry.custodian)
        files = self.server.files
        inode = volume.inode_by_vnode(vnode)
        files._check(volume, inode, conn.username, Rights.READ)
        frag = volume.fragments.get(inode.number, b"")
        yield from self.server.host.compute(
            self.server.costs.fetch_base_cpu
            + self.server.costs.acl_check_cpu
            + len(frag) * self.server.costs.per_byte_cpu
        )
        yield from self.server.host.disk.access(len(frag), sequential=True)
        if volume.replica_role != "secondary":
            files._maybe_promise(volume, inode, conn)
        status = files._status_of(volume, inode, conn.username)
        status["frag_index"] = volume.erasure_index
        self.fragment_reads += 1
        self.server.note_volume_access(volume, conn, len(frag))
        return status, bytes(frag)

    def gather_fetch(self, files, volume, inode, conn) -> Generator:
        """Whole-file fetch from a coded volume (custodian-side gather).

        The fragment-aware Venus normally reassembles client-side; this
        covers fragment-unaware callers by reconstructing at the
        custodian from its own fragment plus peers'.
        """
        k, _m = volume.erasure_shape
        entry = self.server.location.entry_for_volume(volume.volume_id)
        frags: Dict[int, bytes] = {}
        own = volume.fragments.get(inode.number)
        if own is not None:
            frags[volume.erasure_index] = own
        fid = make_fid(volume.volume_id, inode.number)
        for name in entry.replicas:
            if len(frags) >= k:
                break
            if name == self.server.host.name:
                continue
            try:
                pconn = yield from self.server.peer(name)
                reply, frag = yield from self.server.node.call(
                    pconn, "FetchFragment", {"fid": fid},
                    expect_bytes=len(own or b""),
                )
            except ReproError:
                continue
            index = reply.get("frag_index")
            if reply["version"] == inode.version and index not in frags:
                frags[index] = frag
        true_len = volume.fragment_true_sizes.get(inode.number, 0)
        if true_len and len(frags) < k:
            raise ServerUnavailable(
                f"stripe for {fid} unreadable: {len(frags)} of {k} fragments"
            )
        data = decode(frags, k, _m, true_len)
        yield from self.server.host.compute(
            len(data) * self.server.costs.per_byte_cpu
        )
        files._maybe_promise(volume, inode, conn)
        status = files._status_of(volume, inode, conn.username)
        self.server.note_volume_access(volume, conn, len(data))
        files._count("fetch")
        return status, data

    # ------------------------------------------------------------------
    # rebuild (controller-ordered, custodian-driven)
    # ------------------------------------------------------------------

    def _fetch_fragment_volume_handler(self, conn: Connection, args, payload):
        """Ship this member's whole fragment set (rebuild source)."""
        self.server._require_service(conn)
        volume = self._local_volume(args["volume_id"])
        blob = marshal.dumps({
            "index": volume.erasure_index,
            "frags": {str(v): f for v, f in sorted(volume.fragments.items())},
            "versions": {
                str(v): volume._inodes[v].version
                for v in sorted(volume.fragments)
                if v in volume._inodes
            },
        })
        yield from self.server.host.disk.access(len(blob), sequential=True)
        yield from self.server.host.compute(
            len(blob) * self.server.costs.per_byte_cpu
        )
        return {"bytes": len(blob)}, blob

    def _rebuild_stripe_handler(self, conn: Connection, args, payload):
        """Reconstruct one lost fragment slot and ship it to ``target``.

        Runs at the custodian: gather whole fragment sets from enough
        live members (``sources``, chosen by the controller), re-derive
        the missing index per file, and ship a coded volume copy to the
        target through the ordinary ``ReceiveVolume`` path.
        """
        self.server._require_service(conn)
        volume = self._local_volume(args["volume_id"])
        k, m = volume.erasure_shape
        target_index = args["index"]
        got: Dict[int, Dict[int, bytes]] = {
            volume.erasure_index: dict(volume.fragments)
        }
        versions: Dict[int, Dict[int, int]] = {}
        gathered = 0
        for name in args.get("sources", []):
            if len(got) >= k:
                break
            if name == self.server.host.name:
                continue
            try:
                pconn = yield from self.server.peer(name)
                reply, blob = yield from self.server.node.call(
                    pconn, "FetchFragmentVolume",
                    {"volume_id": volume.volume_id},
                    expect_bytes=max(1024, volume.fragment_bytes),
                )
            except ReproError:
                continue
            shipment = marshal.loads(blob)
            index = shipment["index"]
            got[index] = {int(v): f for v, f in shipment["frags"].items()}
            versions[index] = {
                int(v): ver for v, ver in shipment.get("versions", {}).items()
            }
            gathered += len(blob)
        if len(got) < k:
            raise ServerUnavailable(
                f"volume {volume.volume_id!r}: only {len(got)} of {k}"
                f" fragment sets reachable for rebuild"
            )
        rebuilt: Dict[int, bytes] = {}
        sizes: Dict[int, int] = {}
        recoded = 0
        for vnode, true_len in sorted(volume.fragment_true_sizes.items()):
            want = volume._inodes[vnode].version if vnode in volume._inodes else None
            pieces = {
                index: frs[vnode] for index, frs in got.items()
                if vnode in frs and (
                    index == volume.erasure_index
                    or versions.get(index, {}).get(vnode) == want
                )
            }
            if len(pieces) < k:
                continue  # a straggler member is behind; the next pass heals it
            data = decode(pieces, k, m, true_len)
            rebuilt[vnode] = encode(data, k, m)[target_index]
            sizes[vnode] = true_len
            recoded += len(data)
        # Re-encoding the stripe is custodian CPU; shipping is the usual
        # snapshot path, charged at the receiving end.
        yield from self.server.host.compute(
            0.010 + recoded * self.server.costs.per_byte_cpu
        )
        snap = volume.snapshot()
        snap["replica_role"] = "secondary"
        snap["erasure_index"] = target_index
        snap["fragments"] = {str(v): f for v, f in sorted(rebuilt.items())}
        snap["fragment_sizes"] = {str(v): n for v, n in sorted(sizes.items())}
        blob = marshal.dumps(snap)
        tconn = yield from self.server.peer(args["target"])
        yield from self.server.node.call(
            tconn, "ReceiveVolume", {"role": "secondary"},
            payload=blob, expect_bytes=len(blob),
        )
        self.rebuild_bytes += gathered + len(blob)
        self.stripe_repairs += 1
        return {"ok": True, "repair_bytes": gathered + len(blob)}, b""


# ----------------------------------------------------------------------
# controller
# ----------------------------------------------------------------------


class ErasureController(ReplicationController):
    """Failure detector and stripe-membership authority for coded volumes.

    Reuses the heartbeat table, monitor loop, death declaration, lease
    bookkeeping and location broadcast from the base class; overrides
    failover and rejoin because stripe membership must never shrink —
    each slot's index is baked into its fragments.
    """

    def __init__(self, sim, network, config: ErasureConfig, service_key,
                 rpc_costs=None, **kwargs):
        self.econf = config
        super().__init__(sim, network, config.replication_base(),
                         service_key, rpc_costs, **kwargs)
        self.rebuilds = 0
        self.rebuild_failures = 0
        sim.metrics.counter("erasure.controller", lambda: {
            "rebuilds": self.rebuilds,
            "rebuild_failures": self.rebuild_failures,
            "deaths_declared": self.deaths_declared,
            "promotions": self.promotions,
            "rejoins": self.rejoins,
        })

    # ------------------------------------------------------------------
    # failover: promote without shrinking, then rebuild onto spares
    # ------------------------------------------------------------------

    def _failover(self, dead: str) -> Generator:
        self.failovers += 1
        for entry in self.location.entries():
            if entry.custodian == dead and entry.replicas:
                yield from self._promote_stripe_member(entry, dead)
        if self.econf.rebuild:
            yield from self._rebuild_stripes()

    def _promote_stripe_member(self, entry: LocationEntry, dead: str) -> Generator:
        """Elect the most up-to-date live member as new custodian.

        Same vv-sum election as replication, but membership is left
        intact: the dead slot stays listed (fragment indices are
        positional) until a rebuild re-homes it onto a spare.
        """
        best: Optional[str] = None
        best_score = -1
        for name in entry.replicas:
            if name == dead or not self.alive.get(name, False):
                continue
            try:
                conn = yield from self.peer(name)
                reply, _ = yield from self.node.call(
                    conn, "ReplicaStatus", {"volume_id": entry.volume_id}
                )
            except ReproError:
                continue
            score = sum(reply["vv"].values())
            if score > best_score:
                best, best_score = name, score
        if best is None:
            return  # no live member: the stripe is down until rejoin
        try:
            conn = yield from self.peer(best)
            yield from self.node.call(
                conn, "PromoteVolume", {"volume_id": entry.volume_id}
            )
        except ReproError:
            return
        self.location.reassign(entry.volume_id, best)
        self.promotions += 1
        yield from self._broadcast_location()
        if self.tracker is not None:
            self.tracker.record_failover(entry.volume_id, dead, best)

    def _rebuild_stripes(self) -> Generator:
        """Re-home every dead slot of every stripe onto a spare server."""
        changed = False
        for entry in self.location.entries():
            if not entry.erasure or not entry.replicas:
                continue
            if not self.alive.get(entry.custodian, False):
                continue  # headless stripe; rejoin recovers it
            k = entry.erasure[0]
            for idx, name in enumerate(list(entry.replicas)):
                if self.alive.get(name, False):
                    continue
                live = [n for n in entry.replicas if self.alive.get(n, False)]
                if len(live) < k:
                    continue  # unreadable: cannot rebuild until a rejoin
                spares = [n for n in self.alive_servers()
                          if n not in entry.replicas]
                if not spares:
                    continue  # no spare capacity; rejoin will heal in place
                if (yield from self._rebuild_slot(entry, idx, spares[0])):
                    entry.replicas[idx] = spares[0]
                    self.location.set_replicas(entry.volume_id, entry.replicas)
                    changed = True
        if changed:
            yield from self._broadcast_location()

    def _rebuild_slot(self, entry: LocationEntry, index: int,
                      target: str) -> Generator:
        """Order the custodian to rebuild one slot; True on success."""
        k = entry.erasure[0]
        sources = [
            n for n in entry.replicas
            if self.alive.get(n, False) and n != entry.custodian
            and n != target
        ][:k]
        try:
            conn = yield from self.peer(entry.custodian)
            yield from self.node.call(conn, "RebuildStripe", {
                "volume_id": entry.volume_id,
                "index": index,
                "target": target,
                "sources": sources,
            })
        except ReproError:
            self.rebuild_failures += 1
            return False
        self.rebuilds += 1
        return True

    # ------------------------------------------------------------------
    # rejoin: demote, rebuild the returned member's slots in place
    # ------------------------------------------------------------------

    def _rejoin(self, name: str) -> Generator:
        self.rejoins += 1
        try:
            conn = yield from self.peer(name)
            yield from self.node.call(
                conn, "SyncLocation", {"snapshot": self.location.snapshot()}
            )
            stale = set(self.volumes_at.get(name, []))
            for entry in self.location.entries():
                if not entry.replicas or name not in entry.replicas:
                    continue
                if entry.custodian == name:
                    continue  # it still leads this one (it never failed over)
                if entry.volume_id in stale:
                    # An ex-custodian copy: step it down before resyncing.
                    try:
                        yield from self.node.call(
                            conn, "DemoteVolume", {"volume_id": entry.volume_id}
                        )
                    except ReproError:
                        pass
                # Its fragments missed every write since it died: rebuild
                # the slot in place from the live members.
                idx = entry.replicas.index(name)
                yield from self._rebuild_slot(entry, idx, name)
                stale.discard(entry.volume_id)
            # Copies of stripes it no longer belongs to (slot re-homed).
            for volume_id in sorted(stale):
                try:
                    entry = self.location.entry_for_volume(volume_id)
                except ReproError:
                    continue
                if entry.replicas and name not in entry.replicas:
                    vv: Dict[str, int] = {}
                    try:
                        pconn = yield from self.peer(entry.custodian)
                        reply, _ = yield from self.node.call(
                            pconn, "ReplicaStatus", {"volume_id": volume_id}
                        )
                        vv = reply["vv"]
                    except ReproError:
                        pass
                    try:
                        yield from self.node.call(
                            conn, "DropVolume",
                            {"volume_id": volume_id, "vv": vv},
                        )
                    except ReproError:
                        pass
        finally:
            self._rejoining.discard(name)
        if self.econf.rebuild:
            # The returned server is spare capacity: heal remaining holes.
            yield from self._rebuild_stripes()


# ----------------------------------------------------------------------
# health (benchmark/test-side inspection, not part of the protocol)
# ----------------------------------------------------------------------


def stripe_health(campus) -> float:
    """Fraction of stripe slots that are live and current (1.0 = whole).

    A slot is healthy when its server is up and its copy holds a
    correctly-versioned fragment for every file the custodian knows.
    """
    controller = campus.replication_controller
    location = (campus._location_master if controller is None
                else controller.location)
    healthy = 0
    total = 0
    by_name = {server.host.name: server for server in campus.servers}
    for entry in location.entries():
        if not entry.erasure or not entry.replicas:
            continue
        custodian = by_name.get(entry.custodian)
        reference = (custodian.volumes.get(entry.volume_id)
                     if custodian is not None else None)
        if reference is None:
            total += len(entry.replicas)
            continue
        expected = {
            vnode: node.version
            for vnode, node in reference._inodes.items()
            if node.file_type == FileType.FILE
        }
        for name in entry.replicas:
            total += 1
            server = by_name.get(name)
            if server is None or not server.host.up:
                continue
            volume = server.volumes.get(entry.volume_id)
            if volume is None or volume.erasure_shape is None:
                continue
            if all(
                vnode in volume.fragments
                and vnode in volume._inodes
                and volume._inodes[vnode].version == version
                for vnode, version in expected.items()
            ):
                healthy += 1
    return healthy / total if total else 1.0
