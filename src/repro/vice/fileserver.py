"""The Vice file-server RPC protocol: every call a cluster server answers.

Two call families implement the paper's two implementations:

* **Pathname-based** (prototype, §3.5.2): ``Fetch``, ``Store``,
  ``GetStatus``, ``ValidateCache``, ... take full Vice pathnames and the
  *server* walks them, paying a per-component CPU charge — the cost that
  made "offloading of pathname traversal from servers to clients" the
  headline change of the redesign.
* **Fid-based** (revised, §5.3): ``LookupVnode``, ``FetchByFid``,
  ``StoreByFid``, ``FetchDir``, ... take fixed-length file identifiers;
  Venus walks directories itself and the server does O(1) vnode-index
  lookups.

Both families share the same internals, so semantics (ACL checks, callback
breaks, whole-file data movement) are identical and only the costs differ.

Call-mix accounting feeds EXP-1: every handler classifies itself as one of
``validate`` / ``status`` / ``fetch`` / ``store`` / ``other``, the paper's
histogram categories.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.errors import (
    CrossDeviceLink,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
    QuotaExceeded,
    ReproError,
)
from repro.obs.trace import _NULL_SPAN
from repro.rpc.connection import Connection
from repro.storage import pathutil
from repro.storage.unixfs import FileType, Inode
from repro.vice.ids import make_fid, split_fid
from repro.vice.protection import AccessList, Rights
from repro.vice.volume import Volume

__all__ = ["FileService", "SERVICE_PRINCIPAL"]

SERVICE_PRINCIPAL = "vice"  # server-to-server identity


class FileService:
    """Registers and implements the file protocol on one ViceServer."""

    def __init__(self, server):
        self.server = server
        self.costs = server.costs
        self.host = server.host
        self.sim = server.sim

    def register_all(self) -> None:
        """Attach every procedure to the server's RPC node."""
        node = self.server.node
        for name, handler in [
            # location
            ("GetCustodian", self.get_custodian),
            # pathname family (prototype)
            ("Fetch", self.fetch),
            ("Store", self.store),
            ("GetStatus", self.get_status),
            ("ValidateCache", self.validate_cache),
            ("ListDir", self.list_dir),
            ("MakeDir", self.make_dir),
            ("RemoveDir", self.remove_dir),
            ("Remove", self.remove),
            ("Rename", self.rename),
            ("MakeSymlink", self.make_symlink),
            ("GetACL", self.get_acl),
            ("SetACL", self.set_acl),
            ("SetLock", self.set_lock),
            ("ReleaseLock", self.release_lock),
            # fid family (revised)
            ("LookupVnode", self.lookup_vnode),
            ("FetchByFid", self.fetch_by_fid),
            ("StoreByFid", self.store_by_fid),
            ("FetchDir", self.fetch_dir),
            ("ValidateByFid", self.validate_by_fid),
            ("GetStatusByFid", self.get_status_by_fid),
            ("CreateByFid", self.create_by_fid),
            ("MakeDirByFid", self.make_dir_by_fid),
            ("RemoveByFid", self.remove_by_fid),
            ("RemoveDirByFid", self.remove_dir_by_fid),
            ("RenameByFid", self.rename_by_fid),
            ("SymlinkByFid", self.symlink_by_fid),
            ("GetACLByFid", self.get_acl_by_fid),
            ("SetACLByFid", self.set_acl_by_fid),
        ]:
            node.register(name, handler)

    # ==================================================================
    # shared internals
    # ==================================================================

    def _locate_path(self, vice_path: str, want_write: bool) -> Tuple[Volume, str]:
        """Location-database resolution to (volume-at-this-server, relpath).

        Raises :class:`NotCustodian` with a referral when another server
        stores the file.
        """
        entry, rest = self.server.location.resolve(vice_path)
        volume = self.server.volume_for_entry(entry, want_write)
        return volume, rest

    def _volume_by_id(self, volume_id: str, want_write: bool) -> Volume:
        return self.server.volume_by_id(volume_id, want_write)

    def _traversal_charge(self, vice_path: str) -> float:
        """Prototype servers pay CPU per path component; revised do not."""
        if self.server.mode != "prototype":
            return 0.0
        return len(pathutil.components(vice_path)) * self.costs.traverse_component_cpu

    def _traversal_io(self, vice_path: str) -> Generator:
        """Prototype pathname interpretation reads directories from disk.

        namei walks the storage hierarchy; with the era's small buffer
        cache, most component lookups cost a small random disk read.
        """
        if self.server.mode != "prototype":
            return
        reads = round(
            len(pathutil.components(vice_path))
            * self.costs.traversal_disk_reads_per_component
        )
        if reads > 0:
            yield from self.host.disk.access(
                512 * reads, sequential=False, page_size=512
            )

    def _status_disk(self) -> Generator:
        """Prototype status calls read the `.admin` shadow file from disk."""
        if self.costs.status_from_disk:
            yield from self.host.disk.access(self.costs.admin_file_bytes)

    def _check(
        self, volume: Volume, inode: Inode, username: str, right: str
    ) -> None:
        """Enforce the governing ACL (and per-file mode bits when revised)."""
        if username == SERVICE_PRINCIPAL:
            return  # intra-Vice traffic is trusted (inside the security boundary)
        acl = volume.acl_for(inode)
        rights = self.server.protection.rights_on(acl, username)
        if right not in rights:
            raise PermissionDenied(
                f"user {username} lacks {right!r} on {make_fid(volume.volume_id, inode.number)}"
            )
        if self.server.mode != "prototype" and inode.file_type == FileType.FILE:
            if username != inode.owner:
                if right == Rights.READ and not inode.mode_bits & 0o004:
                    raise PermissionDenied(f"mode bits deny read to {username}")
                if right == Rights.WRITE and not inode.mode_bits & 0o002:
                    raise PermissionDenied(f"mode bits deny write to {username}")

    def _status_of(self, volume: Volume, inode: Inode, username: str) -> Dict[str, Any]:
        """The status record every status-bearing call returns."""
        try:
            rights = "".join(
                sorted(self.server.protection.rights_on(volume.acl_for(inode), username))
            )
        except ReproError:
            rights = ""
        return {
            "fid": make_fid(volume.volume_id, inode.number),
            "type": inode.file_type,
            "size": volume.size_of(inode),
            "version": inode.version,
            "mtime": inode.mtime,
            "owner": inode.owner,
            "mode": inode.mode_bits,
            "rights": rights,
            "read_only": volume.read_only,
        }

    def _dir_entries(self, volume: Volume, inode: Inode) -> Dict[str, Dict[str, Any]]:
        if inode.file_type != FileType.DIRECTORY:
            raise NotADirectory(volume.path_of(inode.number))
        return {
            name: {
                "fid": make_fid(volume.volume_id, child.number),
                "type": child.file_type,
            }
            for name, child in inode.entries.items()
        }

    def _break_callbacks(self, fid: str, exclude: Optional[Connection]) -> Generator:
        """Notify every callback holder before a mutation is acknowledged.

        Only the *notified* promises are dropped: the excluded mutator keeps
        its own promise (its copy is the fresh one), so the next mutation by
        anyone else still knows to call it back.
        """
        holders = self.server.callbacks.holders(fid, exclude=exclude)
        if not holders:
            return
        # The breaks run in spawned processes, outside this span stack: hand
        # them the current span as an explicit parent so the trace tree keeps
        # the mutation -> break causality.
        parent = self.sim.tracer.current()
        breaks = [
            self.sim.process(self._break_one(conn, fid, parent), name=f"break:{fid}")
            for conn in holders
        ]
        yield self.sim.all_of(breaks)
        for conn in holders:
            self.server.callbacks.forget_holder(fid, conn)
        self.server.callbacks.promises_broken += len(holders)

    def _break_one(self, conn: Connection, fid: str, parent=None) -> Generator:
        with self.sim.tracer.span(
            "vice.callback_break", component="vice", host=self.host.name,
            parent=parent, fid=fid,
        ):
            try:
                yield from self.server.node.call(conn, "BreakCallback", {"fid": fid})
            except ReproError:
                pass  # holder unreachable: its promise simply lapses

    def _maybe_promise(self, volume: Volume, inode: Inode, conn: Connection) -> None:
        """Register a callback promise when running invalidate-on-modify."""
        if self.server.validation_mode != "callback":
            return
        if volume.read_only:
            return  # "cached copies can never be invalid"
        self.server.callbacks.register(make_fid(volume.volume_id, inode.number), conn)

    def _count(self, category: str) -> None:
        self.server.call_mix.add(category)

    # ==================================================================
    # location
    # ==================================================================

    def get_custodian(self, conn: Connection, args: Dict, payload: bytes):
        """Resolve a Vice path to its custodian assignment (location query)."""
        yield from self.host.compute(self.costs.fid_lookup_cpu)
        entry, _rest = self.server.location.resolve(args["path"])
        self._count("other")
        return entry.as_dict(), b""

    # ==================================================================
    # fetch / store (common cores)
    # ==================================================================

    def _fetch_core(self, volume: Volume, inode: Inode, conn: Connection):
        if inode.file_type == FileType.DIRECTORY:
            raise IsADirectory(volume.path_of(inode.number))
        self._check(volume, inode, conn.username, Rights.READ)
        if volume.erasure_shape is not None and inode.file_type == FileType.FILE:
            # Striped file: the data lives only as fragments.  Venus
            # normally reassembles client-side; this custodian-side
            # gather covers fragment-unaware callers.
            return (yield from self.server.replication.gather_fetch(
                self, volume, inode, conn))
        fid = make_fid(volume.volume_id, inode.number)
        tracer = self.sim.tracer
        with (tracer.span("vice.fetch", component="vice",
                          host=self.host.name, fid=fid)
              if tracer.enabled else _NULL_SPAN) as span:
            guard = yield from self.server.vnode_guard(fid)
            try:
                data = inode.data if inode.file_type == FileType.FILE else inode.target.encode()
                span.add(bytes=len(data))
                yield from self.host.compute(
                    self.costs.fetch_base_cpu
                    + self.costs.acl_check_cpu
                    + len(data) * self.costs.per_byte_cpu
                )
                yield from self.host.disk.access(len(data), sequential=True)
                yield from self._status_disk()
                self._maybe_promise(volume, inode, conn)
                status = self._status_of(volume, inode, conn.username)
            finally:
                self.server.vnode_release(fid, guard)
        self.server.note_volume_access(volume, conn, len(data))
        self._count("fetch")
        return status, bytes(data)

    def _store_core(
        self, volume: Volume, parent: Inode, name: str, inode: Optional[Inode],
        data: bytes, conn: Connection,
    ):
        """Whole-file store; ``inode`` is None when creating a new file."""
        if inode is not None and inode.file_type != FileType.FILE:
            raise IsADirectory(name)
        right = Rights.WRITE if inode is not None else Rights.INSERT
        check_target = inode if inode is not None else parent
        self._check(volume, check_target, conn.username, right)
        created = inode is None
        guard_fid = make_fid(
            volume.volume_id, parent.number if created else inode.number
        )
        tracer = self.sim.tracer
        with (tracer.span("vice.store", component="vice", host=self.host.name,
                          bytes=len(data), created=created)
              if tracer.enabled else _NULL_SPAN):
            guard = yield from self.server.vnode_guard(guard_fid)
            try:
                coded = volume.erasure_shape is not None
                frags = None
                yield from self.host.compute(
                    self.costs.store_base_cpu
                    + self.costs.acl_check_cpu
                    + len(data) * self.costs.per_byte_cpu
                )
                if coded:
                    from repro.vice.erasure import encode
                    old_len = (0 if created else
                               volume.fragment_true_sizes.get(inode.number, 0))
                    if (volume.quota_bytes is not None
                            and volume.logical_bytes + len(data) - old_len
                            > volume.quota_bytes):
                        raise QuotaExceeded(
                            f"volume {volume.volume_id}: striped store exceeds"
                            f" quota {volume.quota_bytes}"
                        )
                    # Encoding the stripe is one extra per-byte CPU pass;
                    # only this member's fragment hits the local disk.
                    yield from self.host.compute(
                        len(data) * self.costs.per_byte_cpu
                    )
                    frags = encode(data, *volume.erasure_shape)
                    yield from self.host.disk.access(
                        len(frags[0]), write=True, sequential=True
                    )
                else:
                    yield from self.host.disk.access(len(data), write=True, sequential=True)
                yield from self._status_disk()
                stored = b"" if coded else data
                if created:
                    parent_path = volume.path_of(parent.number)
                    inode = volume.create_file(
                        pathutil.join(parent_path, name), stored, owner=conn.username
                    )
                else:
                    inode = volume.write_vnode(inode.number, stored)
                if coded:
                    volume.set_fragment(
                        inode.number, frags[volume.erasure_index], len(data)
                    )
                fid = make_fid(volume.volume_id, inode.number)
                yield from self._break_callbacks(fid, exclude=conn)
                if created:
                    # The directory changed too: holders of its cached copy hear.
                    parent_fid = make_fid(volume.volume_id, parent.number)
                    yield from self._break_callbacks(parent_fid, exclude=conn)
                self._maybe_promise(volume, inode, conn)
                status = self._status_of(volume, inode, conn.username)
            finally:
                self.server.vnode_release(guard_fid, guard)
        if not coded:
            yield from self.server.replicate_mutation(volume, {
                "op": "write",
                "path": volume.path_of(inode.number),
                "vnode": inode.number,
                "version": inode.version,
                "owner": conn.username,
            }, payload=data)
        else:
            yield from self.server.replicate_fragments(volume, {
                "op": "write",
                "path": volume.path_of(inode.number),
                "vnode": inode.number,
                "version": inode.version,
                "owner": conn.username,
                "frag": {"len": len(data)},
            }, frags)
        self.server.note_volume_access(volume, conn, len(data))
        self._count("store")
        return status, b""

    # ==================================================================
    # pathname family
    # ==================================================================

    def fetch(self, conn: Connection, args: Dict, payload: bytes):
        """Whole-file fetch by pathname."""
        path = args["path"]
        yield from self.host.compute(self._traversal_charge(path))
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=False)
        inode = volume.resolve(rest)
        return (yield from self._fetch_core(volume, inode, conn))

    def store(self, conn: Connection, args: Dict, payload: bytes):
        """Whole-file store by pathname; creates the file if absent."""
        path = args["path"]
        yield from self.host.compute(self._traversal_charge(path))
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=True)
        parent = volume.resolve(pathutil.dirname(rest))
        name = pathutil.basename(rest)
        inode = parent.entries.get(name)
        return (yield from self._store_core(volume, parent, name, inode, payload, conn))

    def get_status(self, conn: Connection, args: Dict, payload: bytes):
        """Status by pathname (the paper's 27 % call)."""
        path = args["path"]
        yield from self.host.compute(
            self._traversal_charge(path) + self.costs.status_cpu + self.costs.acl_check_cpu
        )
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=False)
        inode = volume.resolve(rest)
        self._check(volume, inode, conn.username, Rights.LOOKUP)
        yield from self._status_disk()
        self._count("status")
        return self._status_of(volume, inode, conn.username), b""

    def validate_cache(self, conn: Connection, args: Dict, payload: bytes):
        """Compare a cached version with the custodian's (the 65 % call)."""
        path = args["path"]
        yield from self.host.compute(
            self._traversal_charge(path) + self.costs.validate_cpu
        )
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=False)
        try:
            inode = volume.resolve(rest)
        except FileNotFound:
            self._count("validate")
            yield from self._status_disk()
            return {"valid": False, "exists": False}, b""
        self._check(volume, inode, conn.username, Rights.READ)
        yield from self._status_disk()
        self._maybe_promise(volume, inode, conn)
        self._count("validate")
        valid = inode.version == args.get("version")
        return {"valid": valid, "exists": True, "version": inode.version}, b""

    def list_dir(self, conn: Connection, args: Dict, payload: bytes):
        """Directory entries by pathname."""
        path = args["path"]
        yield from self.host.compute(
            self._traversal_charge(path) + self.costs.status_cpu + self.costs.acl_check_cpu
        )
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=False)
        inode = volume.resolve(rest)
        self._check(volume, inode, conn.username, Rights.LOOKUP)
        yield from self._status_disk()
        self._count("status")
        return {
            "status": self._status_of(volume, inode, conn.username),
            "entries": self._dir_entries(volume, inode),
        }, b""

    def make_dir(self, conn: Connection, args: Dict, payload: bytes):
        """Create a directory by pathname."""
        path = args["path"]
        yield from self.host.compute(self._traversal_charge(path))
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=True)
        parent = volume.resolve(pathutil.dirname(rest))
        return (yield from self._mkdir_core(volume, parent, pathutil.basename(rest), conn))

    def _mkdir_core(self, volume: Volume, parent: Inode, name: str, conn: Connection):
        self._check(volume, parent, conn.username, Rights.INSERT)
        yield from self.host.compute(self.costs.dir_op_cpu + self.costs.acl_check_cpu)
        yield from self.host.disk.access(1024, write=True)
        parent_path = volume.path_of(parent.number)
        inode = volume.mkdir(pathutil.join(parent_path, name), owner=conn.username)
        yield from self._break_callbacks(make_fid(volume.volume_id, parent.number), exclude=conn)
        yield from self.server.replicate_mutation(volume, {
            "op": "mkdir",
            "path": volume.path_of(inode.number),
            "vnode": inode.number,
            "owner": conn.username,
        })
        self._count("other")
        return self._status_of(volume, inode, conn.username), b""

    def remove(self, conn: Connection, args: Dict, payload: bytes):
        """Remove a file or symlink by pathname."""
        path = args["path"]
        yield from self.host.compute(self._traversal_charge(path))
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=True)
        parent = volume.resolve(pathutil.dirname(rest))
        return (yield from self._remove_core(volume, parent, pathutil.basename(rest), conn, directory=False))

    def remove_dir(self, conn: Connection, args: Dict, payload: bytes):
        """Remove an empty directory by pathname."""
        path = args["path"]
        yield from self.host.compute(self._traversal_charge(path))
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=True)
        parent = volume.resolve(pathutil.dirname(rest))
        return (yield from self._remove_core(volume, parent, pathutil.basename(rest), conn, directory=True))

    def _remove_core(self, volume: Volume, parent: Inode, name: str, conn: Connection, directory: bool):
        self._check(volume, parent, conn.username, Rights.DELETE)
        yield from self.host.compute(self.costs.dir_op_cpu + self.costs.acl_check_cpu)
        yield from self.host.disk.access(1024, write=True)
        target = parent.entries.get(name)
        if target is None:
            raise FileNotFound(name)
        fid = make_fid(volume.volume_id, target.number)
        full = pathutil.join(volume.path_of(parent.number), name)
        if directory:
            volume.rmdir(full)
        else:
            volume.unlink(full)
        yield from self._break_callbacks(fid, exclude=conn)
        yield from self._break_callbacks(make_fid(volume.volume_id, parent.number), exclude=conn)
        yield from self.server.replicate_mutation(volume, {
            "op": "rmdir" if directory else "unlink",
            "path": full,
        })
        self._count("other")
        return {"removed": True}, b""

    def rename(self, conn: Connection, args: Dict, payload: bytes):
        """Rename by pathname; the prototype refuses directory renames."""
        old, new = args["old"], args["new"]
        yield from self.host.compute(
            self._traversal_charge(old) + self._traversal_charge(new)
        )
        yield from self._traversal_io(old)
        yield from self._traversal_io(new)
        old_vol, old_rest = self._locate_path(old, want_write=True)
        new_vol, new_rest = self._locate_path(new, want_write=True)
        return (yield from self._rename_core(old_vol, old_rest, new_vol, new_rest, conn))

    def _rename_core(self, old_vol: Volume, old_rest: str, new_vol: Volume, new_rest: str, conn: Connection):
        if old_vol is not new_vol:
            raise CrossDeviceLink("rename across volumes")
        node = old_vol.resolve(old_rest, follow=False)
        if self.server.mode == "prototype" and node.file_type == FileType.DIRECTORY:
            # §5.1: "the inability to rename directories in Vice" — a subtle
            # consequence of the prototype's pathname-keyed implementation.
            raise InvalidArgument("prototype Vice cannot rename directories")
        old_parent = old_vol.resolve(pathutil.dirname(old_rest))
        new_parent = new_vol.resolve(pathutil.dirname(new_rest))
        self._check(old_vol, old_parent, conn.username, Rights.DELETE)
        self._check(new_vol, new_parent, conn.username, Rights.INSERT)
        yield from self.host.compute(self.costs.dir_op_cpu + 2 * self.costs.acl_check_cpu)
        yield from self.host.disk.access(1024, write=True)
        replaced = None
        if old_vol.fs.exists(new_rest, follow=False):
            candidate = old_vol.resolve(new_rest, follow=False)
            if candidate.number != node.number:
                replaced = candidate
        old_vol.rename(old_rest, new_rest)
        for parent in {old_parent.number, new_parent.number}:
            yield from self._break_callbacks(make_fid(old_vol.volume_id, parent), exclude=conn)
        # Holders of the moved file cache it under its *old name*: their
        # path-to-fid binding is now wrong even though the bytes are not,
        # so their callbacks must break (the renamer fixed its own mapping).
        yield from self._break_callbacks(make_fid(old_vol.volume_id, node.number), exclude=conn)
        if replaced is not None:
            yield from self._break_callbacks(
                make_fid(old_vol.volume_id, replaced.number), exclude=conn
            )
        yield from self.server.replicate_mutation(old_vol, {
            "op": "rename",
            "old": old_rest,
            "new": new_rest,
        })
        self._count("other")
        return self._status_of(old_vol, node, conn.username), b""

    def make_symlink(self, conn: Connection, args: Dict, payload: bytes):
        """Create a symlink inside Vice (revised design only, §5.1)."""
        if self.server.mode == "prototype":
            raise InvalidArgument("prototype Vice does not support symbolic links")
        path = args["path"]
        volume, rest = self._locate_path(path, want_write=True)
        parent = volume.resolve(pathutil.dirname(rest))
        return (yield from self._symlink_core(volume, parent, pathutil.basename(rest), args["target"], conn))

    def _symlink_core(self, volume: Volume, parent: Inode, name: str, target: str, conn: Connection):
        self._check(volume, parent, conn.username, Rights.INSERT)
        yield from self.host.compute(self.costs.dir_op_cpu + self.costs.acl_check_cpu)
        yield from self.host.disk.access(512, write=True)
        parent_path = volume.path_of(parent.number)
        inode = volume.symlink(pathutil.join(parent_path, name), target, owner=conn.username)
        yield from self._break_callbacks(make_fid(volume.volume_id, parent.number), exclude=conn)
        yield from self.server.replicate_mutation(volume, {
            "op": "symlink",
            "path": volume.path_of(inode.number),
            "vnode": inode.number,
            "target": target,
            "owner": conn.username,
        })
        self._count("other")
        return self._status_of(volume, inode, conn.username), b""

    # ------------------------------------------------------------------
    # protection
    # ------------------------------------------------------------------

    def get_acl(self, conn: Connection, args: Dict, payload: bytes):
        """Read a directory's access list."""
        path = args["path"]
        yield from self.host.compute(
            self._traversal_charge(path) + self.costs.status_cpu
        )
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=False)
        inode = volume.resolve(rest)
        self._check(volume, inode, conn.username, Rights.LOOKUP)
        self._count("other")
        return self._acl_record(volume, inode), b""

    def set_acl(self, conn: Connection, args: Dict, payload: bytes):
        """Replace a directory's access list (requires 'a')."""
        path = args["path"]
        yield from self.host.compute(self._traversal_charge(path))
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=True)
        inode = volume.resolve(rest)
        return (yield from self._set_acl_core(volume, inode, args["acl"], conn))

    def _acl_record(self, volume: Volume, inode: Inode):
        if inode.file_type != FileType.DIRECTORY:
            raise NotADirectory("ACLs attach to directories")
        return volume.acls[inode.number].as_dict()

    def _set_acl_core(self, volume: Volume, inode: Inode, record: Dict, conn: Connection):
        if inode.file_type != FileType.DIRECTORY:
            raise NotADirectory("ACLs attach to directories")
        self._check(volume, inode, conn.username, Rights.ADMINISTER)
        yield from self.host.compute(self.costs.dir_op_cpu + self.costs.acl_check_cpu)
        yield from self.host.disk.access(512, write=True)
        volume._check_writable()
        volume.acls[inode.number] = AccessList.from_dict(record)
        # Protection changed: everyone caching the directory or a file in it
        # must revalidate (and validation re-checks rights), so revocation
        # takes effect at the next open campus-wide.
        yield from self._break_callbacks(make_fid(volume.volume_id, inode.number), exclude=None)
        for child in list(inode.entries.values()):
            yield from self._break_callbacks(
                make_fid(volume.volume_id, child.number), exclude=None
            )
        yield from self.server.replicate_mutation(volume, {
            "op": "set_acl",
            "path": volume.path_of(inode.number),
            "acl": record,
        })
        self._count("other")
        return {"ok": True}, b""

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------

    def set_lock(self, conn: Connection, args: Dict, payload: bytes):
        """Advisory lock by pathname; prototype serialises via lock server."""
        path = args["path"]
        yield from self.host.compute(self._traversal_charge(path) + self.costs.lock_cpu)
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=False)
        inode = volume.resolve(rest)
        self._check(volume, inode, conn.username, Rights.LOCK)
        fid = make_fid(volume.volume_id, inode.number)
        owner = f"{conn.username}@{conn.client_name}"
        yield from self.server.lock_serialization()
        self.server.locks.acquire(fid, owner, bool(args.get("exclusive")))
        self._count("other")
        return {"locked": True, "fid": fid}, b""

    def release_lock(self, conn: Connection, args: Dict, payload: bytes):
        """Release an advisory lock by pathname."""
        path = args["path"]
        yield from self.host.compute(self._traversal_charge(path) + self.costs.lock_cpu)
        yield from self._traversal_io(path)
        volume, rest = self._locate_path(path, want_write=False)
        inode = volume.resolve(rest)
        fid = make_fid(volume.volume_id, inode.number)
        owner = f"{conn.username}@{conn.client_name}"
        yield from self.server.lock_serialization()
        self.server.locks.release(fid, owner)
        self._count("other")
        return {"released": True}, b""

    # ==================================================================
    # fid family (revised protocol)
    # ==================================================================

    def _inode_from_fid(self, fid: str, want_write: bool) -> Tuple[Volume, Inode]:
        volume_id, vnode = split_fid(fid)
        volume = self._volume_by_id(volume_id, want_write)
        return volume, volume.inode_by_vnode(vnode)

    def lookup_vnode(self, conn: Connection, args: Dict, payload: bytes):
        """One-component directory lookup — the unit of client-side traversal."""
        yield from self.host.compute(self.costs.fid_lookup_cpu + self.costs.acl_check_cpu)
        volume, inode = self._inode_from_fid(args["fid"], want_write=False)
        self._check(volume, inode, conn.username, Rights.LOOKUP)
        child = inode.entries.get(args["name"])
        if child is None:
            raise FileNotFound(args["name"])
        self._count("status")
        return {
            "fid": make_fid(volume.volume_id, child.number),
            "type": child.file_type,
            "target": child.target,
        }, b""

    def fetch_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Whole-file fetch by fid."""
        yield from self.host.compute(self.costs.fid_lookup_cpu)
        volume, inode = self._inode_from_fid(args["fid"], want_write=False)
        return (yield from self._fetch_core(volume, inode, conn))

    def store_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Whole-file store by fid."""
        yield from self.host.compute(self.costs.fid_lookup_cpu)
        volume, inode = self._inode_from_fid(args["fid"], want_write=True)
        parent = volume.parent_of(inode.number)
        name = volume.path_of(inode.number).rsplit("/", 1)[-1]
        return (yield from self._store_core(volume, parent, name, inode, payload, conn))

    def create_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Create a file in a directory named by fid, storing ``payload``."""
        yield from self.host.compute(self.costs.fid_lookup_cpu)
        volume, parent = self._inode_from_fid(args["parent"], want_write=True)
        name = args["name"]
        if name in parent.entries:
            existing = parent.entries[name]
            return (yield from self._store_core(volume, parent, name, existing, payload, conn))
        return (yield from self._store_core(volume, parent, name, None, payload, conn))

    def fetch_dir(self, conn: Connection, args: Dict, payload: bytes):
        """Fetch a directory's entries (Venus caches these to walk paths)."""
        yield from self.host.compute(
            self.costs.fid_lookup_cpu + self.costs.status_cpu + self.costs.acl_check_cpu
        )
        volume, inode = self._inode_from_fid(args["fid"], want_write=False)
        self._check(volume, inode, conn.username, Rights.LOOKUP)
        entries = self._dir_entries(volume, inode)
        yield from self.host.disk.access(64 * max(1, len(entries)))
        self._maybe_promise(volume, inode, conn)
        self._count("fetch")
        return {
            "status": self._status_of(volume, inode, conn.username),
            "entries": entries,
        }, b""

    def validate_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Version check by fid; read-only volumes are always valid."""
        yield from self.host.compute(self.costs.fid_lookup_cpu + self.costs.validate_cpu)
        volume_id, vnode = split_fid(args["fid"])
        volume = self._volume_by_id(volume_id, want_write=False)
        if volume.read_only:
            # Venus normally never validates replica copies; when it does
            # (an explicit invalidation, or a new release cut over under
            # the same volume id), compare versions honestly.
            self._count("validate")
            try:
                inode = volume.inode_by_vnode(vnode)
            except FileNotFound:
                return {"valid": False, "exists": False}, b""
            valid = inode.version == args.get("version")
            return {"valid": valid, "exists": True, "version": inode.version}, b""
        try:
            inode = volume.inode_by_vnode(vnode)
        except FileNotFound:
            self._count("validate")
            return {"valid": False, "exists": False}, b""
        self._check(volume, inode, conn.username, Rights.READ)
        yield from self._status_disk()
        self._maybe_promise(volume, inode, conn)
        self._count("validate")
        valid = inode.version == args.get("version")
        return {"valid": valid, "exists": True, "version": inode.version}, b""

    def get_status_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Status by fid."""
        yield from self.host.compute(
            self.costs.fid_lookup_cpu + self.costs.status_cpu + self.costs.acl_check_cpu
        )
        volume, inode = self._inode_from_fid(args["fid"], want_write=False)
        self._check(volume, inode, conn.username, Rights.LOOKUP)
        yield from self._status_disk()
        self._count("status")
        return self._status_of(volume, inode, conn.username), b""

    def make_dir_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Create a directory under a parent named by fid."""
        yield from self.host.compute(self.costs.fid_lookup_cpu)
        volume, parent = self._inode_from_fid(args["parent"], want_write=True)
        return (yield from self._mkdir_core(volume, parent, args["name"], conn))

    def remove_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Remove a file/symlink entry from a parent named by fid."""
        yield from self.host.compute(self.costs.fid_lookup_cpu)
        volume, parent = self._inode_from_fid(args["parent"], want_write=True)
        return (yield from self._remove_core(volume, parent, args["name"], conn, directory=False))

    def remove_dir_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Remove an empty directory entry from a parent named by fid."""
        yield from self.host.compute(self.costs.fid_lookup_cpu)
        volume, parent = self._inode_from_fid(args["parent"], want_write=True)
        return (yield from self._remove_core(volume, parent, args["name"], conn, directory=True))

    def rename_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Rename between parents named by fid (directories allowed: §5.3)."""
        yield from self.host.compute(2 * self.costs.fid_lookup_cpu)
        volume, old_parent = self._inode_from_fid(args["old_parent"], want_write=True)
        new_volume, new_parent = self._inode_from_fid(args["new_parent"], want_write=True)
        if volume is not new_volume:
            raise CrossDeviceLink("rename across volumes")
        old_rest = pathutil.join(volume.path_of(old_parent.number), args["old_name"])
        new_rest = pathutil.join(volume.path_of(new_parent.number), args["new_name"])
        return (yield from self._rename_core(volume, old_rest, volume, new_rest, conn))

    def symlink_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Create a symlink under a parent named by fid."""
        if self.server.mode == "prototype":
            raise InvalidArgument("prototype Vice does not support symbolic links")
        yield from self.host.compute(self.costs.fid_lookup_cpu)
        volume, parent = self._inode_from_fid(args["parent"], want_write=True)
        return (yield from self._symlink_core(volume, parent, args["name"], args["target"], conn))

    def get_acl_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Read an ACL by directory fid."""
        yield from self.host.compute(self.costs.fid_lookup_cpu + self.costs.status_cpu)
        volume, inode = self._inode_from_fid(args["fid"], want_write=False)
        self._check(volume, inode, conn.username, Rights.LOOKUP)
        self._count("other")
        return self._acl_record(volume, inode), b""

    def set_acl_by_fid(self, conn: Connection, args: Dict, payload: bytes):
        """Replace an ACL by directory fid."""
        yield from self.host.compute(self.costs.fid_lookup_cpu)
        volume, inode = self._inode_from_fid(args["fid"], want_write=True)
        return (yield from self._set_acl_core(volume, inode, args["acl"], conn))
