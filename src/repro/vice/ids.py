"""Fixed-length unique file identifiers (fids).

The revised design replaces pathname-based server calls with "fixed-length
unique file identifiers for Vice files" (§5.3): a fid names a file by
``(volume id, vnode number)`` and is invariant across renames, which is what
makes renaming of arbitrary subtrees possible.  Vnode numbers are inode
numbers in the volume's backing file system and are never reused, so no
separate uniquifier is needed in this implementation.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import InvalidArgument

__all__ = ["make_fid", "split_fid", "volume_of"]


def make_fid(volume_id: str, vnode: int) -> str:
    """Compose a fid string from volume id and vnode number."""
    if "." in volume_id:
        raise InvalidArgument(f"volume id may not contain '.': {volume_id!r}")
    return f"{volume_id}.{vnode}"


def split_fid(fid: str) -> Tuple[str, int]:
    """Decompose a fid into ``(volume_id, vnode)``."""
    volume_id, dot, vnode = fid.rpartition(".")
    if not dot or not vnode.isdigit():
        raise InvalidArgument(f"malformed fid {fid!r}")
    return volume_id, int(vnode)


def volume_of(fid: str) -> str:
    """The volume id component of a fid."""
    return split_fid(fid)[0]
