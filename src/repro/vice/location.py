"""The replicated location database: mapping files to custodians.

Paper §3.1: "Each cluster server contains a complete copy of a location
database that maps files to Custodians... The size of the replicated
location database is relatively small because custodianship is on a subtree
basis."  Entries map a *mount path* in the shared name space to the volume
stored there, its custodian server, and any read-only replica sites.

The database changes slowly (subtree reassignment is an administrative,
human-initiated act), which is why full replication at every server is
tenable; :class:`repro.vice.server.ViceServer` propagates updates to all
replicas and the affected volume is offline during a move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FileNotFound, InvalidArgument
from repro.storage import pathutil

__all__ = ["LocationDatabase", "LocationEntry"]


@dataclass
class LocationEntry:
    """One custodianship assignment: a subtree and who stores it."""

    mount_path: str
    volume_id: str
    custodian: str
    ro_servers: List[str] = field(default_factory=list)
    # Read-write replica sites (custodian first) when the volume is
    # N-way replicated; empty otherwise.  See repro.vice.replication.
    # Erasure-coded stripes reuse the same list as slot-ordered stripe
    # members (index i holds fragment i).
    replicas: List[str] = field(default_factory=list)
    # [k, m] when the volume is erasure-coded; None otherwise.  See
    # repro.vice.erasure.
    erasure: Optional[List[int]] = None

    def as_dict(self) -> Dict:
        """Marshal-friendly form."""
        record = {
            "mount_path": self.mount_path,
            "volume_id": self.volume_id,
            "custodian": self.custodian,
            "ro_servers": list(self.ro_servers),
        }
        # Only replicated entries carry the extra key, so the marshalled
        # bytes (and every byte-derived wire/CPU charge) of unreplicated
        # campuses are unchanged.
        if self.replicas:
            record["replicas"] = list(self.replicas)
        if self.erasure:
            record["erasure"] = list(self.erasure)
        return record

    @classmethod
    def from_dict(cls, record: Dict) -> "LocationEntry":
        """Inverse of :meth:`as_dict`."""
        return cls(
            mount_path=record["mount_path"],
            volume_id=record["volume_id"],
            custodian=record["custodian"],
            ro_servers=list(record.get("ro_servers", [])),
            replicas=list(record.get("replicas", [])),
            erasure=list(record["erasure"]) if record.get("erasure") else None,
        )


class LocationDatabase:
    """One replica of the campus-wide location map."""

    # Bound on the resolve memo (distinct paths looked up between mapping
    # changes); cleared wholesale rather than LRU-tracked.
    _RESOLVE_CACHE_LIMIT = 8192

    def __init__(self):
        self._by_path: Dict[str, LocationEntry] = {}
        self._by_volume: Dict[str, LocationEntry] = {}
        self.version = 0
        # resolve() memo: raw path -> (entry, rest).  The cached tuples hold
        # *live* entries, so in-place mutations (reassign, set_ro_servers)
        # show through; only mapping changes (add/remove/load_snapshot)
        # invalidate.
        self._resolve_cache: Dict[str, Tuple[LocationEntry, str]] = {}
        self.resolve_hits = 0
        self.resolve_misses = 0

    def __len__(self) -> int:
        return len(self._by_path)

    def add(
        self,
        mount_path: str,
        volume_id: str,
        custodian: str,
        ro_servers: Optional[List[str]] = None,
    ) -> LocationEntry:
        """Record a custodianship assignment."""
        mount_path = pathutil.normalize(mount_path)
        if mount_path in self._by_path:
            raise InvalidArgument(f"mount path {mount_path!r} already assigned")
        if volume_id in self._by_volume:
            raise InvalidArgument(f"volume {volume_id!r} already mounted")
        entry = LocationEntry(mount_path, volume_id, custodian, list(ro_servers or []))
        self._by_path[mount_path] = entry
        self._by_volume[volume_id] = entry
        self._resolve_cache.clear()
        self.version += 1
        return entry

    def remove(self, mount_path: str) -> None:
        """Drop an assignment (volume deletion)."""
        entry = self._by_path.pop(pathutil.normalize(mount_path), None)
        if entry is None:
            raise FileNotFound(mount_path)
        del self._by_volume[entry.volume_id]
        self._resolve_cache.clear()
        self.version += 1

    def resolve(self, vice_path: str) -> Tuple[LocationEntry, str]:
        """Longest-prefix match: ``(entry, path relative to the mount)``.

        ``vice_path`` is a path in the shared name space (no ``/vice``
        prefix — that is Virtue's mount point, invisible to Vice).
        """
        cached = self._resolve_cache.get(vice_path)
        if cached is not None:
            self.resolve_hits += 1
            return cached
        self.resolve_misses += 1
        path = pathutil.normalize(vice_path)
        candidate = path
        while True:
            entry = self._by_path.get(candidate)
            if entry is not None:
                rest = path[len(candidate):] if candidate != "/" else path
                result = (entry, rest or "/")
                if len(self._resolve_cache) >= self._RESOLVE_CACHE_LIMIT:
                    self._resolve_cache.clear()
                self._resolve_cache[vice_path] = result
                return result
            if candidate == "/":
                raise FileNotFound(f"no custodian for {vice_path!r}")
            candidate = pathutil.dirname(candidate)

    def entry_for_volume(self, volume_id: str) -> LocationEntry:
        """The assignment holding ``volume_id``."""
        try:
            return self._by_volume[volume_id]
        except KeyError:
            raise FileNotFound(f"volume {volume_id!r} not mounted")

    def custodian_of(self, vice_path: str) -> str:
        """Convenience: the custodian server name for a path."""
        return self.resolve(vice_path)[0].custodian

    def reassign(self, volume_id: str, new_custodian: str) -> None:
        """Point an assignment at a different server (volume move)."""
        entry = self.entry_for_volume(volume_id)
        entry.custodian = new_custodian
        self.version += 1

    def set_ro_servers(self, volume_id: str, ro_servers: List[str]) -> None:
        """Update the read-only replica placement for a volume."""
        entry = self.entry_for_volume(volume_id)
        entry.ro_servers = list(ro_servers)
        self.version += 1

    def set_replicas(self, volume_id: str, replicas: List[str]) -> None:
        """Update the read-write replica membership for a volume."""
        entry = self.entry_for_volume(volume_id)
        entry.replicas = list(replicas)
        self.version += 1

    def entries(self) -> List[LocationEntry]:
        """All assignments, sorted by mount path."""
        return [self._by_path[p] for p in sorted(self._by_path)]

    def snapshot(self) -> Dict:
        """Marshal-friendly full copy for replica synchronisation."""
        return {
            "version": self.version,
            "entries": [e.as_dict() for e in self.entries()],
        }

    def load_snapshot(self, snapshot: Dict) -> None:
        """Replace local state with a replica snapshot."""
        self._by_path.clear()
        self._by_volume.clear()
        self._resolve_cache.clear()
        for record in snapshot["entries"]:
            entry = LocationEntry.from_dict(record)
            self._by_path[entry.mount_path] = entry
            self._by_volume[entry.volume_id] = entry
        self.version = snapshot["version"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LocationDatabase entries={len(self)} v{self.version}>"
