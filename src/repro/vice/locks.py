"""Advisory single-writer/multi-reader locks (§3.6).

"Vice provides primitives for single-writer/multi-reader locking.  Such
locking is advisory in nature" — nothing in the fetch/store path consults
the lock table; cooperating applications must all ask.

In the prototype "there is a single lock server process which serializes
requests and maintains lock tables in its virtual memory"; the server layer
models that by routing lock calls through a dedicated serialisation
resource in prototype mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.errors import LockConflict

__all__ = ["LockTable"]


@dataclass
class _LockState:
    readers: Set[str] = field(default_factory=set)
    writer: str = ""


class LockTable:
    """Single-writer/multi-reader advisory locks keyed by fid or path."""

    def __init__(self):
        self._locks: Dict[str, _LockState] = {}
        self.conflicts = 0

    def acquire(self, key: str, owner: str, exclusive: bool) -> None:
        """Take a lock; raises :class:`LockConflict` if incompatible.

        ``owner`` identifies the locker (user@workstation).  Lock requests
        are not queued — the paper's interface returns failure and the
        application retries — so there is nothing to deadlock on.
        """
        state = self._locks.setdefault(key, _LockState())
        if exclusive:
            if state.writer and state.writer != owner:
                self.conflicts += 1
                raise LockConflict(f"{key} is write-locked by {state.writer}")
            if state.readers - {owner}:
                self.conflicts += 1
                raise LockConflict(f"{key} has active readers")
            state.readers.discard(owner)
            state.writer = owner
        else:
            if state.writer and state.writer != owner:
                self.conflicts += 1
                raise LockConflict(f"{key} is write-locked by {state.writer}")
            state.readers.add(owner)

    def release(self, key: str, owner: str) -> None:
        """Release whatever ``owner`` holds on ``key`` (idempotent)."""
        state = self._locks.get(key)
        if state is None:
            return
        state.readers.discard(owner)
        if state.writer == owner:
            state.writer = ""
        if not state.readers and not state.writer:
            del self._locks[key]

    def release_all(self, owner: str) -> None:
        """Drop every lock held by ``owner`` (workstation crash recovery)."""
        for key in list(self._locks):
            self.release(key, owner)

    def holders(self, key: str) -> Dict[str, str]:
        """Current holders: name -> "read" / "write"."""
        state = self._locks.get(key)
        if state is None:
            return {}
        result = {reader: "read" for reader in state.readers}
        if state.writer:
            result[state.writer] = "write"
        return result

    def __len__(self) -> int:
        return len(self._locks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LockTable locked={len(self)} conflicts={self.conflicts}>"
