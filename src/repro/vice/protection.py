"""The protection domain: users, recursive groups, ACLs and negative rights.

Paper §3.4: entries on an access list come from a protection domain of
*Users* and *Groups*; groups may contain other groups recursively (modelled
on Grapevine's registration database).  A user's rights on an object are

    union of rights of every group in the user's CPS
    minus the union of the negative rights of the CPS,

where the *Current Protection Subdomain* (CPS) is the user plus every group
the user belongs to directly or transitively.  Negative rights exist for
rapid revocation: rescinding membership in a replicated database is slow,
but adding a negative entry at one site is immediate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.errors import UnknownPrincipal

__all__ = ["AccessList", "ProtectionDatabase", "Rights"]


class Rights:
    """The rights a Vice directory ACL can grant (AFS's classic seven)."""

    READ = "r"  # fetch files and read their status
    WRITE = "w"  # store (overwrite) existing files
    INSERT = "i"  # create new directory entries
    DELETE = "d"  # remove directory entries
    LOOKUP = "l"  # list the directory and stat entries
    ADMINISTER = "a"  # modify the access list
    LOCK = "k"  # set advisory locks

    ALL: FrozenSet[str] = frozenset("rwidlak")
    READ_ONLY: FrozenSet[str] = frozenset("rl")

    @classmethod
    def parse(cls, spec: str) -> FrozenSet[str]:
        """Parse a rights string like ``"rliw"``; validates every letter."""
        rights = frozenset(spec)
        unknown = rights - cls.ALL
        if unknown:
            raise ValueError(f"unknown rights {''.join(sorted(unknown))!r}")
        return rights


class AccessList:
    """Positive and negative entries mapping principal name -> rights set.

    Attached to directories ("the protected entities are directories, and
    all files within a directory have the same protection status").
    """

    # Bound so a long-lived ACL checked against many distinct subdomains
    # cannot grow without limit; in practice a handful of CPS values recur.
    _RIGHTS_CACHE_LIMIT = 1024

    def __init__(self):
        self.positive: Dict[str, FrozenSet[str]] = {}
        self.negative: Dict[str, FrozenSet[str]] = {}
        # effective-rights memo keyed by the caller's CPS frozenset; cleared
        # on every entry mutation.  frozenset hashes are cached by CPython,
        # so a hit costs one dict probe.
        self._rights_cache: Dict[FrozenSet[str], FrozenSet[str]] = {}

    def grant(self, principal: str, rights: str) -> None:
        """Add (or extend) a positive entry."""
        parsed = Rights.parse(rights)
        self.positive[principal] = self.positive.get(principal, frozenset()) | parsed
        self._rights_cache.clear()

    def deny(self, principal: str, rights: str) -> None:
        """Add (or extend) a negative entry — the rapid-revocation mechanism."""
        parsed = Rights.parse(rights)
        self.negative[principal] = self.negative.get(principal, frozenset()) | parsed
        self._rights_cache.clear()

    def drop(self, principal: str) -> None:
        """Remove both entries for a principal."""
        self.positive.pop(principal, None)
        self.negative.pop(principal, None)
        self._rights_cache.clear()

    def effective_rights(self, cps: Iterable[str]) -> FrozenSet[str]:
        """Rights for a caller whose CPS is ``cps`` (positives minus negatives)."""
        key = cps if isinstance(cps, frozenset) else frozenset(cps)
        cached = self._rights_cache.get(key)
        if cached is not None:
            return cached
        granted: Set[str] = set()
        revoked: Set[str] = set()
        for principal in key:
            granted |= self.positive.get(principal, frozenset())
            revoked |= self.negative.get(principal, frozenset())
        result = frozenset(granted - revoked)
        if len(self._rights_cache) >= self._RIGHTS_CACHE_LIMIT:
            self._rights_cache.clear()
        self._rights_cache[key] = result
        return result

    def copy(self) -> "AccessList":
        """An independent copy (used when cloning volumes)."""
        duplicate = AccessList()
        duplicate.positive = dict(self.positive)
        duplicate.negative = dict(self.negative)
        return duplicate

    def as_dict(self) -> Dict[str, Dict[str, str]]:
        """Marshal-friendly representation."""
        return {
            "positive": {p: "".join(sorted(r)) for p, r in self.positive.items()},
            "negative": {p: "".join(sorted(r)) for p, r in self.negative.items()},
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Dict[str, str]]) -> "AccessList":
        """Inverse of :meth:`as_dict`."""
        acl = cls()
        for principal, rights in record.get("positive", {}).items():
            acl.grant(principal, rights)
        for principal, rights in record.get("negative", {}).items():
            acl.deny(principal, rights)
        return acl

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AccessList +{len(self.positive)} -{len(self.negative)}>"


class ProtectionDatabase:
    """Users and recursively nested groups, with CPS computation.

    One logical database, "replicated at each cluster server"; replication
    is coordinated by :class:`repro.vice.protserver.ProtectionServer`.
    ``version`` increments on every mutation so replicas can be compared.
    """

    SYSTEM_ANYUSER = "system:anyuser"

    def __init__(self):
        self.users: Set[str] = set()
        self.groups: Dict[str, Set[str]] = {self.SYSTEM_ANYUSER: set()}
        self.user_keys: Dict[str, bytes] = {}
        self.version = 0
        # CPS caching (the paper computes the CPS once, at authentication
        # time).  ``_cache_version`` pins the caches to a database version;
        # any mutation bumps ``version``, so the next lookup rebuilds the
        # member -> containing-groups adjacency index and starts fresh.
        self._parents: Dict[str, List[str]] = {}
        self._cps_cache: Dict[str, FrozenSet[str]] = {}
        self._cache_version = -1
        self.cps_hits = 0
        self.cps_misses = 0

    # -- CPS cache maintenance ------------------------------------------------

    def _reindex(self) -> None:
        """Rebuild the member -> groups adjacency index and drop stale CPS."""
        parents: Dict[str, List[str]] = {}
        for group, members in self.groups.items():
            for member in members:
                parents.setdefault(member, []).append(group)
        self._parents = parents
        self._cps_cache.clear()
        self._cache_version = self.version

    # -- principals ---------------------------------------------------------

    def add_user(self, username: str, key: Optional[bytes] = None) -> None:
        """Register a user (idempotent); optionally set their long-term key."""
        self.users.add(username)
        if key is not None:
            self.user_keys[username] = key
        self.version += 1

    def remove_user(self, username: str) -> None:
        """Delete a user and scrub them from every group."""
        if username not in self.users:
            raise UnknownPrincipal(username)
        self.users.discard(username)
        self.user_keys.pop(username, None)
        for members in self.groups.values():
            members.discard(username)
        self.version += 1

    def add_group(self, group: str) -> None:
        """Create an empty group (idempotent)."""
        self.groups.setdefault(group, set())
        self.version += 1

    def remove_group(self, group: str) -> None:
        """Delete a group and scrub it from containing groups."""
        if group not in self.groups:
            raise UnknownPrincipal(group)
        del self.groups[group]
        for members in self.groups.values():
            members.discard(group)
        self.version += 1

    def add_member(self, group: str, member: str) -> None:
        """Add a user or group to a group."""
        if group not in self.groups:
            raise UnknownPrincipal(group)
        if member not in self.users and member not in self.groups:
            raise UnknownPrincipal(member)
        self.groups[group].add(member)
        self.version += 1

    def remove_member(self, group: str, member: str) -> None:
        """Remove a direct member from a group."""
        if group not in self.groups:
            raise UnknownPrincipal(group)
        self.groups[group].discard(member)
        self.version += 1

    def is_user(self, name: str) -> bool:
        """True if ``name`` names a registered user."""
        return name in self.users

    def user_key(self, username: str) -> bytes:
        """The user's long-term authentication key (for the handshake)."""
        try:
            return self.user_keys[username]
        except KeyError:
            raise UnknownPrincipal(username)

    # -- CPS -----------------------------------------------------------------

    def cps(self, username: str) -> FrozenSet[str]:
        """The Current Protection Subdomain of a user.

        The user, every group reachable by following membership edges
        upward (direct or indirect), and the implicit ``system:anyuser``.
        """
        if username not in self.users:
            raise UnknownPrincipal(username)
        if self._cache_version != self.version:
            self._reindex()
        cached = self._cps_cache.get(username)
        if cached is not None:
            self.cps_hits += 1
            return cached
        self.cps_misses += 1
        parents = self._parents
        reachable: Set[str] = {username, self.SYSTEM_ANYUSER}
        frontier: List[str] = [username]
        while frontier:
            for group in parents.get(frontier.pop(), ()):
                if group not in reachable:
                    reachable.add(group)
                    frontier.append(group)
        result = frozenset(reachable)
        self._cps_cache[username] = result
        return result

    def rights_on(self, acl: AccessList, username: str) -> FrozenSet[str]:
        """Effective rights of ``username`` on an object guarded by ``acl``."""
        return acl.effective_rights(self.cps(username))

    # -- replication support --------------------------------------------------

    def snapshot(self) -> Dict:
        """A deep, marshal-friendly snapshot for replica synchronisation."""
        return {
            "users": sorted(self.users),
            "groups": {g: sorted(m) for g, m in self.groups.items()},
            "user_keys": dict(self.user_keys),
            "version": self.version,
        }

    def load_snapshot(self, snapshot: Dict) -> None:
        """Replace local state with a replica snapshot."""
        self.users = set(snapshot["users"])
        self.groups = {g: set(m) for g, m in snapshot["groups"].items()}
        self.user_keys = dict(snapshot["user_keys"])
        self.version = snapshot["version"]
        # The snapshot may carry the same version number as the state it
        # replaces (replica catch-up), so invalidate explicitly.
        self._parents = {}
        self._cps_cache.clear()
        self._cache_version = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProtectionDatabase users={len(self.users)} groups={len(self.groups)} v{self.version}>"
