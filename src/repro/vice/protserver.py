"""The protection server: coordinated updates to the protection database.

Paper §3.4: "Information about users and groups is stored in a protection
database which is replicated at each cluster server.  Manipulation of this
database is via a protection server, which coordinates the updating of the
database at all sites."  §3.5.2: the prototype had no protection server and
relied on manual updates by operations staff; the reimplementation added it.

Accordingly this module offers both:

* :class:`ProtectionServer` — RPC handlers, hosted on one designated
  cluster server, that mutate the database and push the new snapshot to
  every replica before acknowledging (the revised design);
* :func:`manual_update` — the prototype's "operations staff edits all the
  copies" path, applied instantaneously outside the protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Iterable

from repro.errors import PermissionDenied
from repro.rpc.connection import Connection
from repro.vice.fileserver import SERVICE_PRINCIPAL
from repro.vice.protection import ProtectionDatabase
from repro.vice.server import ViceServer

__all__ = ["ProtectionServer", "manual_update"]

ADMIN_GROUP = "system:administrators"


def manual_update(
    servers: Iterable[ViceServer], mutate: Callable[[ProtectionDatabase], None]
) -> None:
    """Apply a mutation to every replica directly (prototype operations staff)."""
    for server in servers:
        mutate(server.protection)


class ProtectionServer:
    """Protection-database coordinator hosted on one cluster server."""

    def __init__(self, server: ViceServer):
        self.server = server
        node = server.node
        node.register("ProtAddUser", self.add_user)
        node.register("ProtRemoveUser", self.remove_user)
        node.register("ProtAddGroup", self.add_group)
        node.register("ProtRemoveGroup", self.remove_group)
        node.register("ProtAddMember", self.add_member)
        node.register("ProtRemoveMember", self.remove_member)

    # -- authorisation ---------------------------------------------------------

    def _require_admin(self, conn: Connection) -> None:
        if conn.username == SERVICE_PRINCIPAL:
            return
        db = self.server.protection
        if db.is_user(conn.username) and ADMIN_GROUP in db.cps(conn.username):
            return
        raise PermissionDenied(f"{conn.username} is not a protection administrator")

    def _mutate(self, conn: Connection, mutate: Callable[[ProtectionDatabase], None]) -> Generator:
        """Authorise, apply locally, then replicate everywhere before replying."""
        self._require_admin(conn)
        yield from self.server.host.compute(0.005)
        mutate(self.server.protection)
        yield from self.server.broadcast_protection()

    # -- handlers -----------------------------------------------------------------

    def add_user(self, conn: Connection, args: Dict, payload: bytes):
        """Register a user; ``key`` (bytes) is their long-term key."""
        yield from self._mutate(conn, lambda db: db.add_user(args["username"], args.get("key")))
        return {"ok": True}, b""

    def remove_user(self, conn: Connection, args: Dict, payload: bytes):
        """Delete a user everywhere."""
        yield from self._mutate(conn, lambda db: db.remove_user(args["username"]))
        return {"ok": True}, b""

    def add_group(self, conn: Connection, args: Dict, payload: bytes):
        """Create a group."""
        yield from self._mutate(conn, lambda db: db.add_group(args["group"]))
        return {"ok": True}, b""

    def remove_group(self, conn: Connection, args: Dict, payload: bytes):
        """Delete a group everywhere."""
        yield from self._mutate(conn, lambda db: db.remove_group(args["group"]))
        return {"ok": True}, b""

    def add_member(self, conn: Connection, args: Dict, payload: bytes):
        """Add a user or group to a group."""
        yield from self._mutate(conn, lambda db: db.add_member(args["group"], args["member"]))
        return {"ok": True}, b""

    def remove_member(self, conn: Connection, args: Dict, payload: bytes):
        """Remove a direct member from a group.

        Note the paper's caveat: because of replication and recursive
        groups, this path "may be unacceptably slow in emergencies" — the
        fast path is a negative right on the object's ACL instead.
        """
        yield from self._mutate(conn, lambda db: db.remove_member(args["group"], args["member"]))
        return {"ok": True}, b""
