"""Read-write volume replication: heartbeats, leases, and failover.

The paper stops at read-only replication: "Read-only subtrees... may be
replicated at many sites" (§3.2), while each read-write subtree lives at
exactly one custodian whose crash takes the subtree down until salvage.
This module extends the reproduction past that limit with the mechanism
the CMU line of work adopted next (AFS volume replication, then Coda):
N-way **read-write** replicas with a primary-copy write protocol and a
small replication controller that detects dead servers and promotes
survivors.

Protocol summary
----------------

* Every replicated volume has one **primary** (the location database's
  custodian) and ``factor - 1`` **secondaries**.  All traffic is served
  by the primary; secondaries refuse with ``NotCustodian`` referrals.
* A mutation applies at the primary, then propagates synchronously to
  the secondaries; the store succeeds once a **majority** of the
  replica set (primary included) holds it.  Per-origin **version
  vectors** record the write history so a diverged copy can be detected
  and counted when it is later overwritten.
* Every server sends a **heartbeat** to the controller each
  ``heartbeat_interval``; the reply renews a **write lease**.  A primary
  whose lease lapses (partitioned, or the controller died) fails writes
  with ``LeaseExpired`` — it can never accept a write after the moment
  the controller is entitled to promote someone else, because promotion
  waits ``missed_beats`` intervals and the lease is never longer.
* When the controller misses ``missed_beats`` consecutive heartbeats it
  declares the server dead, **promotes** the most up-to-date surviving
  secondary (largest version-vector sum), rewrites the location
  database, pushes it to the surviving servers, and **re-replicates**
  under-replicated volumes onto spare servers.
* A declared-dead server that heartbeats again is **rejoined**: its
  lease is withheld while the controller demotes its stale primaries,
  re-ships current volume copies, and drops copies it no longer owns.

Nothing here is constructed unless ``SystemConfig.replication`` is set,
so unreplicated campuses remain byte-identical to earlier builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set

from repro.errors import FileNotFound, ReplicationError, ReproError, ViceError
from repro.hosts import Host
from repro.net.topology import Network
from repro.rpc import marshal
from repro.rpc.connection import Connection
from repro.rpc.costs import EncryptionMode, RpcCosts
from repro.rpc.node import RpcNode
from repro.sim.kernel import Simulator
from repro.vice.fileserver import SERVICE_PRINCIPAL
from repro.vice.location import LocationDatabase, LocationEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vice.server import ViceServer

__all__ = [
    "CONTROLLER_NAME",
    "ReplicationConfig",
    "ReplicationController",
    "ServerReplication",
]

# The controller host's canonical name; it lives on the backbone so every
# cluster can reach it without crossing a second bridge.
CONTROLLER_NAME = "replctl"


@dataclass(frozen=True)
class ReplicationConfig:
    """Knobs for read-write replication (``SystemConfig.replication``)."""

    # Copies per volume, primary included; capped at the server count.
    factor: int = 2
    # Seconds between heartbeats from each server to the controller.
    heartbeat_interval: float = 5.0
    # Consecutive missed heartbeats before a server is declared dead.
    missed_beats: int = 3
    # Write-lease lifetime granted per heartbeat ack.  Must not exceed
    # missed_beats * heartbeat_interval or a partitioned primary could
    # still be accepting writes when its successor is promoted.
    lease_duration: float = 15.0
    # Re-ship under-replicated volumes to spare servers after a failover.
    rereplicate: bool = True
    # The controller is a small dedicated machine, server-class CPU.
    controller_cpu_speed: float = 2.0

    def __post_init__(self):
        if self.factor < 1:
            raise ValueError("replication factor must be at least 1")
        if self.lease_duration > self.detection_time:
            raise ValueError(
                "lease_duration must not exceed missed_beats * heartbeat_interval"
            )

    @property
    def detection_time(self) -> float:
        """Worst-case seconds from death to the controller noticing."""
        return self.missed_beats * self.heartbeat_interval


class ServerReplication:
    """The per-server replication agent: heartbeats, leases, propagation."""

    def __init__(self, server: "ViceServer", config: ReplicationConfig):
        self.server = server
        self.config = config
        self.sim = server.sim
        # Optimistic initial lease: the first heartbeat lands well inside it.
        self.lease_until = self.sim.now + config.lease_duration
        self.heartbeats = 0
        self.propagations = 0
        self.propagation_failures = 0
        self.applied = 0
        self.divergent_discarded = 0

        node = server.node
        node.register("ReplicateOp", self._replicate_op_handler)
        node.register("PromoteVolume", self._promote_handler)
        node.register("DemoteVolume", self._demote_handler)
        node.register("ReplicaStatus", self._status_handler)
        node.register("PlaceReplica", self._place_replica_handler)

        name = server.host.name
        server.sim.metrics.counter(f"replication.{name}", lambda: {
            "heartbeats": self.heartbeats,
            "propagations": self.propagations,
            "propagation_failures": self.propagation_failures,
            "applied": self.applied,
            "divergent_discarded": self.divergent_discarded,
        })
        self.sim.process(self._heartbeat_loop(), name=f"heartbeat:{name}")

    # ------------------------------------------------------------------
    # heartbeats and leases
    # ------------------------------------------------------------------

    def lease_valid(self) -> bool:
        """Whether this server may still act as a primary for writes."""
        return self.sim.now <= self.lease_until

    def _heartbeat_loop(self) -> Generator:
        interval = self.config.heartbeat_interval
        while True:
            # A crashed host's processes keep running (only inbound
            # dispatch stops), so the loop itself must respect `up`.
            if self.server.host.up:
                try:
                    conn = yield from self.server.peer(CONTROLLER_NAME)
                    reply, _ = yield from self.server.node.call(
                        conn, "Heartbeat",
                        {"server": self.server.host.name,
                         "volumes": sorted(self.server.volumes)},
                    )
                    self.lease_until = reply["lease_until"]
                    self.heartbeats += 1
                except ReproError:
                    pass  # unreachable controller: the lease quietly lapses
            yield self.sim.timeout(interval)

    # ------------------------------------------------------------------
    # write propagation (primary side)
    # ------------------------------------------------------------------

    def propagate(self, volume, record: Dict, payload: bytes = b"") -> Generator:
        """Ship one applied mutation to the secondaries; wait for quorum.

        The replica set includes this primary, which already holds the
        write, so ``quorum - 1`` secondary acks suffice.  Shipments run
        in parallel; the store resumes at quorum, and stragglers finish
        in the background.  Raises :class:`ReplicationError` when every
        shipment has failed short of quorum.
        """
        entry = self.server.location.entry_for_volume(volume.volume_id)
        peers = [n for n in entry.replicas if n != self.server.host.name]
        if not peers:
            return
        needed = (len(entry.replicas) // 2 + 1) - 1  # remote acks required
        outcome = self.sim.event()
        state = {"acks": 0, "done": 0}

        def ship(name: str) -> Generator:
            try:
                conn = yield from self.server.peer(name)
                yield from self.server.node.call(
                    conn, "ReplicateOp",
                    {"volume_id": volume.volume_id, "record": record},
                    payload=payload,
                )
            except ReproError:
                pass
            else:
                state["acks"] += 1
                if state["acks"] >= needed and not outcome.triggered:
                    outcome.succeed(True)
            state["done"] += 1
            if state["done"] == len(peers) and not outcome.triggered:
                outcome.succeed(state["acks"] >= needed)

        for name in peers:
            self.sim.process(ship(name), name=f"replicate:{volume.volume_id}>{name}")
        ok = yield outcome
        self.propagations += 1
        if not ok:
            self.propagation_failures += 1
            raise ReplicationError(
                f"volume {volume.volume_id!r}: {state['acks']} of {needed}"
                f" required secondary acks"
            )

    # ------------------------------------------------------------------
    # handlers (secondary / controller-driven side)
    # ------------------------------------------------------------------

    def _local_volume(self, volume_id: str):
        volume = self.server.volumes.get(volume_id)
        if volume is None:
            raise FileNotFound(f"no replica of volume {volume_id!r} here")
        return volume

    def _replicate_op_handler(self, conn: Connection, args, payload):
        """Apply one primary mutation to the local secondary copy."""
        self.server._require_service(conn)
        volume = self._local_volume(args["volume_id"])
        yield from self.server.host.compute(
            0.002 + len(payload) * self.server.costs.per_byte_cpu
        )
        if payload:
            yield from self.server.host.disk.access(len(payload), write=True)
        volume.apply_replica_op(args["record"], payload)
        self.applied += 1
        return {"ok": True}, b""

    def _promote_handler(self, conn: Connection, args, payload):
        """Become primary for a volume (controller-ordered failover)."""
        self.server._require_service(conn)
        yield from self.server.host.compute(0.005)
        volume = self._local_volume(args["volume_id"])
        volume.replica_role = "primary"
        return {"vv": dict(volume.version_vector)}, b""

    def _demote_handler(self, conn: Connection, args, payload):
        """Step down to secondary (a rejoined ex-primary)."""
        self.server._require_service(conn)
        yield from self.server.host.compute(0.005)
        volume = self._local_volume(args["volume_id"])
        volume.replica_role = "secondary"
        return {"vv": dict(volume.version_vector)}, b""

    def _status_handler(self, conn: Connection, args, payload):
        """Report the local copy's version vector (promotion election)."""
        self.server._require_service(conn)
        yield from self.server.host.compute(0.001)
        volume = self._local_volume(args["volume_id"])
        return {"vv": dict(volume.version_vector),
                "role": volume.replica_role}, b""

    def _place_replica_handler(self, conn: Connection, args, payload):
        """Ship this server's copy of a volume to a new replica site."""
        self.server._require_service(conn)
        volume = self._local_volume(args["volume_id"])
        snapshot_bytes = marshal.dumps(volume.snapshot())
        yield from self.server.host.disk.access(len(snapshot_bytes), sequential=True)
        yield from self.server.host.compute(
            len(snapshot_bytes) * self.server.costs.per_byte_cpu
        )
        target_conn = yield from self.server.peer(args["target"])
        yield from self.server.node.call(
            target_conn, "ReceiveVolume",
            {"role": args.get("role", "secondary")},
            payload=snapshot_bytes, expect_bytes=len(snapshot_bytes),
        )
        return {"ok": True}, b""


class ReplicationController:
    """The failure detector and membership authority for replicated volumes.

    One small dedicated host on the backbone.  It is deliberately simple
    (and assumed reliable — replicating the controller itself is out of
    scope): a heartbeat table, a monitor loop, and the failover/rejoin
    procedures.  All of its orders travel over the same authenticated
    RPC fabric as ordinary server-to-server traffic, under the internal
    ``vice`` principal.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ReplicationConfig,
        service_key: bytes,
        rpc_costs: Optional[RpcCosts] = None,
        encryption: str = EncryptionMode.HARDWARE,
        segment: str = "backbone",
        name: str = CONTROLLER_NAME,
    ):
        self.sim = sim
        self.config = config
        self.service_key = service_key
        self.host = Host(sim, network, name, segment,
                         cpu_speed=config.controller_cpu_speed)
        self.node = RpcNode(
            self.host,
            costs=rpc_costs,
            transport="datagram",
            server_mode="lwp",
            encryption=encryption,
            auth_key_lookup=self._lookup_key,
        )
        # The controller's own replica of the location database; the
        # campus (ITCSystem.sync_databases) keeps it current at setup
        # time, and the controller becomes its author during failovers.
        self.location = LocationDatabase()
        self.server_names: List[str] = []
        self.last_beat: Dict[str, float] = {}
        self.alive: Dict[str, bool] = {}
        self.volumes_at: Dict[str, List[str]] = {}
        self._rejoining: Set[str] = set()
        self._peer_connections: Dict[str, Connection] = {}
        # Set by ITCSystem when a fault plan installs availability
        # accounting; failover events land on its timeline.
        self.tracker = None

        self.heartbeats = 0
        self.deaths_declared = 0
        self.failovers = 0
        self.promotions = 0
        self.rereplications = 0
        self.rejoins = 0

        self.node.register("Heartbeat", self._heartbeat_handler)
        sim.metrics.counter("replication.controller", lambda: {
            "heartbeats": self.heartbeats,
            "deaths_declared": self.deaths_declared,
            "failovers": self.failovers,
            "promotions": self.promotions,
            "rereplications": self.rereplications,
            "rejoins": self.rejoins,
        })
        sim.process(self._monitor_loop(), name="replctl:monitor")

    # ------------------------------------------------------------------
    # fabric
    # ------------------------------------------------------------------

    def _lookup_key(self, username: str) -> bytes:
        if username == SERVICE_PRINCIPAL:
            return self.service_key
        raise ViceError("the replication controller only talks to Vice")

    def register_server(self, name: str) -> None:
        """Admit a server to the heartbeat table (campus construction)."""
        if name not in self.server_names:
            self.server_names.append(name)
        self.last_beat[name] = self.sim.now
        self.alive[name] = True

    def peer(self, server_name: str) -> Generator[None, None, Connection]:
        conn = self._peer_connections.get(server_name)
        if conn is not None and conn.established and not conn.closed:
            return conn
        conn = yield from self.node.connect(
            server_name, SERVICE_PRINCIPAL, self.service_key
        )
        self._peer_connections[server_name] = conn
        return conn

    def alive_servers(self) -> List[str]:
        """Registered servers currently believed alive, in campus order."""
        return [n for n in self.server_names if self.alive.get(n, False)]

    # ------------------------------------------------------------------
    # failure detection
    # ------------------------------------------------------------------

    def _heartbeat_handler(self, conn: Connection, args, payload):
        if conn.username != SERVICE_PRINCIPAL:
            raise ViceError("heartbeat from a non-Vice principal")
        yield from self.host.compute(0.001)
        name = args["server"]
        now = self.sim.now
        known = name in self.alive
        was_alive = self.alive.get(name, True)
        self.last_beat[name] = now
        self.volumes_at[name] = list(args.get("volumes", []))
        self.alive[name] = True
        if name not in self.server_names:
            self.server_names.append(name)
        self.heartbeats += 1
        if known and not was_alive and name not in self._rejoining:
            # Back from the dead: resynchronise before granting a lease.
            self._rejoining.add(name)
            self.sim.process(self._rejoin(name), name=f"replctl:rejoin:{name}")
        if name in self._rejoining:
            # An already-expired lease keeps the rejoiner read-only.
            lease_until = now
        else:
            lease_until = now + self.config.lease_duration
        return {"lease_until": lease_until}, b""

    def _monitor_loop(self) -> Generator:
        interval = self.config.heartbeat_interval
        detection = self.config.detection_time
        while True:
            yield self.sim.timeout(interval)
            now = self.sim.now
            for name in self.server_names:
                if not self.alive.get(name, False):
                    continue
                if now - self.last_beat.get(name, 0.0) > detection:
                    self.alive[name] = False
                    self.deaths_declared += 1
                    self.sim.process(
                        self._failover(name), name=f"replctl:failover:{name}"
                    )

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def _failover(self, dead: str) -> Generator:
        """Promote successors for every volume the dead server led."""
        self.failovers += 1
        for entry in self.location.entries():
            if entry.custodian == dead and entry.replicas:
                yield from self._promote_volume(entry, dead)
        if self.config.rereplicate:
            yield from self._rereplicate_all()

    def _promote_volume(self, entry: LocationEntry, dead: str) -> Generator:
        """Elect the most up-to-date surviving replica as new primary."""
        best: Optional[str] = None
        best_score = -1
        for name in entry.replicas:
            if name == dead or not self.alive.get(name, False):
                continue
            try:
                conn = yield from self.peer(name)
                reply, _ = yield from self.node.call(
                    conn, "ReplicaStatus", {"volume_id": entry.volume_id}
                )
            except ReproError:
                continue
            score = sum(reply["vv"].values())
            if score > best_score:
                best, best_score = name, score
        if best is None:
            return  # no live replica: the volume is down until rejoin
        try:
            conn = yield from self.peer(best)
            yield from self.node.call(
                conn, "PromoteVolume", {"volume_id": entry.volume_id}
            )
        except ReproError:
            return
        self.location.reassign(entry.volume_id, best)
        # Membership shrinks to the live copies at promotion: the write
        # quorum must never wait on a dead member's ack, and the lease
        # fence makes dropping it safe (it cannot serve a write again
        # without being rejoined).  Re-replication grows it back.
        survivors = [
            n for n in entry.replicas
            if n != best and self.alive.get(n, False)
        ]
        self.location.set_replicas(entry.volume_id, [best] + survivors)
        self.promotions += 1
        yield from self._broadcast_location()
        if self.tracker is not None:
            self.tracker.record_failover(entry.volume_id, dead, best)

    def _rereplicate_all(self) -> Generator:
        """Restore the replication factor after membership changed.

        Membership shrinks to the live copies (the lease fence makes that
        safe: a dropped member can never serve a write again without being
        rejoined) and grows back onto spare live servers, shipped from the
        current primary.
        """
        alive = self.alive_servers()
        want = min(self.config.factor, len(alive))
        changed = False
        for entry in self.location.entries():
            if not entry.replicas:
                continue
            if not self.alive.get(entry.custodian, False):
                continue  # still headless; a later rejoin recovers it
            live = [entry.custodian] + [
                n for n in entry.replicas
                if n != entry.custodian and self.alive.get(n, False)
            ]
            spares = [n for n in alive if n not in live]
            for target in spares[: max(0, want - len(live))]:
                try:
                    conn = yield from self.peer(entry.custodian)
                    yield from self.node.call(conn, "PlaceReplica", {
                        "volume_id": entry.volume_id,
                        "target": target,
                        "role": "secondary",
                    })
                except ReproError:
                    continue
                live.append(target)
                self.rereplications += 1
            if live != list(entry.replicas):
                self.location.set_replicas(entry.volume_id, live)
                changed = True
        if changed:
            yield from self._broadcast_location()

    # ------------------------------------------------------------------
    # rejoin
    # ------------------------------------------------------------------

    def _rejoin(self, name: str) -> Generator:
        """Bring a returned server back into service, read-only first."""
        self.rejoins += 1
        try:
            conn = yield from self.peer(name)
            # Its databases are stale: push the current location map first
            # so it refers clients to the right primaries immediately.
            yield from self.node.call(
                conn, "SyncLocation", {"snapshot": self.location.snapshot()}
            )
            stale = set(self.volumes_at.get(name, []))
            for entry in self.location.entries():
                if not entry.replicas or name not in entry.replicas:
                    continue
                if entry.custodian == name:
                    continue  # it still leads this one (it never failed over)
                if entry.volume_id in stale:
                    # An ex-primary copy: step it down before resyncing.
                    try:
                        yield from self.node.call(
                            conn, "DemoteVolume", {"volume_id": entry.volume_id}
                        )
                    except ReproError:
                        pass
                try:
                    pconn = yield from self.peer(entry.custodian)
                    yield from self.node.call(pconn, "PlaceReplica", {
                        "volume_id": entry.volume_id,
                        "target": name,
                        "role": "secondary",
                    })
                except ReproError:
                    pass
                stale.discard(entry.volume_id)
            # Copies of replicated volumes it no longer belongs to.
            for volume_id in sorted(stale):
                try:
                    entry = self.location.entry_for_volume(volume_id)
                except ReproError:
                    continue
                if entry.replicas and name not in entry.replicas:
                    # Ship the authoritative version vector along so the
                    # dropper can count writes only its stale copy held.
                    vv: Dict[str, int] = {}
                    try:
                        pconn = yield from self.peer(entry.custodian)
                        reply, _ = yield from self.node.call(
                            pconn, "ReplicaStatus", {"volume_id": volume_id}
                        )
                        vv = reply["vv"]
                    except ReproError:
                        pass
                    try:
                        yield from self.node.call(
                            conn, "DropVolume",
                            {"volume_id": volume_id, "vv": vv},
                        )
                    except ReproError:
                        pass
        finally:
            self._rejoining.discard(name)
        if self.config.rereplicate:
            # The returned server is spare capacity: top factors back up.
            yield from self._rereplicate_all()

    def _broadcast_location(self) -> Generator:
        """Push the controller's location database to every live server."""
        snapshot = self.location.snapshot()
        for name in self.alive_servers():
            try:
                conn = yield from self.peer(name)
                yield from self.node.call(
                    conn, "SyncLocation", {"snapshot": snapshot}
                )
            except ReproError:
                continue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicationController servers={len(self.server_names)}"
            f" alive={len(self.alive_servers())} failovers={self.failovers}>"
        )
