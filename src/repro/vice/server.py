"""A Vice cluster server.

One :class:`ViceServer` per cluster (Fig. 2-2): it stores the volumes it is
custodian for (plus read-only replicas), answers the file protocol of
:mod:`repro.vice.fileserver`, and holds full replicas of the location and
protection databases.

``mode`` selects the paper's two implementations end to end:

====================  ============================  =========================
aspect                ``"prototype"``               ``"revised"``
====================  ============================  =========================
server structure      per-client Unix processes     single process with LWPs
transport             reliable byte stream          datagrams
path traversal        on the server, per call       on Venus, fid calls
status storage        `.admin` file on disk         in-memory vnode cache
cache validation      check-on-open (default)       callbacks (default)
dir rename, symlink   refused                       supported
lock service          dedicated lock process        shared lock table
====================  ============================  =========================

Administrative operations (volume move, read-only release, database sync)
are generators run as simulation processes; they use the same authenticated
RPC fabric as everything else, under the internal ``vice`` principal.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.errors import (
    FileNotFound,
    InvalidArgument,
    LeaseExpired,
    NotCustodian,
    ViceError,
)
from repro.hosts import Host
from repro.rpc import marshal
from repro.rpc.connection import Connection
from repro.rpc.costs import EncryptionMode, RpcCosts
from repro.rpc.node import RpcNode
from repro.sim.metrics import Counter
from repro.sim.resources import Resource
from repro.vice.callbacks import CallbackRegistry
from repro.vice.costs import ViceCosts
from repro.vice.fileserver import SERVICE_PRINCIPAL, FileService
from repro.vice.location import LocationDatabase, LocationEntry
from repro.vice.locks import LockTable
from repro.vice.protection import ProtectionDatabase
from repro.vice.volume import Volume

__all__ = ["ViceServer"]


class ViceServer:
    """One cluster server: storage, protocol, and replicated databases."""

    def __init__(
        self,
        host: Host,
        mode: str = "revised",
        validation_mode: Optional[str] = None,
        costs: Optional[ViceCosts] = None,
        rpc_costs: Optional[RpcCosts] = None,
        encryption: str = EncryptionMode.HARDWARE,
        service_key: bytes = b"\x00" * 32,
        max_server_processes: Optional[int] = None,
        functional_payload_crypto: bool = True,
        payload_fast_path: bool = True,
    ):
        if mode not in ("prototype", "revised"):
            raise InvalidArgument(f"unknown server mode {mode!r}")
        self.host = host
        self.sim = host.sim
        self.mode = mode
        self.validation_mode = validation_mode or (
            "check-on-open" if mode == "prototype" else "callback"
        )
        if self.validation_mode not in ("check-on-open", "callback"):
            raise InvalidArgument(f"unknown validation mode {self.validation_mode!r}")
        self.costs = costs or (
            ViceCosts.prototype() if mode == "prototype" else ViceCosts.revised()
        )
        self.service_key = service_key

        self.protection = ProtectionDatabase()
        self.location = LocationDatabase()
        self.volumes: Dict[str, Volume] = {}
        self.callbacks = CallbackRegistry()
        self.locks = LockTable()
        self.all_servers: List[str] = [host.name]
        self._lock_process = (
            Resource(self.sim, capacity=1, name=f"lockserver:{host.name}")
            if mode == "prototype"
            else None
        )

        self.node = RpcNode(
            host,
            costs=rpc_costs,
            transport="stream" if mode == "prototype" else "datagram",
            server_mode="process" if mode == "prototype" else "lwp",
            encryption=encryption,
            auth_key_lookup=self._lookup_key,
            max_server_processes=max_server_processes,
            functional_payload_crypto=functional_payload_crypto,
            payload_fast_path=payload_fast_path,
        )
        self.call_mix = Counter(f"vice-mix:{host.name}")
        # §3.6 monitoring hooks: where each volume's data traffic comes
        # from (for custodian-reassignment recommendations), and per-user
        # resource usage (tracked but not charged — "free resources" until
        # accounting is convincingly needed).
        self.volume_traffic = Counter(f"volume-traffic:{host.name}")
        self.usage_by_user = Counter(f"usage:{host.name}")
        self._peer_connections: Dict[str, Connection] = {}
        self._vnode_locks: Dict[str, Resource] = {}
        # Read-write replication agent (repro.vice.replication); attached
        # by ITCSystem only when SystemConfig.replication is set, so
        # unreplicated campuses carry no heartbeat traffic at all.
        self.replication = None

        self.files = FileService(self)
        self.files.register_all()
        self.node.register("SyncLocation", self._sync_location_handler)
        self.node.register("SyncProtection", self._sync_protection_handler)
        self.node.register("ReceiveVolume", self._receive_volume_handler)
        self.node.register("DropVolume", self._drop_volume_handler)

        # Registry instruments.  Closures read through self, so they follow
        # object replacement (reset_counters swaps the Counters, salvage
        # rebuilds the callback registry) without re-registration.
        metrics = self.sim.metrics
        prefix = f"vice.{host.name}"
        metrics.counter(f"{prefix}.call_mix", lambda: self.call_mix)
        metrics.counter(f"{prefix}.volume_traffic", lambda: self.volume_traffic)
        metrics.counter(f"{prefix}.usage_by_user", lambda: self.usage_by_user)
        metrics.gauge(f"{prefix}.callbacks.held", lambda: self.callbacks.state_size)
        metrics.counter(f"{prefix}.callbacks.broken",
                        lambda: self.callbacks.promises_broken)
        metrics.gauge(f"{prefix}.locks.held", lambda: len(self.locks))
        metrics.gauge(f"{prefix}.volumes", lambda: len(self.volumes))
        metrics.gauge(f"{prefix}.files", lambda: sum(
            volume.file_count for volume in self.volumes.values()))
        metrics.gauge(f"{prefix}.used_bytes", lambda: sum(
            volume.used_bytes for volume in self.volumes.values()))
        # Fast-path cache effectiveness (the campus-scale hot paths).
        metrics.counter(f"{prefix}.protection.cps_cache", lambda: {
            "hits": self.protection.cps_hits, "misses": self.protection.cps_misses})
        metrics.counter(f"{prefix}.location.resolve_cache", lambda: {
            "hits": self.location.resolve_hits, "misses": self.location.resolve_misses})

    # ------------------------------------------------------------------
    # authentication
    # ------------------------------------------------------------------

    def _lookup_key(self, username: str) -> bytes:
        if username == SERVICE_PRINCIPAL:
            return self.service_key
        return self.protection.user_key(username)

    # ------------------------------------------------------------------
    # volume lookup used by the file service
    # ------------------------------------------------------------------

    def volume_for_entry(self, entry: LocationEntry, want_write: bool) -> Volume:
        """This server's copy for a location entry, or a custodian referral."""
        if entry.custodian == self.host.name:
            volume = self.volumes.get(entry.volume_id)
            if volume is not None and volume.replica_role != "secondary":
                if want_write:
                    self._check_write_lease(volume)
                return volume
        if not want_write and self.host.name in entry.ro_servers:
            replica = self.volumes.get(entry.volume_id + "-ro")
            if replica is not None:
                return replica
        raise NotCustodian(entry.custodian)

    def volume_by_id(self, volume_id: str, want_write: bool) -> Volume:
        """Resolve a fid's volume component at this server."""
        volume = self.volumes.get(volume_id)
        if volume is not None:
            if volume.replica_role == "secondary":
                # A read-write secondary never serves clients directly;
                # refer them to the current primary.
                entry = self.location.entry_for_volume(volume_id)
                raise NotCustodian(entry.custodian)
            if want_write:
                self._check_write_lease(volume)
            return volume
        base = volume_id[:-3] if volume_id.endswith("-ro") else volume_id
        entry = self.location.entry_for_volume(base)
        raise NotCustodian(entry.custodian)

    def _check_write_lease(self, volume: Volume) -> None:
        """Fence writes at a primary whose controller lease has lapsed."""
        if (
            self.replication is not None
            and volume.replica_role == "primary"
            and not self.replication.lease_valid()
        ):
            raise LeaseExpired(
                f"{self.host.name} holds no write lease for {volume.volume_id}"
            )

    def replicate_mutation(self, volume: Volume, record: Dict, payload: bytes = b"") -> Generator:
        """Propagate one applied mutation to the volume's secondaries.

        A no-op (no yields, no cost) unless this server runs replication
        and the volume is a replicated primary, so unreplicated volumes
        take exactly the code path they always did.
        """
        if self.replication is None or volume.replica_role != "primary":
            return
        record = dict(record, vv=dict(volume.bump_version_vector(self.host.name)))
        yield from self.replication.propagate(volume, record, payload)

    def replicate_fragments(self, volume: Volume, record: Dict,
                            frags: List[bytes]) -> Generator:
        """Propagate one striped store, each member getting its fragment.

        The erasure analogue of :meth:`replicate_mutation` (the agent is
        a :class:`~repro.vice.erasure.ServerErasure` whenever a coded
        volume exists); same no-op guarantee for plain volumes.
        """
        if self.replication is None or volume.replica_role != "primary":
            return
        record = dict(record, vv=dict(volume.bump_version_vector(self.host.name)))
        yield from self.replication.propagate_fragments(volume, record, frags)

    # ------------------------------------------------------------------
    # local administration (pre-simulation setup)
    # ------------------------------------------------------------------

    def add_volume(self, volume: Volume) -> None:
        """Attach a volume to this server's storage."""
        self.volumes[volume.volume_id] = volume

    def vnode_guard(self, fid: str) -> Generator:
        """Serialise fetch/store on one file, like holding the vnode lock.

        This is what guarantees §3.6 action consistency: "a workstation
        which fetches a file at the same time that another workstation is
        storing it will either receive the old version or the new one, but
        never a partially modified version" — and, with callbacks, that a
        promise registered by a fetch cannot silently survive a concurrent
        store.  Usage: ``guard = yield from server.vnode_guard(fid)`` then
        ``server.vnode_release(fid, guard)`` in a ``finally``.
        """
        lock = self._vnode_locks.get(fid)
        if lock is None:
            lock = Resource(self.sim, capacity=1, name=f"vnode:{fid}")
            self._vnode_locks[fid] = lock
        request = lock.request()
        yield request
        return request

    def vnode_release(self, fid: str, request) -> None:
        """Release a :meth:`vnode_guard` claim (drops idle locks)."""
        lock = self._vnode_locks.get(fid)
        if lock is None:
            return
        lock.release(request)
        if lock.in_use == 0 and lock.queue_length == 0:
            del self._vnode_locks[fid]

    def lock_serialization(self) -> Generator:
        """Prototype lock calls serialise through the dedicated lock process."""
        if self._lock_process is None:
            return
        request = self._lock_process.request()
        yield request
        try:
            # Crossing into the lock server process and back: two switches.
            yield from self.host.compute(2 * self.node.costs.context_switch_cpu)
        finally:
            self._lock_process.release(request)

    # ------------------------------------------------------------------
    # server-to-server fabric
    # ------------------------------------------------------------------

    def peer(self, server_name: str) -> Generator[None, None, Connection]:
        """An authenticated connection to another server (cached)."""
        conn = self._peer_connections.get(server_name)
        if conn is not None and conn.established and not conn.closed:
            return conn
        conn = yield from self.node.connect(server_name, SERVICE_PRINCIPAL, self.service_key)
        self._peer_connections[server_name] = conn
        return conn

    def _require_service(self, conn: Connection) -> None:
        if conn.username != SERVICE_PRINCIPAL:
            raise ViceError("administrative call from a non-Vice principal")

    def _sync_location_handler(self, conn: Connection, args, payload):
        """Install a location-database snapshot pushed by a peer."""
        self._require_service(conn)
        yield from self.host.compute(0.005)
        if args["snapshot"]["version"] > self.location.version:
            self.location.load_snapshot(args["snapshot"])
        return {"version": self.location.version}, b""

    def _sync_protection_handler(self, conn: Connection, args, payload):
        """Install a protection-database snapshot pushed by a peer."""
        self._require_service(conn)
        yield from self.host.compute(0.005)
        if args["snapshot"]["version"] > self.protection.version:
            self.protection.load_snapshot(args["snapshot"])
        return {"version": self.protection.version}, b""

    def _receive_volume_handler(self, conn: Connection, args, payload):
        """Accept a volume shipped by a peer (move or replica placement)."""
        self._require_service(conn)
        snapshot = marshal.loads(payload)
        yield from self.host.compute(0.010 + len(payload) * self.costs.per_byte_cpu)
        yield from self.host.disk.access(len(payload), write=True, sequential=True)
        volume = Volume.from_snapshot(snapshot, clock=lambda: self.sim.now)
        role = args.get("role")
        if role is not None:
            existing = self.volumes.get(volume.volume_id)
            if existing is not None and self.replication is not None:
                # Count writes on the copy being overwritten that the
                # incoming authoritative copy never saw (a primary that
                # crashed mid-propagation): those writes are lost here.
                self.replication.divergent_discarded += existing.divergent_against(
                    volume.version_vector
                )
            volume.replica_role = role
        self.add_volume(volume)
        return {"volume_id": volume.volume_id}, b""

    def _drop_volume_handler(self, conn: Connection, args, payload):
        """Discard a local volume copy (the tail end of a move)."""
        self._require_service(conn)
        yield from self.host.compute(0.005)
        existing = self.volumes.pop(args["volume_id"], None)
        if (existing is not None and self.replication is not None
                and "vv" in args):
            # The caller supplied the authoritative copy's version vector:
            # writes only this stale copy ever held die with it.
            self.replication.divergent_discarded += existing.divergent_against(
                args["vv"] or {}
            )
        return {"ok": True}, b""

    # ------------------------------------------------------------------
    # distributed administration (run as simulation processes)
    # ------------------------------------------------------------------

    def broadcast_location(self) -> Generator:
        """Push this server's location database to every other server.

        "Changing the location database is relatively expensive because it
        involves updating all the cluster servers in the system."
        """
        snapshot = self.location.snapshot()
        for name in self.all_servers:
            if name == self.host.name:
                continue
            conn = yield from self.peer(name)
            yield from self.node.call(conn, "SyncLocation", {"snapshot": snapshot})

    def broadcast_protection(self) -> Generator:
        """Push this server's protection database to every other server."""
        snapshot = self.protection.snapshot()
        for name in self.all_servers:
            if name == self.host.name:
                continue
            conn = yield from self.peer(name)
            yield from self.node.call(conn, "SyncProtection", {"snapshot": snapshot})

    def move_volume(self, volume_id: str, target_server: str) -> Generator:
        """Relocate a volume to another server.

        The volume is offline for the duration — "the files whose custodians
        are being modified are unavailable during the change" — and the move
        ends with a campus-wide location-database update.
        """
        volume = self.volumes.get(volume_id)
        if volume is None:
            raise FileNotFound(f"volume {volume_id!r} not stored here")
        volume.take_offline()
        try:
            snapshot_bytes = marshal.dumps(volume.snapshot())
            yield from self.host.disk.access(len(snapshot_bytes), sequential=True)
            yield from self.host.compute(len(snapshot_bytes) * self.costs.per_byte_cpu)
            conn = yield from self.peer(target_server)
            yield from self.node.call(
                conn, "ReceiveVolume", {}, payload=snapshot_bytes,
                expect_bytes=len(snapshot_bytes),
            )
            del self.volumes[volume_id]
            self.location.reassign(volume_id, target_server)
            yield from self.broadcast_location()
        finally:
            volume.bring_online()
        # The shipped copy arrives online; remote Veni discover the new
        # custodian through NotCustodian referrals and location queries.

    def release_readonly(self, volume_id: str, replica_servers: List[str]) -> Generator:
        """Clone a volume and place read-only replicas (§3.2).

        The clone is atomic at the custodian; placement then ships the frozen
        snapshot to each replica site, and the location database gains the
        ``ro_servers`` list so Veni can fetch from the nearest copy.
        """
        volume = self.volumes.get(volume_id)
        if volume is None:
            raise FileNotFound(f"volume {volume_id!r} not stored here")
        clone = volume.clone(volume_id + "-ro")
        snapshot_bytes = marshal.dumps(clone.snapshot())
        for name in replica_servers:
            if name == self.host.name:
                self.add_volume(clone)
                continue
            yield from self.host.disk.access(len(snapshot_bytes), sequential=True)
            conn = yield from self.peer(name)
            yield from self.node.call(
                conn, "ReceiveVolume", {}, payload=snapshot_bytes,
                expect_bytes=len(snapshot_bytes),
            )
        self.location.set_ro_servers(volume_id, list(replica_servers))
        yield from self.broadcast_location()

    def salvage_all(self) -> Generator:
        """Post-crash recovery: salvage every volume before serving again.

        Run after ``host.recover()``; each volume goes offline, is checked
        and repaired, and comes back online.  Disk time is charged
        proportional to the data scanned.
        """
        reports = {}
        for volume_id, volume in sorted(self.volumes.items()):
            was_online = volume.online
            volume.take_offline()
            yield from self.host.disk.access(
                max(4096, volume.used_bytes), sequential=True
            )
            yield from self.host.compute(0.002 * max(1, len(volume._inodes)))
            reports[volume_id] = volume.salvage()
            if was_online:
                volume.bring_online()
        # Crash amnesia: every callback promise and lock died with us.
        self.callbacks = CallbackRegistry()
        self.locks = LockTable()
        return reports

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def note_volume_access(self, volume: Volume, conn: Connection, nbytes: int) -> None:
        """Record one data access for the monitoring tools (§3.6)."""
        interface = self.host.network.interfaces.get(conn.client_name)
        segment = interface.segment.name if interface is not None else "?"
        self.volume_traffic.add(f"{volume.volume_id}|{segment}")
        self.usage_by_user.add(conn.username, max(1, nbytes))

    def call_mix_shares(self) -> Dict[str, float]:
        """The EXP-1 histogram: shares of validate/status/fetch/store/other."""
        return self.call_mix.shares()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ViceServer {self.host.name} mode={self.mode}"
            f" volumes={len(self.volumes)} validation={self.validation_mode}>"
        )
