"""Volumes: the unit of storage administration in Vice.

Paper §5.3: "A volume is a complete subtree of files whose root may be
arbitrarily relocated in the Vice name space... Each volume may be taken
offline or online, moved between servers and salvaged after a system crash.
A volume may also be *cloned*, thereby creating a frozen, read-only replica
of that volume", with copy-on-write making cloning inexpensive.

Here a volume owns a private :class:`~repro.storage.unixfs.UnixFileSystem`
plus the Vice metadata the file server needs:

* a **vnode index** so fid-based operations are O(1),
* per-directory **access lists** (files inherit their directory's ACL —
  "all files within a directory have the same protection status"),
* **quota** accounting,
* online/offline state, and
* :meth:`clone`, which copies the inode *tree* but shares the file *data*
  (Python ``bytes`` are immutable, giving genuine copy-on-write cost).

The prototype predates volumes; in prototype mode the same class is used as
a plain custodian subtree with the volume-only operations disabled at the
server layer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    FileNotFound,
    InvalidArgument,
    QuotaExceeded,
    ReadOnlyFileSystem,
    VolumeOffline,
)
from repro.storage import pathutil
from repro.storage.unixfs import FileType, Inode, UnixFileSystem
from repro.vice.ids import make_fid
from repro.vice.protection import AccessList

__all__ = ["Volume"]


class Volume:
    """One administrable subtree of Vice files."""

    def __init__(
        self,
        volume_id: str,
        name: str,
        clock: Optional[Callable[[], float]] = None,
        quota_bytes: Optional[int] = None,
        read_only: bool = False,
        owner: str = "system:administrators",
    ):
        if "." in volume_id:
            raise InvalidArgument(f"volume id may not contain '.': {volume_id!r}")
        self.volume_id = volume_id
        self.name = name
        self.quota_bytes = quota_bytes
        self.read_only = read_only
        self.owner = owner
        self.online = True
        self.cloned_from: Optional[str] = None
        # Read-write replication (repro.vice.replication).  None on every
        # unreplicated volume; "primary" accepts client writes and
        # propagates them, "secondary" holds a copy and refers clients to
        # the custodian.  The version vector counts applied writes per
        # origin server; comparing vectors detects replica divergence
        # after a crash mid-propagation.
        self.replica_role: Optional[str] = None
        self.version_vector: Dict[str, int] = {}
        # Erasure coding (repro.vice.erasure).  None on every plain
        # volume.  A coded stripe member keeps the full metadata tree
        # with *empty* file data, plus its own fragment of every file
        # keyed by vnode; true lengths back the status size so clients
        # never see the (padded) fragment length.
        self.erasure_shape: Optional[Tuple[int, int]] = None
        self.erasure_index: Optional[int] = None
        self.fragments: Dict[int, bytes] = {}
        self.fragment_true_sizes: Dict[int, int] = {}
        self.fragment_bytes = 0
        self.logical_bytes = 0
        self.fs = UnixFileSystem(clock, name=f"vol:{volume_id}")
        self.used_bytes = 0
        self._inodes: Dict[int, Inode] = {self.fs.root.number: self.fs.root}
        self._parents: Dict[int, int] = {}
        self.acls: Dict[int, AccessList] = {self.fs.root.number: self._default_acl(owner)}

    @staticmethod
    def _default_acl(owner: str) -> AccessList:
        acl = AccessList()
        acl.grant(owner, "rwidlak")
        acl.grant("system:anyuser", "rl")
        return acl

    # -- state guards --------------------------------------------------------

    def _check_online(self) -> None:
        if not self.online:
            raise VolumeOffline(f"volume {self.volume_id} is offline")

    def _check_writable(self) -> None:
        self._check_online()
        if self.read_only:
            raise ReadOnlyFileSystem(f"volume {self.volume_id} is read-only")

    def _check_quota(self, delta: int) -> None:
        if delta > 0 and self.quota_bytes is not None:
            if self.used_bytes + delta > self.quota_bytes:
                raise QuotaExceeded(
                    f"volume {self.volume_id}: {self.used_bytes}+{delta} exceeds"
                    f" quota {self.quota_bytes}"
                )

    # -- lookup ---------------------------------------------------------------

    def resolve(self, path: str, follow: bool = True) -> Inode:
        """Resolve a volume-relative path to its inode."""
        self._check_online()
        return self.fs.resolve(path, follow=follow)

    def inode_by_vnode(self, vnode: int) -> Inode:
        """O(1) fid resolution via the vnode index."""
        self._check_online()
        try:
            return self._inodes[vnode]
        except KeyError:
            raise FileNotFound(f"fid {make_fid(self.volume_id, vnode)}")

    def parent_of(self, vnode: int) -> Inode:
        """The directory containing the given vnode (root is its own parent)."""
        if vnode == self.fs.root.number:
            return self.fs.root
        try:
            return self._inodes[self._parents[vnode]]
        except KeyError:
            raise FileNotFound(f"parent of vnode {vnode}")

    def path_of(self, vnode: int) -> str:
        """Volume-relative path of a vnode (walks the parent chain)."""
        if vnode == self.fs.root.number:
            return "/"
        parts: List[str] = []
        current = vnode
        while current != self.fs.root.number:
            parent = self.parent_of(current)
            name = next(
                (n for n, node in parent.entries.items() if node.number == current), None
            )
            if name is None:
                raise FileNotFound(f"vnode {current} is orphaned")
            parts.append(name)
            current = parent.number
        return "/" + "/".join(reversed(parts))

    def fid_of(self, path: str) -> str:
        """The fid of the object at a volume-relative path."""
        return make_fid(self.volume_id, self.resolve(path).number)

    def acl_for(self, inode: Inode) -> AccessList:
        """The governing ACL: the directory's own, or the parent's for files."""
        if inode.file_type == FileType.DIRECTORY:
            return self.acls[inode.number]
        return self.acls[self._parents.get(inode.number, self.fs.root.number)]

    # -- mutation (keeps index, quota and ACLs coherent) -----------------------

    def create_file(self, path: str, data: bytes = b"", owner: str = "root") -> Inode:
        """Create a file with ``data``."""
        self._check_writable()
        self._check_quota(len(data))
        parent = self.fs.resolve(pathutil.dirname(path))
        node = self.fs.create(path, data, owner=owner)
        self._register(node, parent)
        self.used_bytes += len(data)
        return node

    def mkdir(self, path: str, owner: str = "root") -> Inode:
        """Create a directory; its ACL starts as a copy of its parent's."""
        self._check_writable()
        parent = self.fs.resolve(pathutil.dirname(path))
        node = self.fs.mkdir(path, owner=owner)
        self._register(node, parent)
        self.acls[node.number] = self.acls[parent.number].copy()
        return node

    def symlink(self, path: str, target: str, owner: str = "root") -> Inode:
        """Create a symbolic link (revised design only; guarded by the server)."""
        self._check_writable()
        parent = self.fs.resolve(pathutil.dirname(path))
        node = self.fs.symlink(path, target, owner=owner)
        self._register(node, parent)
        return node

    def write(self, path: str, data: bytes, owner: str = "root") -> Inode:
        """Whole-file store: replace contents (creating if absent)."""
        self._check_writable()
        try:
            existing = self.fs.resolve(path)
            delta = len(data) - len(existing.data)
        except FileNotFound:
            existing = None
            delta = len(data)
        self._check_quota(delta)
        if existing is None:
            return self.create_file(path, data, owner=owner)
        node = self.fs.write(path, data)
        self.used_bytes += delta
        return node

    def write_vnode(self, vnode: int, data: bytes) -> Inode:
        """Whole-file store addressed by fid."""
        self._check_writable()
        node = self.inode_by_vnode(vnode)
        delta = len(data) - len(node.data)
        self._check_quota(delta)
        node.data = bytes(data)
        node.version += 1
        node.mtime = self.fs._clock()
        self.used_bytes += delta
        return node

    def read(self, path: str) -> bytes:
        """Whole-file fetch."""
        self._check_online()
        return self.fs.read(path)

    def unlink(self, path: str) -> None:
        """Remove a file or symlink."""
        self._check_writable()
        node = self.fs.resolve(path, follow=False)
        self.fs.unlink(path)
        self._forget(node)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        self._check_writable()
        node = self.fs.resolve(path, follow=False)
        self.fs.rmdir(path)
        self._forget(node)
        self.acls.pop(node.number, None)

    def rename(self, old: str, new: str) -> None:
        """Rename within the volume; fids are invariant across this."""
        self._check_writable()
        node = self.fs.resolve(old, follow=False)
        target_replaced = None
        if self.fs.exists(new, follow=False):
            target_replaced = self.fs.resolve(new, follow=False)
        self.fs.rename(old, new)
        if target_replaced is not None and target_replaced.number != node.number:
            self._forget(target_replaced)
        new_parent = self.fs.resolve(pathutil.dirname(new))
        self._parents[node.number] = new_parent.number

    # -- erasure coding (repro.vice.erasure) --------------------------------------

    def set_fragment(self, vnode: int, frag: bytes, true_len: int) -> None:
        """Install this member's fragment of a striped file."""
        self.fragment_bytes += len(frag) - len(self.fragments.get(vnode, b""))
        self.logical_bytes += true_len - self.fragment_true_sizes.get(vnode, 0)
        self.fragments[vnode] = bytes(frag)
        self.fragment_true_sizes[vnode] = true_len

    def drop_fragment(self, vnode: int) -> None:
        """Forget the fragment of a deleted (or renumbered-away) file."""
        frag = self.fragments.pop(vnode, None)
        if frag is not None:
            self.fragment_bytes -= len(frag)
        self.logical_bytes -= self.fragment_true_sizes.pop(vnode, 0)

    def size_of(self, inode: Inode) -> int:
        """The logical size clients should see (fragments hide the data)."""
        if self.erasure_shape is not None:
            size = self.fragment_true_sizes.get(inode.number)
            if size is not None:
                return size
        return inode.size

    # -- read-write replication (repro.vice.replication) -------------------------

    def bump_version_vector(self, origin: str) -> Dict[str, int]:
        """Count one applied write from ``origin``; returns the new vector."""
        self.version_vector[origin] = self.version_vector.get(origin, 0) + 1
        return self.version_vector

    def divergent_against(self, incoming: Dict[str, int]) -> int:
        """Writes this copy holds that the ``incoming`` vector does not.

        A positive count means this replica applied writes the (authoritative)
        sender never saw — the crash-mid-propagation signature.  Those writes
        are discarded when the authoritative snapshot replaces this copy.
        """
        return sum(
            max(0, count - incoming.get(origin, 0))
            for origin, count in self.version_vector.items()
        )

    def apply_replica_op(self, record: Dict, payload: bytes = b"") -> None:
        """Apply one mutation shipped by the primary (secondary side).

        The record carries the primary's post-apply state: the path, the
        assigned vnode number and version (fids must resolve identically at
        every replica so Venus caches survive a failover), and the
        primary's version vector, which this copy adopts wholesale — the
        propagation stream is the serialisation order.
        """
        op = record["op"]
        owner = record.get("owner", self.owner)
        if op == "write":
            frag = record.get("frag")
            node = self.write(
                record["path"], b"" if frag is not None else payload, owner=owner
            )
            self._renumber(node, record["vnode"])
            node.version = record["version"]
            if frag is not None:
                # A striped store: the payload is this member's fragment,
                # not file data; the true length rides in the record.
                self.set_fragment(node.number, payload, frag["len"])
        elif op == "mkdir":
            node = self.mkdir(record["path"], owner=owner)
            self._renumber(node, record["vnode"])
        elif op == "symlink":
            node = self.symlink(record["path"], record["target"], owner=owner)
            self._renumber(node, record["vnode"])
        elif op == "unlink":
            self.unlink(record["path"])
        elif op == "rmdir":
            self.rmdir(record["path"])
        elif op == "rename":
            self.rename(record["old"], record["new"])
        elif op == "set_acl":
            inode = self.resolve(record["path"])
            self.acls[inode.number] = AccessList.from_dict(record["acl"])
        else:
            raise InvalidArgument(f"unknown replica op {op!r}")
        self.version_vector = dict(record.get("vv") or {})

    def _renumber(self, node: Inode, vnode: int) -> None:
        """Force a freshly created inode onto the primary's vnode number."""
        old = node.number
        if old == vnode:
            return
        if vnode in self._inodes:
            raise InvalidArgument(
                f"vnode {vnode} already in use in {self.volume_id}"
            )
        self._inodes.pop(old, None)
        self._inodes[vnode] = node
        parent = self._parents.pop(old, None)
        if parent is not None:
            self._parents[vnode] = parent
        for child, par in list(self._parents.items()):
            if par == old:
                self._parents[child] = vnode
        acl = self.acls.pop(old, None)
        if acl is not None:
            self.acls[vnode] = acl
        frag = self.fragments.pop(old, None)
        if frag is not None:
            self.fragments[vnode] = frag
            self.fragment_true_sizes[vnode] = self.fragment_true_sizes.pop(old)
        node.number = vnode
        if vnode > old:
            # Keep this copy's allocator clear of adopted numbers.
            while next(self.fs._inode_numbers) < vnode + 1:
                pass

    def _register(self, node: Inode, parent: Inode) -> None:
        self._inodes[node.number] = node
        self._parents[node.number] = parent.number

    def _forget(self, node: Inode) -> None:
        if node.file_type == FileType.FILE:
            self.used_bytes -= len(node.data)
            self.drop_fragment(node.number)
        for name, child in list(node.entries.items()):
            self._forget(child)
        self._inodes.pop(node.number, None)
        self._parents.pop(node.number, None)
        self.acls.pop(node.number, None)

    # -- administration ----------------------------------------------------------

    def take_offline(self) -> None:
        """Make the volume unavailable (move, salvage)."""
        self.online = False

    def bring_online(self) -> None:
        """Restore availability."""
        self.online = True

    def clone(self, clone_id: str, name: Optional[str] = None) -> "Volume":
        """A frozen read-only replica sharing file data copy-on-write.

        "The creation of a read-only subtree is an atomic operation, thus
        providing a convenient mechanism to support the orderly release of
        new system software."  Inode numbers are preserved so fids translate
        between a volume and its clones by swapping the volume id.
        """
        self._check_online()
        if self.erasure_shape is not None:
            raise InvalidArgument(
                "read-only release is unsupported for erasure-coded volumes"
            )
        replica = Volume(
            clone_id,
            name or f"{self.name}.readonly",
            clock=self.fs._clock,
            read_only=True,
            owner=self.owner,
        )
        replica.cloned_from = self.volume_id
        replica.fs = UnixFileSystem(self.fs._clock, name=f"vol:{clone_id}")
        replica.fs.root = self._copy_inode(self.fs.root)
        replica._inodes = {}
        replica._parents = {}
        replica.acls = {}
        replica._index_tree(replica.fs.root, parent=None)
        for ino, acl in self.acls.items():
            replica.acls[ino] = acl.copy()
        replica.used_bytes = self.used_bytes
        replica.online = True
        return replica

    def _copy_inode(self, node: Inode) -> Inode:
        copy = Inode(node.number, node.file_type, node.owner, node.mtime)
        copy.data = node.data  # shared bytes: the copy-on-write part
        copy.target = node.target
        copy.version = node.version
        copy.mode_bits = node.mode_bits
        for name, child in node.entries.items():
            copy.entries[name] = self._copy_inode(child)
        return copy

    def _index_tree(self, node: Inode, parent: Optional[Inode]) -> None:
        self._inodes[node.number] = node
        if parent is not None:
            self._parents[node.number] = parent.number
        for child in node.entries.values():
            self._index_tree(child, node)

    def salvage(self) -> Dict[str, int]:
        """Consistency-check and repair after a server crash (§5.3).

        "Each volume may be turned offline or online, moved between servers
        and *salvaged after a system crash*."  The salvager walks the tree
        and rebuilds everything derivable: the vnode index, the parent map,
        the byte accounting, and missing directory ACLs (re-inherited from
        the parent).  Returns a report of what it fixed; a clean volume
        reports all zeros.  The volume must be offline.
        """
        if self.online:
            raise InvalidArgument("salvage requires the volume to be offline")
        report = {
            "dangling_index_entries": 0,
            "missing_index_entries": 0,
            "wrong_parent_links": 0,
            "byte_accounting_drift": 0,
            "missing_acls": 0,
        }
        reachable: Dict[int, Inode] = {}
        parents: Dict[int, int] = {}
        acls: Dict[int, AccessList] = {}
        used = 0

        def walk(node: Inode, parent: Optional[Inode]) -> None:
            nonlocal used
            reachable[node.number] = node
            if parent is not None:
                parents[node.number] = parent.number
            if node.file_type == FileType.FILE:
                used += len(node.data)
            if node.file_type == FileType.DIRECTORY:
                acl = self.acls.get(node.number)
                if acl is None:
                    report["missing_acls"] += 1
                    parent_acl = acls.get(parents.get(node.number, -1))
                    acl = parent_acl.copy() if parent_acl else self._default_acl(self.owner)
                acls[node.number] = acl
                for child in node.entries.values():
                    walk(child, node)

        walk(self.fs.root, None)
        report["dangling_index_entries"] = len(set(self._inodes) - set(reachable))
        report["missing_index_entries"] = len(set(reachable) - set(self._inodes))
        report["wrong_parent_links"] = sum(
            1 for ino, parent in parents.items() if self._parents.get(ino) != parent
        )
        if self.used_bytes != used:
            report["byte_accounting_drift"] = abs(self.used_bytes - used)
        self._inodes = reachable
        self._parents = parents
        self.acls = acls
        self.used_bytes = used
        if self.erasure_shape is not None:
            files = {
                num for num, node in reachable.items()
                if node.file_type == FileType.FILE
            }
            orphans = [v for v in self.fragments if v not in files]
            for vnode in orphans:
                self.drop_fragment(vnode)
            report["orphan_fragments"] = len(orphans)
        return report

    # -- serialisation (volume moves between servers) ----------------------------

    def snapshot(self) -> Dict:
        """A marshal-friendly full copy, preserving vnode numbers.

        Used to ship a volume to another server during a move; fids stay
        valid because vnode numbers survive the round trip.
        """
        nodes = []
        for path, inode in self.fs.walk("/"):
            record = {
                "path": path,
                "vnode": inode.number,
                "type": inode.file_type,
                "data": inode.data if inode.file_type == FileType.FILE else b"",
                "target": inode.target,
                "version": inode.version,
                "mtime": inode.mtime,
                "owner": inode.owner,
                "mode": inode.mode_bits,
                "acl": (
                    self.acls[inode.number].as_dict()
                    if inode.file_type == FileType.DIRECTORY
                    else None
                ),
            }
            nodes.append(record)
        snap = {
            "volume_id": self.volume_id,
            "name": self.name,
            "quota_bytes": self.quota_bytes,
            "read_only": self.read_only,
            "owner": self.owner,
            "cloned_from": self.cloned_from,
            "nodes": nodes,
        }
        # Replication metadata ships only for replicated volumes so the
        # wire form (and its byte-derived costs) of plain volume moves is
        # unchanged.
        if self.replica_role is not None or self.version_vector:
            snap["replica_role"] = self.replica_role
            snap["version_vector"] = dict(self.version_vector)
        # Likewise erasure metadata: only coded stripe members ship their
        # shape, slot index and fragment set (marshal needs string keys).
        if self.erasure_shape is not None:
            snap["erasure_shape"] = list(self.erasure_shape)
            snap["erasure_index"] = self.erasure_index
            snap["fragments"] = {
                str(v): f for v, f in sorted(self.fragments.items())
            }
            snap["fragment_sizes"] = {
                str(v): n for v, n in sorted(self.fragment_true_sizes.items())
            }
        return snap

    @classmethod
    def from_snapshot(cls, snapshot: Dict, clock: Optional[Callable[[], float]] = None) -> "Volume":
        """Reconstruct a volume shipped by :meth:`snapshot`."""
        volume = cls(
            snapshot["volume_id"],
            snapshot["name"],
            clock=clock,
            quota_bytes=snapshot.get("quota_bytes"),
            read_only=snapshot.get("read_only", False),
            owner=snapshot.get("owner", "system:administrators"),
        )
        volume.cloned_from = snapshot.get("cloned_from")
        volume.replica_role = snapshot.get("replica_role")
        volume.version_vector = dict(snapshot.get("version_vector") or {})
        volume._inodes = {}
        volume._parents = {}
        volume.acls = {}
        by_path: Dict[str, Inode] = {}
        max_vnode = 1
        for record in snapshot["nodes"]:
            node = Inode(record["vnode"], record["type"], record["owner"], record["mtime"])
            node.data = bytes(record["data"])
            node.target = record["target"]
            node.version = record["version"]
            node.mode_bits = record["mode"]
            by_path[record["path"]] = node
            max_vnode = max(max_vnode, node.number)
            if record["path"] == "/":
                volume.fs.root = node
            else:
                parent = by_path[pathutil.dirname(record["path"])]
                parent.entries[pathutil.basename(record["path"])] = node
                volume._parents[node.number] = parent.number
            volume._inodes[node.number] = node
            if record["acl"] is not None:
                volume.acls[node.number] = AccessList.from_dict(record["acl"])
            if node.file_type == FileType.FILE:
                volume.used_bytes += len(node.data)
        shape = snapshot.get("erasure_shape")
        if shape is not None:
            volume.erasure_shape = (shape[0], shape[1])
            volume.erasure_index = snapshot.get("erasure_index")
            sizes = snapshot.get("fragment_sizes") or {}
            for key, frag in (snapshot.get("fragments") or {}).items():
                volume.set_fragment(int(key), bytes(frag), int(sizes.get(key, 0)))
        # Keep future inode numbers clear of the shipped ones.
        while next(volume.fs._inode_numbers) < max_vnode + 1:
            pass
        return volume

    @property
    def snapshot_bytes(self) -> int:
        """Approximate wire size of a snapshot (for move-cost charging)."""
        return self.used_bytes + self.fragment_bytes + 256 * len(self._inodes)

    @property
    def file_count(self) -> int:
        """Number of regular files in the volume."""
        return sum(1 for n in self._inodes.values() if n.file_type == FileType.FILE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "ro" if self.read_only else "rw"
        state = "online" if self.online else "OFFLINE"
        return f"<Volume {self.volume_id} ({self.name}) {flags} {state} files={self.file_count}>"
