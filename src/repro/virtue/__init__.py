"""Virtue: the untrusted workstation — name space, syscalls, sessions."""

from repro.virtue.namespace import VICE_MOUNT, Namespace
from repro.virtue.session import UserSession
from repro.virtue.surrogate import PersonalComputer, SurrogateServer
from repro.virtue.workstation import OpenFile, Workstation

__all__ = [
    "Namespace",
    "OpenFile",
    "PersonalComputer",
    "SurrogateServer",
    "UserSession",
    "VICE_MOUNT",
    "Workstation",
]
