"""The workstation's two-part name space (paper Fig. 3-1 / 3-2).

"From the point of view of each workstation, the space of file names is
partitioned into a Local name space and a Shared name space."  The shared
space is mounted at ``/vice``; local names like ``/bin`` may be symbolic
links into it (``/bin -> /vice/unix/sun/bin``), which is how heterogeneous
workstation types see the right binaries under the same local names.

:class:`Namespace` classifies any workstation path as local or shared,
expanding local symbolic links — including the ones that escape into
``/vice`` — exactly once per component, with loop detection.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import FileNotFound, NotADirectory, TooManySymlinks
from repro.storage import pathutil
from repro.storage.unixfs import FileType, UnixFileSystem

__all__ = ["Namespace", "VICE_MOUNT"]

VICE_MOUNT = "/vice"
_MAX_HOPS = 16


class Namespace:
    """Routes workstation paths to the local root FS or the Vice mount."""

    def __init__(self, local_fs: UnixFileSystem, mount: str = VICE_MOUNT):
        self.local_fs = local_fs
        self.mount = pathutil.normalize(mount)

    def is_shared(self, path: str) -> bool:
        """True when the (already expanded) path lies under the mount."""
        path = pathutil.normalize(path)
        return path == self.mount or path.startswith(self.mount + "/")

    def to_vice(self, path: str) -> str:
        """Strip the mount prefix: workstation path -> Vice path."""
        path = pathutil.normalize(path)
        vice_path = path[len(self.mount):]
        return vice_path or "/"

    def to_workstation(self, vice_path: str) -> str:
        """Prefix a Vice path with the mount: Vice path -> workstation path."""
        vice_path = pathutil.normalize(vice_path)
        if vice_path == "/":
            return self.mount
        return self.mount + vice_path

    def classify(self, path: str) -> Tuple[str, str]:
        """Resolve ``path`` to ``("vice", vice_path)`` or ``("local", path)``.

        Local symbolic links are expanded; a link whose expansion lands under
        the mount reroutes the remainder of the walk into the shared space.
        A missing *final* component stays classifiable (needed for creation).
        """
        path = pathutil.normalize(path)
        for _hop in range(_MAX_HOPS):
            if self.is_shared(path):
                return "vice", self.to_vice(path)
            redirected = self._expand_one_link(path)
            if redirected is None:
                return "local", path
            path = redirected
        raise TooManySymlinks(path)

    def _expand_one_link(self, path: str):
        """The path with its first symlink expanded, or None if link-free."""
        node = self.local_fs.root
        parts = pathutil.components(path)
        walked = "/"
        for index, part in enumerate(parts):
            if node.file_type != FileType.DIRECTORY:
                raise NotADirectory(walked)
            child = node.entries.get(part)
            is_last = index == len(parts) - 1
            if child is None:
                if is_last:
                    return None  # creatable: parent exists, leaf does not
                raise FileNotFound(path)
            walked = pathutil.join(walked, part)
            if child.file_type == FileType.SYMLINK:
                target = child.target
                if not pathutil.is_abs(target):
                    target = pathutil.join(pathutil.dirname(walked), target)
                rest = "/".join(parts[index + 1:])
                combined = pathutil.join(target, rest) if rest else target
                return pathutil.normalize(combined)
            node = child
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Namespace mount={self.mount}>"
