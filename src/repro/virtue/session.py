"""User sessions: a user's view of the system from one workstation.

The paper's mobility story — "if a user places all his files in the shared
name space, he can move to any other workstation attached to Vice and use
it exactly as he would use his own workstation" — is just: make a
:class:`UserSession` at a different workstation and carry on.  The session
binds the username so application-style code reads naturally.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.virtue.workstation import Workstation

__all__ = ["UserSession"]


class UserSession:
    """A logged-in user at one workstation; thin sugar over its syscalls."""

    def __init__(self, workstation: Workstation, username: str, password: Optional[str] = None):
        self.workstation = workstation
        self.username = username
        if password is not None:
            workstation.login(username, password)

    def login(self, password: str) -> None:
        """(Re-)authenticate at this workstation."""
        self.workstation.login(self.username, password)

    def logout(self) -> None:
        """End the session."""
        self.workstation.logout(self.username)

    def move_to(self, workstation: Workstation, password: str) -> "UserSession":
        """User mobility: walk to another workstation and log in there."""
        self.logout()
        return UserSession(workstation, self.username, password)

    # -- bound syscalls (all generators) ------------------------------------

    def open(self, path: str, mode: str = "r") -> Generator[Any, Any, int]:
        return (yield from self.workstation.open(self.username, path, mode))

    def read(self, fd: int, size: Optional[int] = None) -> Generator[Any, Any, bytes]:
        return (yield from self.workstation.read(fd, size))

    def write(self, fd: int, data: bytes) -> Generator[Any, Any, int]:
        return (yield from self.workstation.write(fd, data))

    def close(self, fd: int) -> Generator:
        return (yield from self.workstation.close(fd))

    def read_file(self, path: str) -> Generator[Any, Any, bytes]:
        return (yield from self.workstation.read_file(self.username, path))

    def write_file(self, path: str, data: bytes) -> Generator:
        return (yield from self.workstation.write_file(self.username, path, data))

    def append_file(self, path: str, data: bytes) -> Generator:
        return (yield from self.workstation.append_file(self.username, path, data))

    def stat(self, path: str) -> Generator[Any, Any, Dict]:
        return (yield from self.workstation.stat(self.username, path))

    def exists(self, path: str) -> Generator[Any, Any, bool]:
        return (yield from self.workstation.exists(self.username, path))

    def listdir(self, path: str) -> Generator[Any, Any, List[str]]:
        return (yield from self.workstation.listdir(self.username, path))

    def mkdir(self, path: str) -> Generator:
        return (yield from self.workstation.mkdir(self.username, path))

    def unlink(self, path: str) -> Generator:
        return (yield from self.workstation.unlink(self.username, path))

    def rmdir(self, path: str) -> Generator:
        return (yield from self.workstation.rmdir(self.username, path))

    def rename(self, old: str, new: str) -> Generator:
        return (yield from self.workstation.rename(self.username, old, new))

    def symlink(self, path: str, target: str) -> Generator:
        return (yield from self.workstation.symlink(self.username, path, target))

    def get_acl(self, path: str) -> Generator:
        return (yield from self.workstation.get_acl(self.username, path))

    def set_acl(self, path: str, acl_record: Dict) -> Generator:
        return (yield from self.workstation.set_acl(self.username, path, acl_record))

    def set_lock(self, path: str, exclusive: bool = False) -> Generator:
        return (yield from self.workstation.set_lock(self.username, path, exclusive))

    def release_lock(self, path: str) -> Generator:
        return (yield from self.workstation.release_lock(self.username, path))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UserSession {self.username}@{self.workstation.name}>"
