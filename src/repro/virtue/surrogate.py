"""The surrogate server: Vice access for low-function workstations (§3.3).

"An approach we are exploring is to provide a Surrogate Server running on a
Virtue workstation.  This surrogate would behave as a single-site network
file server for the Virtue file system.  Clients of this server would then
be transparently accessing Vice files on account of a Virtue workstation's
transparent Vice attachment...  it could run on a machine with hardware
interfaces to both the campus-wide LAN and a network to which the
low-function workstations could be cheaply attached.  Work is currently in
progress to build such a surrogate server for IBM PCs."

Here the cheap secondary network is an isolated slow LAN segment; the
surrogate machine is dual-homed ("hardware interfaces to both the
campus-wide LAN and a network to which the low-function workstations could
be cheaply attached"), so PC frames never touch the campus Ethernet.  A
:class:`PersonalComputer` speaks a deliberately simple file protocol —
whole-file read/write, stat, list — and the surrogate executes each request
through its own Workstation syscall surface, so the PC transparently sees
Virtue's whole name space, cache included.

Security caveat, faithful to the era: a PC "cannot be called upon to play
any trusted role", and it also lacks the resources for the full encryption
handshake, so the PC's user must *register* their derived key with the
surrogate (the surrogate is trusted by its PC clients, unlike Vice, which
trusts neither).  The surrogate then authenticates to Vice properly on the
user's behalf.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.crypto.keys import derive_user_key
from repro.errors import NotAuthenticated
from repro.hosts import Host
from repro.rpc.connection import Connection
from repro.rpc.costs import EncryptionMode, RpcCosts
from repro.rpc.node import RpcNode
from repro.virtue.workstation import Workstation

__all__ = ["PersonalComputer", "SurrogateServer"]

# The cheap attachment network: sub-Ethernet speeds were typical.
PC_NET_BANDWIDTH = 1_000_000.0  # 1 Mb/s


class _SecondPort:
    """The surrogate machine's second network interface.

    Shares the machine's CPU and disk with the Workstation's primary
    :class:`~repro.hosts.Host` but attaches, under its own node name, to
    the cheap PC segment — the dual-homed hardware of §3.3.
    """

    def __init__(self, host: Host, name: str, segment: str):
        self._host = host
        self.sim = host.sim
        self.network = host.network
        self.name = name
        self.nic = host.network.attach(name, segment)
        self.cpu = host.cpu
        self.disk = host.disk

    @property
    def up(self) -> bool:
        return self._host.up

    def compute(self, reference_seconds: float):
        return self._host.compute(reference_seconds)


class SurrogateServer:
    """A single-site file server re-exporting one Workstation's file system."""

    def __init__(self, workstation: Workstation, pc_segment: str):
        self.workstation = workstation
        self.host = workstation.host
        network = self.host.network
        if pc_segment not in network.segments:
            # Deliberately NOT bridged: PCs cannot reach the campus LAN.
            network.add_segment(pc_segment, bandwidth_bps=PC_NET_BANDWIDTH)
        self.pc_segment = pc_segment
        self.port_name = f"{self.host.name}:pc"
        self._pc_keys: Dict[str, bytes] = {}
        self.requests_served = 0

        port = _SecondPort(self.host, self.port_name, pc_segment)
        self.node = RpcNode(
            port,
            costs=RpcCosts(),
            encryption=EncryptionMode.NONE,  # PCs lack crypto hardware
            auth_key_lookup=self._lookup_pc_key,
            functional_payload_crypto=False,
        )
        self.node.register("SgRead", self._read)
        self.node.register("SgWrite", self._write)
        self.node.register("SgStat", self._stat)
        self.node.register("SgList", self._list)
        self.node.register("SgMkdir", self._mkdir)
        self.node.register("SgRemove", self._remove)
        self.node.register("SgRename", self._rename)

    # -- registration --------------------------------------------------------

    def register_pc_user(self, username: str, password: str) -> bytes:
        """Enroll a PC user: the surrogate holds their key and logs them
        into its Venus, so it can reach Vice on their behalf."""
        key = derive_user_key(username, password)
        self._pc_keys[username] = key
        self.workstation.login(username, key)
        return key

    def _lookup_pc_key(self, username: str) -> bytes:
        try:
            return self._pc_keys[username]
        except KeyError:
            raise NotAuthenticated(f"PC user {username} not enrolled at this surrogate")

    # -- protocol handlers -----------------------------------------------------

    def _serve_cost(self) -> Generator:
        self.requests_served += 1
        yield from self.host.compute(0.004)  # request parsing + mapping

    def _read(self, conn: Connection, args: Dict, payload: bytes):
        yield from self._serve_cost()
        data = yield from self.workstation.read_file(conn.username, args["path"])
        return {"size": len(data)}, data

    def _write(self, conn: Connection, args: Dict, payload: bytes):
        yield from self._serve_cost()
        yield from self.workstation.write_file(conn.username, args["path"], payload)
        return {"size": len(payload)}, b""

    def _stat(self, conn: Connection, args: Dict, payload: bytes):
        yield from self._serve_cost()
        status = yield from self.workstation.stat(conn.username, args["path"])
        return status, b""

    def _list(self, conn: Connection, args: Dict, payload: bytes):
        yield from self._serve_cost()
        names = yield from self.workstation.listdir(conn.username, args["path"])
        return {"names": names}, b""

    def _mkdir(self, conn: Connection, args: Dict, payload: bytes):
        yield from self._serve_cost()
        yield from self.workstation.mkdir(conn.username, args["path"])
        return {"ok": True}, b""

    def _remove(self, conn: Connection, args: Dict, payload: bytes):
        yield from self._serve_cost()
        yield from self.workstation.unlink(conn.username, args["path"])
        return {"ok": True}, b""

    def _rename(self, conn: Connection, args: Dict, payload: bytes):
        yield from self._serve_cost()
        yield from self.workstation.rename(conn.username, args["old"], args["new"])
        return {"ok": True}, b""


class PersonalComputer:
    """A low-function client (IBM PC class) on the cheap attachment network.

    Minimal hardware, minimal software: a slow CPU, no local cache worth
    speaking of, and a dead-simple whole-file protocol to its surrogate.
    """

    def __init__(self, surrogate: SurrogateServer, name: str, cpu_speed: float = 0.25):
        self.surrogate = surrogate
        network = surrogate.host.network
        self.host = Host(
            surrogate.host.sim, network, name, surrogate.pc_segment, cpu_speed=cpu_speed
        )
        # PCs lack encryption hardware; the cheap net runs in the clear
        # (which is precisely why the surrogate, not the PC, talks to Vice).
        self.node = RpcNode(
            self.host,
            costs=RpcCosts(),
            encryption=EncryptionMode.NONE,
            functional_payload_crypto=False,
        )
        self._connection: Connection = None
        self.username: str = ""

    def attach(self, username: str, password: str) -> Generator[Any, Any, None]:
        """Enroll with the surrogate and open the (cleartext) session."""
        key = self.surrogate.register_pc_user(username, password)
        self.username = username
        self._connection = yield from self.node.connect(
            self.surrogate.port_name, username, key
        )

    def _call(self, procedure: str, args: Dict, payload: bytes = b"", expect: int = 0):
        if self._connection is None:
            raise NotAuthenticated(f"{self.host.name} has not attached to a surrogate")
        return (yield from self.node.call(
            self._connection, procedure, args, payload=payload, expect_bytes=expect
        ))

    def read_file(self, path: str) -> Generator[Any, Any, bytes]:
        """Whole-file read through the surrogate."""
        _result, data = yield from self._call("SgRead", {"path": path}, expect=65536)
        return data

    def write_file(self, path: str, data: bytes) -> Generator:
        """Whole-file write through the surrogate."""
        yield from self._call("SgWrite", {"path": path}, payload=data)

    def stat(self, path: str) -> Generator[Any, Any, Dict]:
        """Metadata through the surrogate."""
        result, _ = yield from self._call("SgStat", {"path": path})
        return result

    def listdir(self, path: str) -> Generator[Any, Any, List[str]]:
        """Directory listing through the surrogate."""
        result, _ = yield from self._call("SgList", {"path": path})
        return result["names"]

    def mkdir(self, path: str) -> Generator:
        """Create a directory through the surrogate."""
        yield from self._call("SgMkdir", {"path": path})

    def remove(self, path: str) -> Generator:
        """Remove a file through the surrogate."""
        yield from self._call("SgRemove", {"path": path})

    def rename(self, old: str, new: str) -> Generator:
        """Rename through the surrogate."""
        yield from self._call("SgRename", {"old": old, "new": new})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PersonalComputer {self.host.name} via {self.surrogate.host.name}>"
