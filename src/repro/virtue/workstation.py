"""A Virtue workstation: the Unix-flavoured system-call surface.

This is the boundary application programs see.  "Other than performance,
there is no difference between accessing a local file and a file in the
shared name space" — every call below routes through the
:class:`~repro.virtue.namespace.Namespace` and lands either on the local
root file system or on Venus, invisibly to the caller.

File descriptors follow the paper's usage model: ``open`` makes a whole
cached copy available, ``read``/``write`` touch only that copy ("Virtue
does not communicate with Vice in performing these operations"), and
``close`` stores the file back to its custodian when it was modified.

All operations are generators; drive them with
``sim.run_until_complete(sim.process(...))`` or from other processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.errors import (
    BadFileDescriptor,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
)
from repro.hosts import Host
from repro.net.topology import Network
from repro.sim.kernel import Simulator
from repro.storage.unixfs import FileType, UnixFileSystem
from repro.venus.cache import CacheEntry
from repro.venus.venus import Venus, VenusCosts
from repro.virtue.namespace import Namespace

__all__ = ["OpenFile", "Workstation"]

_READ_MODES = {"r", "r+"}
_WRITE_MODES = {"w", "a", "r+"}
_ALL_MODES = _READ_MODES | _WRITE_MODES


@dataclass
class OpenFile:
    """One open descriptor: a private buffer over a local or cached file."""

    kind: str  # "local" | "vice"
    username: str
    path: str  # workstation path as opened
    mode: str
    buffer: bytearray = field(default_factory=bytearray)
    offset: int = 0
    dirty: bool = False
    entry: Optional[CacheEntry] = None  # vice only
    local_path: str = ""  # local only

    @property
    def readable(self) -> bool:
        return self.mode in _READ_MODES

    @property
    def writable(self) -> bool:
        return self.mode in _WRITE_MODES


class Workstation:
    """One Virtue workstation attached to Vice."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        segment: str,
        cluster_server: str,
        mode: str = "revised",
        validation: Optional[str] = None,
        cpu_speed: float = 1.0,
        ws_type: str = "sun",
        cache_policy: Optional[str] = None,
        cache_max_files: int = 500,
        cache_max_bytes: int = 20_000_000,
        venus_costs: Optional[VenusCosts] = None,
        **venus_kwargs,
    ):
        self.sim = sim
        self.name = name
        self.ws_type = ws_type
        self.host = Host(sim, network, name, segment, cpu_speed=cpu_speed)
        self.local_fs = UnixFileSystem(clock=lambda: sim.now, name=f"local:{name}")
        for directory in ("/tmp", "/vice"):
            self.local_fs.makedirs(directory)
        self.namespace = Namespace(self.local_fs)
        self.venus = Venus(
            self.host,
            cluster_server,
            mode=mode,
            validation=validation,
            cache_policy=cache_policy,
            cache_max_files=cache_max_files,
            cache_max_bytes=cache_max_bytes,
            costs=venus_costs,
            **venus_kwargs,
        )
        self._fds: Dict[int, OpenFile] = {}
        self._next_fd = 3  # honour tradition
        self._costs = self.venus.costs

    # ==================================================================
    # sessions
    # ==================================================================

    def login(self, username: str, secret) -> None:
        """Authenticate a user at this workstation (password or key bytes)."""
        self.venus.login(username, secret)

    def logout(self, username: str) -> None:
        """End a user's session here."""
        self.venus.logout(username)

    # ==================================================================
    # descriptor table
    # ==================================================================

    def _fd_of(self, fd: int) -> OpenFile:
        open_file = self._fds.get(fd)
        if open_file is None:
            raise BadFileDescriptor(f"fd {fd}")
        return open_file

    def _allocate(self, open_file: OpenFile) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = open_file
        return fd

    @property
    def open_descriptors(self) -> int:
        """Number of live descriptors."""
        return len(self._fds)

    # ==================================================================
    # open / read / write / close
    # ==================================================================

    def open(self, username: str, path: str, mode: str = "r") -> Generator[Any, Any, int]:
        """Open a file; returns a descriptor.

        Modes: ``r`` read, ``w`` create/truncate, ``a`` append, ``r+``
        read/write without truncation.
        """
        if mode not in _ALL_MODES:
            raise InvalidArgument(f"unsupported open mode {mode!r}")
        kind, resolved = self.namespace.classify(path)
        if kind == "vice":
            return (yield from self._open_vice(username, path, resolved, mode))
        return (yield from self._open_local(username, path, resolved, mode))

    def _open_vice(self, username: str, path: str, vice_path: str, mode: str):
        need_data = mode != "w"
        create = mode in ("w", "a")
        entry = yield from self.venus.open_file(
            username, vice_path, need_data=need_data, create=create
        )
        if entry.status.get("type") == FileType.DIRECTORY:
            entry.open_count -= 1
            raise IsADirectory(path)
        buffer = bytearray(entry.data) if need_data else bytearray()
        open_file = OpenFile(
            kind="vice", username=username, path=path, mode=mode,
            buffer=buffer, entry=entry,
        )
        if mode == "a":
            open_file.offset = len(buffer)
        if mode == "w":
            open_file.dirty = True  # truncation is a modification
        return self._allocate(open_file)

    def _open_local(self, username: str, path: str, local_path: str, mode: str):
        yield from self.host.compute(self._costs.open_base_cpu / 2)
        exists = self.local_fs.exists(local_path)
        if not exists:
            if mode == "r" or mode == "r+":
                raise FileNotFound(path)
            self.local_fs.create(local_path, b"", owner=username)
        node = self.local_fs.resolve(local_path)
        if node.file_type == FileType.DIRECTORY:
            raise IsADirectory(path)
        data = b"" if mode == "w" else self.local_fs.read(local_path)
        yield from self.host.disk.access(len(data))
        open_file = OpenFile(
            kind="local", username=username, path=path, mode=mode,
            buffer=bytearray(data), local_path=local_path,
        )
        if mode == "a":
            open_file.offset = len(data)
        if mode == "w" and exists:
            open_file.dirty = True
        return self._allocate(open_file)

    def read(self, fd: int, size: Optional[int] = None) -> Generator[Any, Any, bytes]:
        """Read from the descriptor's cached copy (no Vice traffic)."""
        open_file = self._fd_of(fd)
        if not open_file.readable:
            raise BadFileDescriptor(f"fd {fd} not open for reading")
        if size is None:
            size = len(open_file.buffer) - open_file.offset
        chunk = bytes(open_file.buffer[open_file.offset:open_file.offset + max(0, size)])
        open_file.offset += len(chunk)
        yield from self.host.compute(len(chunk) * self._costs.per_byte_cpu)
        return chunk

    def write(self, fd: int, data: bytes) -> Generator[Any, Any, int]:
        """Write at the descriptor's offset in its cached copy."""
        open_file = self._fd_of(fd)
        if not open_file.writable:
            raise BadFileDescriptor(f"fd {fd} not open for writing")
        end = open_file.offset + len(data)
        if end > len(open_file.buffer):
            open_file.buffer.extend(b"\x00" * (end - len(open_file.buffer)))
        open_file.buffer[open_file.offset:end] = data
        open_file.offset = end
        open_file.dirty = True
        yield from self.host.compute(len(data) * self._costs.per_byte_cpu)
        return len(data)

    def seek(self, fd: int, offset: int) -> int:
        """Position the descriptor (no time charged: a pointer update)."""
        open_file = self._fd_of(fd)
        if offset < 0:
            raise InvalidArgument("negative seek offset")
        open_file.offset = offset
        return offset

    def close(self, fd: int) -> Generator:
        """Close the descriptor; modified Vice files store through."""
        open_file = self._fds.pop(fd, None)
        if open_file is None:
            raise BadFileDescriptor(f"fd {fd}")
        if open_file.kind == "vice":
            new_data = bytes(open_file.buffer) if open_file.dirty else None
            yield from self.venus.close_file(open_file.username, open_file.entry, new_data)
        else:
            yield from self.host.compute(self._costs.close_base_cpu / 2)
            if open_file.dirty:
                yield from self.host.disk.access(len(open_file.buffer), write=True)
                self.local_fs.write(
                    open_file.local_path, bytes(open_file.buffer), owner=open_file.username
                )

    # ==================================================================
    # whole-file conveniences (what most workloads actually do)
    # ==================================================================

    def read_file(self, username: str, path: str) -> Generator[Any, Any, bytes]:
        """open + read-everything + close."""
        fd = yield from self.open(username, path, "r")
        try:
            data = yield from self.read(fd)
        finally:
            yield from self.close(fd)
        return data

    def write_file(self, username: str, path: str, data: bytes) -> Generator:
        """open(w) + write + close (store-through on the close)."""
        fd = yield from self.open(username, path, "w")
        try:
            yield from self.write(fd, data)
        finally:
            yield from self.close(fd)

    def append_file(self, username: str, path: str, data: bytes) -> Generator:
        """open(a) + write + close."""
        fd = yield from self.open(username, path, "a")
        try:
            yield from self.write(fd, data)
        finally:
            yield from self.close(fd)

    # ==================================================================
    # metadata and name-space calls
    # ==================================================================

    def stat(self, username: str, path: str) -> Generator[Any, Any, Dict]:
        """Status of any file, local or shared."""
        kind, resolved = self.namespace.classify(path)
        if kind == "vice":
            return (yield from self.venus.stat(username, resolved))
        yield from self.host.compute(self._costs.lookup_cpu / 2)
        st = self.local_fs.stat(resolved)
        return {
            "fid": f"local:{self.name}:{st.inode}",
            "type": st.file_type,
            "size": st.size,
            "version": st.version,
            "mtime": st.mtime,
            "owner": st.owner,
            "mode": st.mode_bits,
            "rights": "rwidlak",
            "read_only": False,
        }

    def listdir(self, username: str, path: str) -> Generator[Any, Any, List[str]]:
        """Directory entries, local or shared."""
        kind, resolved = self.namespace.classify(path)
        if kind == "vice":
            return (yield from self.venus.listdir(username, resolved))
        yield from self.host.compute(self._costs.lookup_cpu / 2)
        return self.local_fs.listdir(resolved)

    def exists(self, username: str, path: str) -> Generator[Any, Any, bool]:
        """True when the path resolves (local or shared)."""
        try:
            yield from self.stat(username, path)
            return True
        except FileNotFound:
            return False

    def mkdir(self, username: str, path: str) -> Generator:
        """Create a directory."""
        kind, resolved = self.namespace.classify(path)
        if kind == "vice":
            return (yield from self.venus.mkdir(username, resolved))
        yield from self.host.compute(self._costs.lookup_cpu)
        self.local_fs.mkdir(resolved, owner=username)

    def unlink(self, username: str, path: str) -> Generator:
        """Remove a file or symlink."""
        kind, resolved = self.namespace.classify(path)
        if kind == "vice":
            return (yield from self.venus.remove(username, resolved))
        yield from self.host.compute(self._costs.lookup_cpu)
        self.local_fs.unlink(resolved)

    def rmdir(self, username: str, path: str) -> Generator:
        """Remove an empty directory."""
        kind, resolved = self.namespace.classify(path)
        if kind == "vice":
            return (yield from self.venus.rmdir(username, resolved))
        yield from self.host.compute(self._costs.lookup_cpu)
        self.local_fs.rmdir(resolved)

    def rename(self, username: str, old: str, new: str) -> Generator:
        """Rename; both names must live in the same name space."""
        old_kind, old_resolved = self.namespace.classify(old)
        new_kind, new_resolved = self.namespace.classify(new)
        if old_kind != new_kind:
            raise InvalidArgument("rename cannot cross the local/shared boundary")
        if old_kind == "vice":
            return (yield from self.venus.rename(username, old_resolved, new_resolved))
        yield from self.host.compute(self._costs.lookup_cpu)
        self.local_fs.rename(old_resolved, new_resolved)

    def symlink(self, username: str, path: str, target: str) -> Generator:
        """Create a symlink.

        A *local* symlink may point anywhere, including into ``/vice`` —
        that is the Fig. 3-2 heterogeneity mechanism and works in both
        modes.  A symlink *inside* Vice requires the revised servers (§5.1).
        """
        kind, resolved = self.namespace.classify(path)
        if kind == "vice":
            vice_target = target
            if self.namespace.is_shared(target):
                vice_target = self.namespace.to_vice(target)
            return (yield from self.venus.symlink(username, resolved, vice_target))
        yield from self.host.compute(self._costs.lookup_cpu)
        self.local_fs.symlink(resolved, target, owner=username)

    # ==================================================================
    # protection and locks (shared space only)
    # ==================================================================

    def _require_vice(self, path: str) -> str:
        kind, resolved = self.namespace.classify(path)
        if kind != "vice":
            raise InvalidArgument(f"{path!r} is not in the shared name space")
        return resolved

    def get_acl(self, username: str, path: str) -> Generator:
        """Read the access list of a shared directory."""
        return (yield from self.venus.get_acl(username, self._require_vice(path)))

    def set_acl(self, username: str, path: str, acl_record: Dict) -> Generator:
        """Replace the access list of a shared directory."""
        return (yield from self.venus.set_acl(username, self._require_vice(path), acl_record))

    def set_lock(self, username: str, path: str, exclusive: bool = False) -> Generator:
        """Take an advisory lock on a shared file."""
        return (yield from self.venus.set_lock(username, self._require_vice(path), exclusive))

    def release_lock(self, username: str, path: str) -> Generator:
        """Release an advisory lock on a shared file."""
        return (yield from self.venus.release_lock(username, self._require_vice(path)))

    # ==================================================================
    # failure injection
    # ==================================================================

    def crash(self) -> None:
        """Power-cycle the workstation: open descriptors and dirty data die."""
        self.host.crash()
        self._fds.clear()

    def recover(self) -> None:
        """Boot after a crash; all callback promises are void (revalidate)."""
        self.host.recover()
        self.venus.invalidate_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workstation {self.name} type={self.ws_type}>"
