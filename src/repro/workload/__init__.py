"""Workloads: file-size models, the 5-phase benchmark, synthetic campus use."""

from repro.workload.andrew import AndrewBenchmark, AndrewResult, PHASES, make_source_tree
from repro.workload.classes import (
    FileClass,
    PROJECT_FILE,
    SYSTEM_PROGRAM,
    TEMPORARY,
    USER_FILE,
)
from repro.workload.filesizes import (
    HEADER_FILE,
    OBJECT_FILE,
    SOURCE_FILE,
    SizeModel,
    SYSTEM_BINARY,
    TEMP_FILE,
    USER_DOCUMENT,
)
from repro.workload.diurnal import DiurnalCurve
from repro.workload.synthetic import (
    SyntheticUser,
    UserProfile,
    launch_campus_day,
    provision_campus,
    run_campus_day,
)
from repro.workload.trace import TraceEvent, TraceRecorder, load_trace, replay, save_trace

__all__ = [
    "AndrewBenchmark",
    "AndrewResult",
    "DiurnalCurve",
    "FileClass",
    "HEADER_FILE",
    "OBJECT_FILE",
    "PHASES",
    "PROJECT_FILE",
    "SOURCE_FILE",
    "SYSTEM_BINARY",
    "SYSTEM_PROGRAM",
    "SizeModel",
    "SyntheticUser",
    "TEMPORARY",
    "TEMP_FILE",
    "TraceEvent",
    "TraceRecorder",
    "USER_DOCUMENT",
    "USER_FILE",
    "UserProfile",
    "launch_campus_day",
    "load_trace",
    "make_source_tree",
    "provision_campus",
    "replay",
    "run_campus_day",
    "save_trace",
]
