"""The paper's 5-phase benchmark (the proto-"Andrew benchmark").

§5.2: "This benchmark operates on about 70 files corresponding to the
source code of an actual Unix application.  There are five distinct phases
in the benchmark: making a target subtree that is identical in structure to
the source subtree [MakeDir], copying the files from the source to the
target [Copy], examining the status of every file in the target [ScanDir],
scanning every byte of every file in the target [ReadAll], and finally
compiling and linking the files in the target [Make]."

Anchors: ≈1000 s with everything local on a Sun; ≈80 % longer when every
file comes from an unloaded Vice server.

The compile/link work is simulated CPU (a 1-MIPS-era C compiler), but every
file touch is a real open/read/write/close through the workstation's
syscall surface, so remote runs exercise the full Venus/Vice protocol —
including the `make`-style stat pass over dependencies that generates the
status traffic the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Tuple

from repro.sim.rand import WorkloadRandom
from repro.storage import pathutil
from repro.virtue.session import UserSession
from repro.workload.filesizes import HEADER_FILE, SOURCE_FILE

__all__ = ["AndrewBenchmark", "AndrewResult", "make_source_tree", "PHASES"]

PHASES = ("MakeDir", "Copy", "ScanDir", "ReadAll", "Make")

# Calibrated to the local ≈1000 s anchor (see repro.system.calibration):
# a 1-MIPS-class workstation compiling early-80s C.
_COMPILE_BASE_CPU = 5.0  # per compilation unit: cpp, parsing, codegen setup
_COMPILE_PER_BYTE_CPU = 0.00095  # per source byte (including included headers)
_LINK_BASE_CPU = 30.0
_LINK_PER_BYTE_CPU = 0.0004
_HEADERS_PER_COMPILE = 6


def make_source_tree(seed: int = 7) -> Dict[str, bytes]:
    """~70 files shaped like a real Unix application's source tree."""
    rng = WorkloadRandom(seed)
    tree: Dict[str, bytes] = {}
    for index in range(40):
        tree[f"/src/main_{index:02d}.c"] = SOURCE_FILE.content(rng, b"/*c*/")
    for index in range(12):
        tree[f"/src/include/hdr_{index:02d}.h"] = HEADER_FILE.content(rng, b"/*h*/")
    for index in range(10):
        tree[f"/src/lib/lib_{index:02d}.c"] = SOURCE_FILE.content(rng, b"/*l*/")
    tree["/src/Makefile"] = b"# synthetic makefile\n" * 20
    tree["/src/README"] = b"An actual Unix application.\n" * 12
    for index in range(6):
        tree[f"/src/doc/section_{index}.ms"] = HEADER_FILE.content(rng, b".PP ")
    return tree


@dataclass
class AndrewResult:
    """Per-phase and total wall-clock (virtual) seconds."""

    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def as_rows(self) -> List[Tuple[str, float]]:
        """(phase, seconds) rows in benchmark order plus the total."""
        rows = [(phase, self.phase_seconds.get(phase, 0.0)) for phase in PHASES]
        rows.append(("Total", self.total_seconds))
        return rows


class AndrewBenchmark:
    """One run of the 5-phase benchmark by one user session.

    ``source_root``/``target_root`` are workstation paths; pointing them
    under ``/vice`` runs the remote variant, anywhere else the local one.
    The object files always go to the workstation's ``/tmp`` — the paper's
    own point about temporary files belonging in the local name space.
    """

    def __init__(
        self,
        session: UserSession,
        source_root: str,
        target_root: str,
        tmp_dir: str = "/tmp",
    ):
        self.session = session
        self.source_root = source_root
        self.target_root = target_root
        self.tmp_dir = tmp_dir
        self.sim = session.workstation.sim
        self.result = AndrewResult()

    # -- tree walking -----------------------------------------------------

    def _walk(self, root: str) -> Generator[Any, Any, Tuple[List[str], List[str]]]:
        """All (directories, files) under ``root``, breadth-first."""
        directories: List[str] = []
        files: List[str] = []
        frontier = [root]
        while frontier:
            current = frontier.pop(0)
            for name in (yield from self.session.listdir(current)):
                path = pathutil.join(current, name)
                status = yield from self.session.stat(path)
                if status["type"] == "directory":
                    directories.append(path)
                    frontier.append(path)
                else:
                    files.append(path)
        return directories, files

    def _relative(self, path: str, root: str) -> str:
        return path[len(root):].lstrip("/")

    # -- phases ---------------------------------------------------------------

    def _phase_make_dir(self, dirs: List[str]) -> Generator:
        exists = yield from self.session.exists(self.target_root)
        if not exists:
            yield from self.session.mkdir(self.target_root)
        for directory in dirs:
            target = pathutil.join(self.target_root, self._relative(directory, self.source_root))
            yield from self.session.mkdir(target)

    def _phase_copy(self, files: List[str]) -> Generator:
        for source in files:
            data = yield from self.session.read_file(source)
            target = pathutil.join(self.target_root, self._relative(source, self.source_root))
            yield from self.session.write_file(target, data)

    def _phase_scan_dir(self) -> Generator:
        yield from self._walk(self.target_root)  # the walk itself stats everything

    def _phase_read_all(self, files: List[str]) -> Generator:
        for path in files:
            yield from self.session.read_file(path)

    def _phase_make(self, files: List[str]) -> Generator:
        host = self.session.workstation.host
        sources = [f for f in files if f.endswith(".c")]
        headers = [f for f in files if f.endswith(".h")]
        # make(1) first stats every dependency to decide what to build.
        for path in files:
            yield from self.session.stat(path)
        objects: List[str] = []
        rng = WorkloadRandom(17)
        for source in sources:
            data = yield from self.session.read_file(source)
            included = 0
            if headers:
                for pick in range(min(_HEADERS_PER_COMPILE, len(headers))):
                    header = headers[rng.zipf_index(len(headers))]
                    included += len((yield from self.session.read_file(header)))
            yield from host.compute(
                _COMPILE_BASE_CPU + (len(data) + included) * _COMPILE_PER_BYTE_CPU
            )
            object_path = pathutil.join(
                self.tmp_dir, pathutil.basename(source).replace(".c", ".o")
            )
            yield from self.session.write_file(object_path, b"\x7fOBJ" + data[: len(data) // 2])
            objects.append(object_path)
        # Link: read every object, burn link CPU, store the binary in the target.
        total = 0
        for object_path in objects:
            total += len((yield from self.session.read_file(object_path)))
        yield from host.compute(_LINK_BASE_CPU + total * _LINK_PER_BYTE_CPU)
        binary = pathutil.join(self.target_root, "a.out")
        yield from self.session.write_file(binary, b"\x7fELF" + b"b" * min(total, 200_000))

    # -- driver ----------------------------------------------------------------

    def run(self) -> Generator[Any, Any, AndrewResult]:
        """Run all five phases; returns the per-phase timing result."""
        dirs, files = yield from self._walk(self.source_root)

        phases = [
            ("MakeDir", self._phase_make_dir(dirs)),
            ("Copy", self._phase_copy(files)),
        ]
        for name, phase in phases:
            start = self.sim.now
            yield from phase
            self.result.phase_seconds[name] = self.sim.now - start

        _dirs, target_files = yield from self._walk(self.target_root)
        data_files = [f for f in target_files]

        start = self.sim.now
        yield from self._phase_scan_dir()
        self.result.phase_seconds["ScanDir"] = self.sim.now - start

        start = self.sim.now
        yield from self._phase_read_all(data_files)
        self.result.phase_seconds["ReadAll"] = self.sim.now - start

        start = self.sim.now
        yield from self._phase_make(data_files)
        self.result.phase_seconds["Make"] = self.sim.now - start

        return self.result
