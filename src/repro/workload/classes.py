"""File classes and their access properties (§4, "exploit class-specific
file properties").

The paper cites ref [13] for the observation that files group into a small
number of classes by access pattern, and the design exploits each one:
system binaries are read-only replicated, temporaries live in the local
name space, user files are cached and written through on close.  The
synthetic workload generates traffic per class using these definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.filesizes import (
    SizeModel,
    SYSTEM_BINARY,
    TEMP_FILE,
    USER_DOCUMENT,
)

__all__ = ["FileClass", "SYSTEM_PROGRAM", "TEMPORARY", "USER_FILE", "PROJECT_FILE"]


@dataclass(frozen=True)
class FileClass:
    """Access/placement profile of one class of files."""

    name: str
    size_model: SizeModel
    # Probability that an access to this class modifies the file.
    write_fraction: float
    # Lives in the shared (Vice) name space, or the workstation's local one.
    shared: bool
    # Eligible for read-only replication (frequently read, rarely written).
    replicate_read_only: bool


SYSTEM_PROGRAM = FileClass(
    name="system-program",
    size_model=SYSTEM_BINARY,
    write_fraction=0.0005,  # new releases only
    shared=True,
    replicate_read_only=True,
)

TEMPORARY = FileClass(
    name="temporary",
    size_model=TEMP_FILE,
    write_fraction=0.55,  # written once, read at most once
    shared=False,  # "placing such files in the shared name space serves no purpose"
    replicate_read_only=False,
)

USER_FILE = FileClass(
    name="user-file",
    size_model=USER_DOCUMENT,
    write_fraction=0.04,
    shared=True,
    replicate_read_only=False,
)

PROJECT_FILE = FileClass(
    name="project-file",
    size_model=USER_DOCUMENT,
    write_fraction=0.02,
    shared=True,
    replicate_read_only=False,
)
