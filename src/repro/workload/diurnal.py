"""Diurnal load curves: a campus that breathes over the day.

§5.2's utilization numbers are 8-hour-window means precisely because campus
load is not flat — nobody compiles at 4 am.  The soak driver runs *days* of
virtual time, so its synthetic users follow a diurnal activity curve: think
times stretch at night and compress through the morning and mid-afternoon
peaks.  The curve is a pure function of the virtual clock — no randomness,
no state — so pacing a user with it keeps runs seeded-deterministic.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["DiurnalCurve"]

# Fraction of peak activity per hour of day, starting at midnight.  Shaped
# like a university weekday: near-dead overnight, a morning ramp to the
# 10-11 am peak, a lunch dip, a second mid-afternoon peak, a long evening
# tail (students) back into the night.
_WEEKDAY = (
    0.06, 0.04, 0.03, 0.02, 0.02, 0.04,   # 00-05
    0.08, 0.20, 0.45, 0.80, 1.00, 0.95,   # 06-11
    0.70, 0.85, 0.95, 1.00, 0.90, 0.70,   # 12-17
    0.50, 0.40, 0.35, 0.28, 0.18, 0.10,   # 18-23
)


class DiurnalCurve:
    """Hour-of-day activity multipliers with linear interpolation.

    ``activity(t)`` is the fraction of peak activity at virtual time ``t``
    (seconds); ``think_multiplier(t)`` is its reciprocal, the factor a
    user's mean think time is stretched by.  ``start_hour`` shifts where
    t=0 falls in the day, so a 6-hour smoke run can start at 9 am and cover
    the peak instead of simulating a sleeping campus.
    """

    def __init__(self, hourly: Optional[Sequence[float]] = None,
                 start_hour: float = 0.0, floor: float = 0.02):
        values = tuple(hourly if hourly is not None else _WEEKDAY)
        if len(values) != 24:
            raise ValueError(f"need 24 hourly values, got {len(values)}")
        if any(v < 0 for v in values):
            raise ValueError("activity fractions must be non-negative")
        if not 0 < floor <= 1:
            raise ValueError(f"floor {floor!r} outside (0, 1]")
        self.hourly = values
        self.start_hour = start_hour
        self.floor = floor

    def activity(self, t: float) -> float:
        """Fraction of peak activity at virtual time ``t`` (>= ``floor``)."""
        hour = (t / 3600.0 + self.start_hour) % 24.0
        index = int(hour)
        frac = hour - index
        here = self.hourly[index]
        there = self.hourly[(index + 1) % 24]
        return max(self.floor, here + (there - here) * frac)

    def think_multiplier(self, t: float) -> float:
        """Factor to stretch a user's think time by at time ``t``."""
        return 1.0 / self.activity(t)

    def __call__(self, t: float) -> float:
        """Curves are used as pace functions: ``pace(t)`` -> multiplier."""
        return self.think_multiplier(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DiurnalCurve start_hour={self.start_hour} "
                f"peak_hours={[i for i, v in enumerate(self.hourly) if v == 1.0]}>")
