"""File-size models from the era's measurement studies.

The paper's scoping argument rests on Satyanarayanan's SOSP'81 file-size
study (ref [12]): "over 99% of the files in use on a typical CMU
timesharing system" fit comfortably on a workstation disk, with sizes
approximately lognormal and a long but bounded tail.  These models generate
sizes with that shape, per file class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rand import WorkloadRandom

__all__ = ["SizeModel", "SOURCE_FILE", "HEADER_FILE", "USER_DOCUMENT",
           "SYSTEM_BINARY", "TEMP_FILE", "OBJECT_FILE"]


@dataclass(frozen=True)
class SizeModel:
    """A lognormal size distribution with a hard cap."""

    median_bytes: float
    sigma: float
    cap_bytes: int

    def sample(self, rng: WorkloadRandom) -> int:
        """One size draw."""
        return rng.lognormal_size(self.median_bytes, self.sigma, self.cap_bytes)

    def content(self, rng: WorkloadRandom, tag: bytes = b"") -> bytes:
        """A file body of a sampled size (cheap, deterministic filler)."""
        size = self.sample(rng)
        stamp = tag or b"itc"
        return (stamp * (size // max(1, len(stamp)) + 1))[:size]


# Program source: a few KB, modest tail (the benchmark's `.c` files).
SOURCE_FILE = SizeModel(median_bytes=4_000, sigma=0.9, cap_bytes=64_000)

# Headers: smaller and tighter.
HEADER_FILE = SizeModel(median_bytes=1_500, sigma=0.7, cap_bytes=16_000)

# User documents (papers, mail folders): wide spread.
USER_DOCUMENT = SizeModel(median_bytes=6_000, sigma=1.3, cap_bytes=500_000)

# System binaries: tens to hundreds of KB.
SYSTEM_BINARY = SizeModel(median_bytes=60_000, sigma=0.8, cap_bytes=1_000_000)

# Temporaries (compiler intermediates): small, written once.
TEMP_FILE = SizeModel(median_bytes=8_000, sigma=0.8, cap_bytes=100_000)

# Object files: proportional-ish to sources but we model independently.
OBJECT_FILE = SizeModel(median_bytes=10_000, sigma=0.8, cap_bytes=120_000)
