"""Synthetic campus usage: the workload behind the paper's field numbers.

§5.2's measurements (cache hit ratio > 80 %, the 65/27/4/2 call mix, 40 %
busiest-server CPU) came from "actual use" by ~400 people.  We substitute
seeded synthetic users whose behaviour mixes the paper's file classes:

* mostly re-reading a small hot set of their own files (cache hits →
  validation calls under check-on-open),
* browsing directories and checking file status (status calls),
* occasionally touching cold files (fetches),
* occasionally editing (stores),
* sharing a project tree and system programs with everyone else.

The per-action probabilities below were tuned so that the *prototype*
configuration lands near the paper's published shares — see EXP-1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.errors import ReproError
from repro.sim.metrics import Samples
from repro.sim.rand import WorkloadRandom
from repro.storage import pathutil
from repro.system.itc import ITCSystem
from repro.virtue.session import UserSession
from repro.workload.filesizes import SYSTEM_BINARY, USER_DOCUMENT

__all__ = ["UserProfile", "SyntheticUser", "launch_campus_day",
           "provision_campus", "run_campus_day"]


@dataclass(frozen=True)
class UserProfile:
    """Per-action behaviour probabilities for one synthetic user."""

    mean_think_seconds: float = 38.0
    # Action mix (first match wins on a single uniform draw).
    p_browse: float = 0.12  # stat a few files / list a directory
    p_edit: float = 0.020  # read-modify-write one file
    p_create: float = 0.006  # make a new small file
    p_compile: float = 0.008  # a small compile: several reads + temp writes
    # (remaining probability: plain whole-file read)
    # Where reads land.
    p_shared_read: float = 0.22  # project tree instead of own files
    p_binary_read: float = 0.06  # system programs
    p_cold: float = 0.020  # own archive (mostly uncached) instead of hot set
    hot_set_size: int = 24
    zipf_skew: float = 0.95
    # Shared trees are accessed with a sharper skew: a few hot documents
    # and binaries take almost all the traffic.
    popular_skew: float = 1.35
    browse_stats: int = 2


class SyntheticUser:
    """One simulated person working at one workstation."""

    def __init__(
        self,
        session: UserSession,
        profile: UserProfile,
        rng: WorkloadRandom,
        hot_files: List[str],
        cold_files: List[str],
        shared_files: List[str],
        binary_files: List[str],
        browse_dirs: List[str],
    ):
        self.session = session
        self.profile = profile
        self.rng = rng
        self.hot_files = hot_files
        self.cold_files = cold_files
        self.shared_files = shared_files
        self.binary_files = binary_files
        self.browse_dirs = browse_dirs
        self.actions = 0
        self.failures = 0
        self.action_latencies = Samples("action-latency")
        self._create_counter = 0
        # Availability accounting (repro.obs.availability): attached by
        # run_campus_day when the campus has a fault plan installed.
        self.tracker = None
        # Optional deterministic think-time pacing (repro.workload.diurnal):
        # a callable t -> multiplier applied to each think-time draw.  The
        # draw itself is unchanged, so an unpaced user replays identically.
        self.pace = None

    # -- file choice ---------------------------------------------------------

    def _pick_read_target(self) -> str:
        draw = self.rng.random()
        profile = self.profile
        if draw < profile.p_binary_read and self.binary_files:
            return self.binary_files[
                self.rng.zipf_index(len(self.binary_files), profile.popular_skew)
            ]
        if draw < profile.p_binary_read + profile.p_shared_read and self.shared_files:
            return self.shared_files[
                self.rng.zipf_index(len(self.shared_files), profile.popular_skew)
            ]
        if self.rng.chance(profile.p_cold) and self.cold_files:
            return self.rng.choice(self.cold_files)
        hot = self.hot_files[: self.profile.hot_set_size]
        return hot[self.rng.zipf_index(len(hot), self.profile.zipf_skew)]

    # -- actions --------------------------------------------------------------

    def _action_read(self) -> Generator:
        yield from self.session.read_file(self._pick_read_target())

    def _action_browse(self) -> Generator:
        directory = self.rng.choice(self.browse_dirs)
        names = yield from self.session.listdir(directory)
        if not names:
            return
        for _ in range(self.profile.browse_stats):
            name = self.rng.choice(names)
            yield from self.session.stat(pathutil.join(directory, name))

    def _action_edit(self) -> Generator:
        target = self.hot_files[self.rng.zipf_index(
            min(len(self.hot_files), self.profile.hot_set_size)
        )]
        data = yield from self.session.read_file(target)
        edited = data + b"\n# edited\n"
        if len(edited) > USER_DOCUMENT.cap_bytes:
            edited = edited[: USER_DOCUMENT.cap_bytes // 2]
        yield from self.session.write_file(target, edited)

    def _action_create(self) -> Generator:
        self._create_counter += 1
        own_root = pathutil.dirname(self.hot_files[0])
        path = pathutil.join(own_root, f"scratch_{self._create_counter:04d}")
        yield from self.session.write_file(
            path, USER_DOCUMENT.content(self.rng, b"new ")
        )
        if self.rng.chance(0.5):
            yield from self.session.unlink(path)

    def _action_compile(self) -> Generator:
        host = self.session.workstation.host
        total = 0
        for _ in range(self.rng.randint(2, 5)):
            total += len((yield from self.session.read_file(self._pick_read_target())))
        yield from host.compute(2.0 + total * 0.0008)
        # Temporaries go to the local name space, as §3.1 prescribes.
        yield from self.session.write_file(
            f"/tmp/cc_{self._create_counter:04d}.o", b"\x7fOBJ" + b"o" * min(total, 20_000)
        )
        self._create_counter += 1

    def _one_action(self) -> Generator:
        draw = self.rng.random()
        profile = self.profile
        if draw < profile.p_browse:
            yield from self._action_browse()
        elif draw < profile.p_browse + profile.p_edit:
            yield from self._action_edit()
        elif draw < profile.p_browse + profile.p_edit + profile.p_create:
            yield from self._action_create()
        elif draw < profile.p_browse + profile.p_edit + profile.p_create + profile.p_compile:
            yield from self._action_compile()
        else:
            yield from self._action_read()

    # -- the user process ---------------------------------------------------------

    def run(self, duration: float) -> Generator:
        """Work until ``duration`` virtual seconds have elapsed."""
        sim = self.session.workstation.sim
        deadline = sim.now + duration
        while sim.now < deadline:
            think = self.rng.exponential(self.profile.mean_think_seconds)
            if self.pace is not None:
                think *= self.pace(sim.now)
            yield sim.timeout(think)
            if sim.now >= deadline:
                break
            started = sim.now
            try:
                yield from self._one_action()
                self.actions += 1
                self.action_latencies.add(sim.now - started)
                if self.tracker is not None:
                    self.tracker.record_op(self.session.username, True)
            except ReproError:
                self.failures += 1
                if self.tracker is not None:
                    self.tracker.record_op(self.session.username, False)


def provision_campus(
    campus: ITCSystem,
    profile: Optional[UserProfile] = None,
    hot_files: int = 30,
    cold_files: int = 110,
    shared_files: int = 60,
    binary_files: int = 30,
    seed: int = 11,
) -> List[SyntheticUser]:
    """Create one user per workstation, with home volumes in their cluster,
    a shared project volume and a system-binaries volume; returns the users
    ready to :meth:`SyntheticUser.run`."""
    with campus.batch_setup():
        rng = WorkloadRandom(seed)
        config = campus.config

        project = campus.create_volume("/proj", custodian=0, volume_id="proj")
        project_tree = {
            f"/files/doc_{i:03d}": USER_DOCUMENT.content(rng.fork(1000 + i), b"proj")
            for i in range(shared_files)
        }
        campus.populate(project, project_tree)

        unix = campus.create_volume("/unix", custodian=0, volume_id="unix")
        binary_tree = {
            f"/bin/prog_{i:03d}": SYSTEM_BINARY.content(rng.fork(2000 + i), b"\x7fELF")
            for i in range(binary_files)
        }
        campus.populate(unix, binary_tree)

        shared_paths = [f"/vice/proj/files/doc_{i:03d}" for i in range(shared_files)]
        binary_paths = [f"/vice/unix/bin/prog_{i:03d}" for i in range(binary_files)]

        users: List[SyntheticUser] = []
        for index, workstation in enumerate(campus.workstations):
            username = f"user{index:03d}"
            password = f"pw-{username}"
            campus.add_user(username, password)
            cluster = index // config.workstations_per_cluster
            volume = campus.create_user_volume(username, cluster=cluster)
            user_rng = rng.fork(index)
            tree: Dict[str, bytes] = {}
            for i in range(hot_files):
                tree[f"/work/file_{i:03d}"] = USER_DOCUMENT.content(user_rng.fork(i), b"hot ")
            for i in range(cold_files):
                tree[f"/archive/old_{i:03d}"] = USER_DOCUMENT.content(
                    user_rng.fork(10_000 + i), b"cold"
                )
            campus.populate(volume, tree, owner=username)

            session = campus.login(workstation, username, password)
            home = f"/vice/usr/{username}"
            users.append(
                SyntheticUser(
                    session,
                    profile or UserProfile(),
                    user_rng.fork(999),
                    hot_files=[f"{home}/work/file_{i:03d}" for i in range(hot_files)],
                    cold_files=[f"{home}/archive/old_{i:03d}" for i in range(cold_files)],
                    shared_files=shared_paths,
                    binary_files=binary_paths,
                    browse_dirs=[f"{home}/work", "/vice/proj/files", "/vice/unix/bin"],
                )
            )
    return users


def launch_campus_day(
    campus: ITCSystem,
    users: List[SyntheticUser],
    duration: float,
    stagger: float = 30.0,
    seed: int = 4242,
    owned: Optional[set] = None,
):
    """Start every user process without driving the clock.

    The staggered-arrival draws are identical to :func:`run_campus_day`'s,
    so a campus launched here and driven externally (the ops console, the
    soak driver's windowed loop) replays the same day run_campus_day would.
    Returns the user processes; drive them with ``sim.run`` or a
    :class:`~repro.obs.live.SimulationController`.

    ``owned`` (shard workers) restricts which user *processes* are
    created; the arrival draw is still made for every user in list order,
    so each shard's owned users start at exactly the times they would in
    a single-process run.
    """
    sim = campus.sim
    rng = WorkloadRandom(seed)

    def staggered(user: SyntheticUser, delay: float) -> Generator:
        yield sim.timeout(delay)
        yield from user.run(duration)

    processes = []
    for i, user in enumerate(users):
        delay = rng.uniform(0.0, stagger)
        if owned is not None and i not in owned:
            continue
        processes.append(sim.process(staggered(user, delay), name=f"user{i}"))
    return processes


def run_campus_day(
    campus: ITCSystem,
    users: List[SyntheticUser],
    duration: float = 3600.0,
    warmup: float = 1800.0,
    stagger: float = 30.0,
) -> Dict[str, Any]:
    """Run every user for ``warmup + duration`` virtual seconds.

    Users start staggered (people arrive over ``stagger`` seconds); the
    warm-up phase fills the caches the way a real morning does, counters
    are then reset, and the summary reports the §5.2 quantities over the
    measured window only.

    With ``SystemConfig(sharding=...)`` set, the day is delegated to the
    sharded driver (:func:`repro.sim.shard.run_sharded_campus_day`), whose
    summary is byte-identical for supported configurations and which
    falls back to this single-process path otherwise.
    """
    if campus.config.sharding is not None:
        from repro.sim.shard import run_sharded_campus_day

        return run_sharded_campus_day(campus, users, duration=duration,
                                      warmup=warmup, stagger=stagger)
    return _run_campus_day_single(campus, users, duration=duration,
                                  warmup=warmup, stagger=stagger)


def _run_campus_day_single(
    campus: ITCSystem,
    users: List[SyntheticUser],
    duration: float = 3600.0,
    warmup: float = 1800.0,
    stagger: float = 30.0,
) -> Dict[str, Any]:
    """The single-process day driver (see :func:`run_campus_day`)."""
    sim = campus.sim
    tracker = getattr(campus, "availability", None)
    processes = launch_campus_day(campus, users, warmup + duration,
                                  stagger=stagger)
    if warmup > 0:
        sim.run(until=sim.now + warmup)
        campus.reset_counters()
        for user in users:
            user.actions = 0
            user.failures = 0
    # Attach availability accounting only for the measured window, so the
    # reported ratio lines up with the other post-warmup counters.
    for user in users:
        user.tracker = tracker
    start = sim.now
    sim.run_until_complete(
        sim.all_of(processes), limit=start + duration + stagger + 7200
    )

    busiest, cpu = campus.busiest_server(start=start)
    summary = {
        "duration": sim.now - start,
        "actions": sum(user.actions for user in users),
        "failures": sum(user.failures for user in users),
        "call_mix": campus.campus_call_mix(),
        "hit_ratio": campus.mean_hit_ratio(),
        "busiest_server": busiest.host.name,
        "busiest_cpu": cpu,
        "busiest_cpu_peak": busiest.host.cpu.utilization.peak_utilization(),
        "busiest_disk": busiest.host.disk_utilization(start),
        "cross_cluster_bytes": campus.cross_cluster_bytes(),
    }
    if tracker is not None:
        summary["availability"] = tracker.summary()
    return summary
