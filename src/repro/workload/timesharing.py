"""A campus timesharing system: the paper's performance yardstick (§2.2).

"Our goal is to provide a level of file system performance that is at least
as good as that of a lightly-loaded timesharing system at CMU" — and §5.2
reports success: "our users perceive the overall performance of the
workstations to be equal to or better than that of the large timesharing
systems on campus."

To measure that comparison we need the comparator: one big shared machine
(a TOPS-20 / VAX-class service) whose users run the *same* action mix as
the synthetic Virtue users, but whose every file access and compile shares
one CPU and one disk farm.  Lightly loaded it is fast; as the login count
grows, everything queues.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.net.topology import Network
from repro.hosts import Host
from repro.sim.kernel import Simulator
from repro.sim.metrics import Samples
from repro.sim.rand import WorkloadRandom
from repro.storage.disk import Disk
from repro.storage.unixfs import UnixFileSystem
from repro.workload.filesizes import USER_DOCUMENT
from repro.workload.synthetic import UserProfile

__all__ = [
    "TimesharingSystem",
    "TimesharingUser",
    "recompile_task",
    "run_timesharing_compile",
    "run_timesharing_session",
]


class TimesharingSystem:
    """One shared machine serving every logged-in user.

    "Large" meant large memory and disk farms, not a fast processor: a
    VAX-11/780-class machine was roughly workstation-speed (cpu_speed 1.25
    here) — and it is *one* machine, the only place any login's work runs.
    """

    def __init__(
        self,
        sim: Simulator,
        cpu_speed: float = 1.25,
        disk_count: int = 2,
        name: str = "cmu-ts",
    ):
        self.sim = sim
        # A private single-segment network satisfies the Host plumbing; no
        # traffic crosses it (everything is local to the machine).
        self._network = Network(sim)
        self._network.add_segment("machine-room")
        self.host = Host(sim, self._network, name, "machine-room", cpu_speed=cpu_speed)
        self.disks = [Disk(sim, name=f"{name}-disk{i}") for i in range(disk_count)]
        self.fs = UnixFileSystem(clock=lambda: sim.now, name=name)
        self.fs.makedirs("/usr")
        self._disk_rr = 0

    def disk(self) -> Disk:
        """Round-robin over the disk farm."""
        self._disk_rr = (self._disk_rr + 1) % len(self.disks)
        return self.disks[self._disk_rr]

    def read_file(self, path: str) -> Generator[Any, Any, bytes]:
        """Open+read+close on the shared machine."""
        data = self.fs.read(path)
        yield from self.host.compute(0.02)  # open/namei on a loaded system
        yield from self.disk().access(len(data))
        yield from self.host.compute(len(data) * 2e-7)
        return data

    def write_file(self, path: str, data: bytes, owner: str) -> Generator:
        """Create/overwrite on the shared machine."""
        yield from self.host.compute(0.025)
        yield from self.disk().access(len(data), write=True)
        yield from self.host.compute(len(data) * 2e-7)
        self.fs.write(path, data, owner=owner)

    def stat(self, path: str) -> Generator[Any, Any, Dict]:
        """Status on the shared machine."""
        yield from self.host.compute(0.008)
        yield from self.disk().access(256)
        st = self.fs.stat(path)
        return {"size": st.size, "mtime": st.mtime}

    def compute(self, reference_seconds: float) -> Generator:
        """User computation (editors, compilers) on the shared CPU."""
        yield from self.host.compute(reference_seconds)

    def cpu_utilization(self, start: float = 0.0, end=None) -> float:
        """Mean CPU busy fraction."""
        return self.host.cpu_utilization(start, end)


class TimesharingUser:
    """The same behavioural profile as a Virtue user, on the shared machine."""

    def __init__(
        self,
        system: TimesharingSystem,
        username: str,
        profile: UserProfile,
        rng: WorkloadRandom,
        hot_files: int = 24,
    ):
        self.system = system
        self.username = username
        self.profile = profile
        self.rng = rng
        self.home = f"/usr/{username}"
        self.paths: List[str] = []
        system.fs.makedirs(self.home)
        for index in range(hot_files):
            path = f"{self.home}/file_{index:03d}"
            system.fs.write(path, USER_DOCUMENT.content(rng.fork(index), b"ts  "),
                            owner=username)
            self.paths.append(path)
        self.actions = 0
        self.action_latencies = Samples(f"ts:{username}")

    def _pick(self) -> str:
        return self.paths[self.rng.zipf_index(len(self.paths), self.profile.zipf_skew)]

    # Interactive cycles per action: on a timesharing system even editing
    # and shell work burn *shared* CPU — the load that made the campus
    # machines feel slow and motivated per-user workstations.
    INTERACTIVE_CPU = 0.7

    def _one_action(self) -> Generator:
        yield from self.system.compute(self.INTERACTIVE_CPU)
        draw = self.rng.random()
        profile = self.profile
        if draw < profile.p_browse:
            for _ in range(profile.browse_stats + 1):
                yield from self.system.stat(self._pick())
        elif draw < profile.p_browse + profile.p_edit:
            data = yield from self.system.read_file(self._pick())
            yield from self.system.compute(0.5)  # editor work
            yield from self.system.write_file(self._pick(), data + b"!", self.username)
        elif draw < profile.p_browse + profile.p_edit + profile.p_compile:
            total = 0
            for _ in range(3):
                total += len((yield from self.system.read_file(self._pick())))
            yield from self.system.compute(2.0 + total * 0.0008)
            yield from self.system.write_file(
                f"{self.home}/a.out", b"o" * min(total, 20_000), self.username
            )
        else:
            yield from self.system.read_file(self._pick())

    def run(self, duration: float) -> Generator:
        """Work for ``duration`` virtual seconds."""
        sim = self.system.sim
        deadline = sim.now + duration
        while sim.now < deadline:
            yield sim.timeout(self.rng.exponential(self.profile.mean_think_seconds))
            if sim.now >= deadline:
                break
            started = sim.now
            yield from self._one_action()
            self.actions += 1
            self.action_latencies.add(sim.now - started)


class _TimesharingTaskAdapter:
    """Maps the shared recompile task onto the timesharing machine."""

    def __init__(self, system: TimesharingSystem, sources: List[str]):
        self.system = system
        self.sources = sources

    def stat(self, path: str):
        return self.system.stat(path)

    def read_file(self, path: str):
        return self.system.read_file(path)

    def compute(self, seconds: float):
        return self.system.compute(seconds)

    def write_output(self, name: str, data: bytes):
        return self.system.write_file(f"/usr/task/{name}", data, "task")


def recompile_task(adapter, sources: List[str]) -> Generator:
    """The measured task: make-style stat pass, then compile every source.

    Identical work on every world: only where the cycles and the file
    accesses land differs.
    """
    for path in sources:
        yield from adapter.stat(path)
    for index, path in enumerate(sources):
        data = yield from adapter.read_file(path)
        yield from adapter.compute(5.0 + len(data) * 0.00095)
        yield from adapter.write_output(f"obj_{index:03d}.o", data[: len(data) // 2])


def run_timesharing_compile(
    logins: int,
    source_count: int = 40,
    profile: UserProfile = None,
    seed: int = 5,
) -> Dict[str, float]:
    """Measure the recompile task on the shared machine with ``logins``
    other users logged in and working."""
    sim = Simulator()
    system = TimesharingSystem(sim)
    rng = WorkloadRandom(seed)
    system.fs.makedirs("/usr/task")
    sources = []
    for index in range(source_count):
        path = f"/usr/task/src_{index:03d}.c"
        system.fs.write(path, USER_DOCUMENT.content(rng.fork(7000 + index), b"/*c*/"),
                        owner="task")
        sources.append(path)
    background = [
        TimesharingUser(system, f"bg{i:03d}", profile or UserProfile(), rng.fork(i))
        for i in range(max(0, logins - 1))
    ]
    stop = {"flag": False}

    def background_forever(user):
        while not stop["flag"]:
            yield sim.timeout(user.rng.exponential(user.profile.mean_think_seconds))
            if stop["flag"]:
                return
            yield from user._one_action()

    for user in background:
        sim.process(background_forever(user))
    adapter = _TimesharingTaskAdapter(system, sources)
    start = sim.now
    task = sim.process(recompile_task(adapter, sources))
    elapsed = {"seconds": None}

    def watch():
        yield task
        stop["flag"] = True
        elapsed["seconds"] = sim.now - start

    sim.run_until_complete(sim.process(watch()), limit=1e7)
    return {
        "logins": logins,
        "task_seconds": elapsed["seconds"],
        "cpu": system.cpu_utilization(start, sim.now),
    }


def run_timesharing_session(
    logins: int,
    duration: float = 3600.0,
    profile: UserProfile = None,
    seed: int = 5,
) -> Dict[str, float]:
    """One timesharing experiment: N users for ``duration`` virtual seconds.

    Returns mean/p90 action latency and machine CPU utilization.
    """
    sim = Simulator()
    system = TimesharingSystem(sim)
    rng = WorkloadRandom(seed)
    users = [
        TimesharingUser(system, f"ts{i:03d}", profile or UserProfile(), rng.fork(i))
        for i in range(logins)
    ]
    processes = [sim.process(user.run(duration)) for user in users]
    sim.run_until_complete(sim.all_of(processes), limit=duration * 10)
    latencies = Samples("all")
    for user in users:
        for value in user.action_latencies.values:
            latencies.add(value)
    return {
        "logins": logins,
        "mean_latency": latencies.mean,
        "p90_latency": latencies.percentile(0.9),
        "cpu": system.cpu_utilization(),
        "actions": sum(user.actions for user in users),
    }
