"""Trace recording and replay.

§3.6 anticipates "monitoring tools ... to recognize long-term changes in
user access patterns".  A :class:`TraceRecorder` captures the operation
stream a session generates; :func:`replay` re-executes a trace against any
other session — e.g. to replay one user's real day against a differently
configured campus, which is how several ablation benches hold the workload
fixed while varying the system.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Generator, List, Optional

from repro.errors import ReproError
from repro.virtue.session import UserSession

__all__ = ["TraceEvent", "TraceRecorder", "load_trace", "replay", "save_trace"]

_REPLAYABLE = ("read_file", "write_file", "stat", "listdir", "mkdir", "unlink")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded operation."""

    at: float  # virtual time of issue
    op: str  # one of _REPLAYABLE
    path: str
    size: int = 0  # payload bytes for writes


class TraceRecorder:
    """Wraps a session; records whole-file and metadata operations."""

    def __init__(self, session: UserSession):
        self.session = session
        self.events: List[TraceEvent] = []
        self._sim = session.workstation.sim

    def _note(self, op: str, path: str, size: int = 0) -> None:
        self.events.append(TraceEvent(self._sim.now, op, path, size))

    def read_file(self, path: str) -> Generator[Any, Any, bytes]:
        self._note("read_file", path)
        return (yield from self.session.read_file(path))

    def write_file(self, path: str, data: bytes) -> Generator:
        self._note("write_file", path, len(data))
        return (yield from self.session.write_file(path, data))

    def stat(self, path: str) -> Generator:
        self._note("stat", path)
        return (yield from self.session.stat(path))

    def listdir(self, path: str) -> Generator:
        self._note("listdir", path)
        return (yield from self.session.listdir(path))

    def mkdir(self, path: str) -> Generator:
        self._note("mkdir", path)
        return (yield from self.session.mkdir(path))

    def unlink(self, path: str) -> Generator:
        self._note("unlink", path)
        return (yield from self.session.unlink(path))


def save_trace(events: List[TraceEvent], path: str) -> None:
    """Persist a trace as JSON lines (one event per line)."""
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(asdict(event)) + "\n")


def load_trace(path: str) -> List[TraceEvent]:
    """Load a trace saved by :func:`save_trace`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent(**json.loads(line)))
    return events


def replay(
    session: UserSession,
    events: List[TraceEvent],
    preserve_timing: bool = False,
    stop_on_error: bool = False,
) -> Generator[Any, Any, int]:
    """Re-execute a trace against ``session``; returns the failure count.

    With ``preserve_timing`` the replay reproduces the original
    inter-operation gaps; otherwise operations run back to back (a
    closed-loop stress replay).
    """
    sim = session.workstation.sim
    failures = 0
    previous_at: Optional[float] = None
    for event in events:
        if preserve_timing and previous_at is not None:
            gap = event.at - previous_at
            if gap > 0:
                yield sim.timeout(gap)
        previous_at = event.at
        try:
            if event.op == "read_file":
                yield from session.read_file(event.path)
            elif event.op == "write_file":
                yield from session.write_file(event.path, b"r" * event.size)
            elif event.op == "stat":
                yield from session.stat(event.path)
            elif event.op == "listdir":
                yield from session.listdir(event.path)
            elif event.op == "mkdir":
                yield from session.mkdir(event.path)
            elif event.op == "unlink":
                yield from session.unlink(event.path)
            else:
                raise ReproError(f"unreplayable op {event.op!r}")
        except ReproError:
            failures += 1
            if stop_on_error:
                raise
    return failures
