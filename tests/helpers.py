"""Shared builders for the test suite."""

from repro.system.config import SystemConfig
from repro.system.itc import ITCSystem


def small_campus(mode="revised", clusters=1, workstations_per_cluster=2, **overrides):
    """A small campus with one registered user and their home volume."""
    config = SystemConfig(
        mode=mode,
        clusters=clusters,
        workstations_per_cluster=workstations_per_cluster,
        **overrides,
    )
    campus = ITCSystem(config)
    campus.add_user("alice", "alice-pw")
    campus.create_user_volume("alice")
    return campus


def alice_session(campus, ws=0):
    """Alice logged in at the given workstation."""
    return campus.login(ws, "alice", "alice-pw")


def run(campus, generator, limit=1e9):
    """Drive one operation to completion."""
    return campus.run_op(generator, limit=limit)
