"""The rights matrix: each Vice right gates exactly its operations.

§3.4: "The rights associated with a directory control the fetching and
storing of files, the creation and deletion of new directory entries, and
modifications to the access list."  Each test grants a principal exactly
one right and checks the full operation surface.
"""

import pytest

from repro.errors import PermissionDenied
from tests.helpers import run, small_campus

HOME = "/vice/usr/alice"
SHARED = f"{HOME}/shared"


def campus_with_bob(bob_rights):
    """Alice's /shared directory grants bob exactly ``bob_rights``."""
    campus = small_campus(workstations_per_cluster=2)
    campus.add_user("bob", "bob-pw")
    alice = campus.login(0, "alice", "alice-pw")
    run(campus, alice.mkdir(SHARED))
    run(campus, alice.write_file(f"{SHARED}/doc", b"contents"))
    acl = {"positive": {"alice": "rwidlak"}, "negative": {}}
    if bob_rights:
        acl["positive"]["bob"] = bob_rights
    run(campus, alice.set_acl(SHARED, acl))
    # Loosen the file's mode bits so only the ACL is under test.
    campus.volume("u-alice").fs.set_mode("/shared/doc", 0o666)
    bob = campus.login(1, "bob", "bob-pw")
    return campus, bob


def op_read(campus, bob):
    return run(campus, bob.read_file(f"{SHARED}/doc"))


def op_store(campus, bob):
    return run(campus, bob.write_file(f"{SHARED}/doc", b"overwritten"))


def op_insert(campus, bob):
    return run(campus, bob.write_file(f"{SHARED}/new-file", b"x"))


def op_delete(campus, bob):
    return run(campus, bob.unlink(f"{SHARED}/doc"))


def op_lookup(campus, bob):
    return run(campus, bob.listdir(SHARED))


def op_administer(campus, bob):
    acl = {"positive": {"alice": "rwidlak", "bob": "rwidlak"}, "negative": {}}
    return run(campus, bob.set_acl(SHARED, acl))


def op_lock(campus, bob):
    return run(campus, bob.set_lock(f"{SHARED}/doc", exclusive=False))


OPS = {
    "r": op_read,
    "w": op_store,
    "i": op_insert,
    "d": op_delete,
    "a": op_administer,
    "k": op_lock,
}

# Which extra rights each op needs to even reach its check (resolution
# requires lookup on the directory for the fid walk).
BASE = "l"


@pytest.mark.parametrize("right,operation", sorted(OPS.items()))
def test_right_enables_its_operation(right, operation):
    campus, bob = campus_with_bob(BASE + right)
    OPS[right](campus, bob)  # must succeed


@pytest.mark.parametrize("right,operation", sorted(OPS.items()))
def test_other_rights_do_not_enable_it(right, operation):
    # Grant everything EXCEPT the right under test (keep lookup: resolution).
    others = "".join(sorted(set("rwidak") - set(right)))
    campus, bob = campus_with_bob(BASE + others)
    with pytest.raises(PermissionDenied):
        OPS[right](campus, bob)


def test_lookup_gates_resolution_itself():
    campus, bob = campus_with_bob("rwidak")  # everything except 'l'
    with pytest.raises(PermissionDenied):
        run(campus, bob.listdir(SHARED))


def test_no_rights_at_all():
    campus, bob = campus_with_bob("")
    with pytest.raises(PermissionDenied):
        run(campus, bob.read_file(f"{SHARED}/doc"))


def test_rights_string_in_status_reflects_caller():
    campus, bob = campus_with_bob("rl")
    status = run(campus, bob.stat(f"{SHARED}/doc"))
    assert set(status["rights"]) == set("rl")
