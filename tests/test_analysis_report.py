"""Tests for the result-table formatting helpers."""

from repro.analysis import Table, comparison_table, format_seconds, format_share


class TestFormatters:
    def test_format_share(self):
        assert format_share(0.65).strip() == "65.0%"
        assert format_share(0.0).strip() == "0.0%"
        assert format_share(1.0).strip() == "100.0%"

    def test_format_seconds_ranges(self):
        assert format_seconds(1234.4).strip() == "1234 s"
        assert format_seconds(12.34).strip() == "12.3 s"
        assert format_seconds(0.0123).strip() == "12.3 ms"


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"], title="demo")
        table.add("short", 1)
        table.add("a-much-longer-name", 22222)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) == {"-"}
        # Columns align: every row has the separator at the same offset.
        offset = lines[1].index("value")
        assert lines[3][offset:].strip() == "1"
        assert lines[4][offset:].strip() == "22222"

    def test_str_equals_render(self):
        table = Table(["a"])
        table.add("x")
        assert str(table) == table.render()

    def test_empty_table_renders(self):
        table = Table(["col"])
        assert "col" in table.render()


class TestComparisonTable:
    def test_paper_vs_measured_rows(self):
        table = comparison_table(
            "t",
            paper={"validate": 0.65, "status": 0.27},
            measured={"validate": 0.63},
            order=["validate", "status"],
        )
        text = table.render()
        assert "65.0%" in text
        assert "63.0%" in text
        assert "0.0%" in text  # missing measured defaults to zero

    def test_missing_paper_value_dashes(self):
        table = comparison_table(
            "t", paper={}, measured={"extra": 0.5}, order=["extra"]
        )
        assert "—" in table.render()
