"""Outage-timeline JSON export: round-trip, ordering, MTTR arithmetic.

The timeline is the artifact CI uploads (``make chaos-smoke`` writes
``outage-timeline.json``) and the soak driver's availability invariants
lean on the same bookkeeping, so its export format gets its own tests:
the JSON must round-trip, events must stay time-ordered, and the MTTR
numbers must stay arithmetically consistent even when fault windows on
*different* targets overlap (same-target overlaps are rejected by
FaultPlan validation up front).
"""

import json

import pytest

from repro.faults import Fault, FaultPlan
from repro.obs.availability import AvailabilityTracker
from repro.sim import Simulator
from repro.workload import provision_campus, run_campus_day
from tests.helpers import small_campus

# server0 is down 100-160 while cluster1 is partitioned 130-210: the two
# windows overlap (different targets, so the plan validator allows it).
OVERLAP_PLAN = FaultPlan(name="overlap", faults=(
    Fault("server_crash", "server0", start=100.0, duration=60.0),
    Fault("partition", "cluster1", start=130.0, duration=80.0),
))


def overlapping_fault_day():
    campus = small_campus(clusters=2, workstations_per_cluster=2,
                          fault_plan=OVERLAP_PLAN,
                          functional_payload_crypto=False)
    users = provision_campus(campus, hot_files=4, cold_files=4,
                             shared_files=4, binary_files=3)
    run_campus_day(campus, users, duration=400.0, warmup=60.0)
    return campus


@pytest.fixture(scope="module")
def faulted_campus():
    return overlapping_fault_day()


# ======================================================================
# JSON round-trip
# ======================================================================


def test_write_timeline_round_trips(faulted_campus, tmp_path):
    tracker = faulted_campus.availability
    path = tmp_path / "timeline.json"
    count = tracker.write_timeline(str(path))
    record = json.loads(path.read_text())
    assert len(record["events"]) == count == len(tracker.timeline())
    # Parsed events match the in-memory timeline through a JSON cycle.
    assert record["events"] == json.loads(json.dumps(tracker.timeline()))
    assert record["summary"] == json.loads(json.dumps(tracker.summary()))
    assert record["summary"]["attempts"] > 0


def test_timeline_covers_both_faults(faulted_campus):
    events = faulted_campus.availability.timeline()
    faults = [e for e in events if e["event"] == "fault"]
    assert {(e["kind"], e["target"]) for e in faults} == {
        ("server_crash", "server0"), ("partition", "cluster1"),
    }
    recoveries = [e for e in events if e["event"] == "recovery"]
    assert len(recoveries) == len(faults) == 2
    # The crash triggered a salvage pass on restart.
    assert any(e["event"] == "salvage" and e["target"] == "server0"
               for e in events)


# ======================================================================
# ordering
# ======================================================================


def test_timeline_events_are_time_ordered(faulted_campus):
    events = faulted_campus.availability.timeline()
    stamps = [e["t"] for e in events]
    assert stamps == sorted(stamps)
    assert len(events) >= 4  # 2 faults + 2 recoveries at minimum


def test_episodes_are_recorded_in_close_order(faulted_campus):
    episodes = faulted_campus.availability.episodes
    ends = [e.end for e in episodes]
    assert ends == sorted(ends)
    for episode in episodes:
        assert episode.end > episode.start
        assert episode.failures >= 1
    # Outage events in the timeline are keyed by episode *start*.
    outages = [e for e in faulted_campus.availability.timeline()
               if e["event"] == "outage"]
    assert [o["start"] for o in outages] == sorted(o["start"] for o in outages)


# ======================================================================
# MTTR arithmetic under overlapping fault windows
# ======================================================================


def test_mttr_matches_episode_durations(faulted_campus):
    tracker = faulted_campus.availability
    assert len(tracker.episodes) > 0, "overlap plan produced no outages"
    assert len(tracker.mttr) == len(tracker.episodes)
    durations = [e.duration for e in tracker.episodes]
    assert tracker.mttr.mean == pytest.approx(sum(durations) / len(durations))
    assert tracker.mttr.maximum == pytest.approx(max(durations))
    summary = tracker.summary()
    assert summary["mttr"]["count"] == len(durations)
    assert summary["mttr"]["mean"] == pytest.approx(tracker.mttr.mean)
    assert summary["outages"] == len(durations)


def test_episodes_span_only_the_faulted_interval(faulted_campus):
    # No outage can begin before the first fault lands or persist long
    # after the last recovery (users retry within the 400s day).
    for episode in faulted_campus.availability.episodes:
        assert episode.start >= 100.0
        assert episode.end <= 400.0


def test_overlap_merges_into_per_user_episodes():
    """A user failing across both fault windows gets ONE episode whose
    duration spans the union, and exactly one MTTR sample — overlapping
    faults must not double-count repair time."""
    tracker = AvailabilityTracker(Simulator())
    tracker.record_op("alice", False, now=105.0)   # server0 down
    tracker.record_op("alice", False, now=140.0)   # both faults active
    tracker.record_op("alice", False, now=180.0)   # partition only
    tracker.record_op("alice", True, now=215.0)    # healed
    assert len(tracker.episodes) == 1
    episode = tracker.episodes[0]
    assert (episode.start, episode.end, episode.failures) == (105.0, 215.0, 3)
    assert len(tracker.mttr) == 1
    assert tracker.mttr.mean == pytest.approx(110.0)


def test_same_target_overlap_rejected_by_plan():
    with pytest.raises(ValueError, match="overlap"):
        FaultPlan(name="bad", faults=(
            Fault("server_crash", "server0", start=10.0, duration=50.0),
            Fault("server_crash", "server0", start=30.0, duration=50.0),
        ))


def test_run_is_deterministic():
    first = overlapping_fault_day().availability
    second = overlapping_fault_day().availability
    assert first.timeline() == second.timeline()
    assert first.summary() == second.summary()
