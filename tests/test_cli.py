"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


def test_info_runs(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ITC Distributed File System" in out


def test_mobility_runs(capsys):
    assert main(["mobility"]) == 0
    out = capsys.readouterr().out
    assert "initial penalty" in out
    assert "user mobility" in out


def test_day_small(capsys):
    assert main([
        "day", "--workstations", "3", "--hours", "0.05", "--warmup", "0.02",
    ]) == 0
    out = capsys.readouterr().out
    assert "campus day summary" in out
    assert "cache hit ratio" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_status_dashboard(capsys):
    assert main(["status"]) == 0
    out = capsys.readouterr().out
    assert "Vice servers" in out
    assert "Campus call mix" in out
